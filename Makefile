# Developer entry points. Everything runs from the repo root with the
# package importable via PYTHONPATH=src (no install step needed).

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

# Line-coverage floor enforced by `make coverage` and the CI gate.
# Ratchet only: raise it when coverage grows, never lower it.
COV_FLOOR ?= 80

.PHONY: test coverage verify fuzz bench

test:
	$(PYTEST) -x -q

coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTEST) -q --cov=repro --cov-report=term-missing \
			--cov-fail-under=$(COV_FLOOR); \
	else \
		echo "pytest-cov is not installed; install it with" ; \
		echo "    pip install -e .[cov]" ; \
		echo "and re-run. CI enforces the $(COV_FLOOR)% gate either way." ; \
	fi

verify:
	PYTHONPATH=src $(PYTHON) -m repro.cli verify

fuzz:
	PYTHONPATH=src $(PYTHON) -m repro.verify.fuzz

bench:
	$(PYTEST) benchmarks -q
