#!/usr/bin/env python
"""Quickstart: run Compressionless Routing on a torus and read the stats.

Builds an 8-ary 2-torus, drives it with uniform random traffic at 30% of
capacity under CR (fully adaptive routing, ONE virtual channel, deadlock
recovery by timeout/kill/retransmit), and prints what happened.

Run:  python examples/quickstart.py
"""

from repro import SimConfig, format_table, run_simulation


def main() -> None:
    config = SimConfig(
        topology="torus",
        radix=8,
        dims=2,
        routing="cr",        # Compressionless Routing
        num_vcs=1,           # the headline: no virtual channels needed
        buffer_depth=2,      # the paper's CR buffer organisation
        message_length=16,   # flits per message
        load=0.3,            # fraction of theoretical capacity
        warmup=500,
        measure=2000,
        drain=5000,
        seed=1,
    )
    result = run_simulation(config)

    report = result.report
    rows = [
        {"metric": "mean latency (cycles)", "value": report["latency_mean"]},
        {"metric": "p95 latency", "value": report["latency_p95"]},
        {"metric": "throughput (flits/node/cycle)",
         "value": report["throughput"]},
        {"metric": "messages delivered",
         "value": report["messages_delivered"]},
        {"metric": "kills (potential deadlocks broken)",
         "value": report.get("kills", 0)},
        {"metric": "retransmissions", "value": report.get(
            "retransmissions", 0)},
        {"metric": "padding overhead", "value": report["pad_overhead"]},
        {"metric": "fully drained", "value": result.drained},
    ]
    print(format_table(rows, ["metric", "value"],
                       title="CR on an 8-ary 2-torus, uniform traffic, "
                             "load 0.3"))

    # The delivery ledger checked exactly-once delivery online; FIFO
    # order per (src, dst) pair is validated here.
    pairs = result.ledger.validate_fifo()
    print(f"\norder preservation: FIFO verified over {pairs} "
          "communicating pairs")


if __name__ == "__main__":
    main()
