#!/usr/bin/env python
"""FCR surviving transient corruption and links dying mid-run.

Fault-tolerant Compressionless Routing pads every message far enough
that a receiver-detected corruption (FKILL) always reaches the source
before the source lets go of the message -- so every fault becomes a
transparent retransmission, never a lost or corrupt delivery, with no
software buffering or acknowledgement traffic.

The scenario: an 8x8 torus at 10% load where
  * every flit-hop is corrupted with probability 1e-3, and
  * two bidirectional links die at cycle 1000, while traffic is flying.

The run asserts the paper's guarantees: zero corrupt deliveries, zero
lost messages, FIFO order intact.

Run:  python examples/fault_tolerant_link.py
"""

from repro import (
    ChannelFault,
    PermanentFaultSchedule,
    SimConfig,
    format_table,
    run_simulation,
)


def main() -> None:
    dying_links = PermanentFaultSchedule(
        [
            ChannelFault(1000, 0, 1),
            ChannelFault(1000, 1, 0),
            ChannelFault(1000, 20, 28),
            ChannelFault(1000, 28, 20),
        ]
    )
    config = SimConfig(
        radix=8,
        dims=2,
        routing="fcr",
        misrouting=True,       # detour when a fault cuts all minimal paths
        fault_rate=5e-4,       # transient corruption per flit-hop
        fault_model=dying_links,
        load=0.1,
        message_length=16,
        warmup=300,
        measure=1500,
        drain=40000,           # FCR worms are long; retries need room
        seed=11,
    )
    result = run_simulation(config)
    report = result.report

    rows = [
        {"metric": "messages delivered",
         "value": report["messages_delivered"]},
        {"metric": "messages lost", "value": report["undelivered"]},
        {"metric": "corrupt deliveries",
         "value": report.get("corrupt_deliveries", 0)},
        {"metric": "faults injected", "value": report.get(
            "faults_injected", 0)},
        {"metric": "FKILLs (receiver-initiated)",
         "value": report.get("kills_fkill", 0)},
        {"metric": "header-fault kills (router-initiated)",
         "value": report.get("kills_header_fault", 0)},
        {"metric": "timeout kills", "value": report.get(
            "kills_source_timeout", 0)},
        {"metric": "misroute hops (around dead links)",
         "value": report.get("misroute_hops", 0)},
        {"metric": "mean latency", "value": report["latency_mean"]},
        {"metric": "p99 latency", "value": report["latency_p99"]},
    ]
    print(format_table(rows, ["metric", "value"],
                       title="FCR under transient + permanent faults"))

    assert report["undelivered"] == 0, "a message was lost!"
    assert report.get("corrupt_deliveries", 0) == 0, "corruption leaked!"
    assert report.get("late_corruption", 0) == 0, "FKILL window missed!"
    pairs = result.ledger.validate_fifo()
    print(f"\nguarantees held: exactly-once, no corruption, FIFO over "
          f"{pairs} pairs -- with zero software retry machinery")


if __name__ == "__main__":
    main()
