#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Runs the full experiment registry (e01..e19, t01..t03) at the chosen
scale, prints each reproduction table, and writes both the tables
(``results/<id>.txt``) and the raw rows (``results/<id>.csv``) for
external plotting.  See EXPERIMENTS.md for the paper-vs-measured
reading of each artifact.

Run:  python examples/reproduce_paper.py [--scale quick|paper]
                                         [--only e01,e07,...]
                                         [--out results]

The quick scale (8-ary 2-torus) takes a few minutes in total; the paper
scale (16-ary) takes hours in pure Python -- run it overnight, or pick
individual experiments with --only.
"""

import argparse
import csv
import pathlib
import time

from repro.experiments import PAPER, QUICK, REGISTRY


def parse_args():
    parser = argparse.ArgumentParser(
        description="regenerate the paper's evaluation"
    )
    parser.add_argument(
        "--scale", default="quick", choices=["quick", "paper"]
    )
    parser.add_argument(
        "--only",
        default=None,
        help="comma-separated experiment ids (default: all)",
    )
    parser.add_argument("--out", default="results")
    return parser.parse_args()


def write_csv(path: pathlib.Path, rows) -> None:
    columns = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(
            handle, fieldnames=columns, extrasaction="ignore", restval=""
        )
        writer.writeheader()
        writer.writerows(rows)


def main() -> None:
    args = parse_args()
    scale = PAPER if args.scale == "paper" else QUICK
    wanted = (
        sorted(REGISTRY)
        if args.only is None
        else [x.strip() for x in args.only.split(",") if x.strip()]
    )
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    grand_start = time.time()
    for exp_id in wanted:
        module = REGISTRY[exp_id]
        start = time.time()
        rows = module.run(scale)
        text = module.table(rows)
        elapsed = time.time() - start
        print(f"==== {exp_id} ({elapsed:.0f}s) " + "=" * 40)
        print(text)
        print()
        (out_dir / f"{exp_id}.txt").write_text(text + "\n")
        write_csv(out_dir / f"{exp_id}.csv", rows)
    total = time.time() - grand_start
    print(
        f"reproduced {len(wanted)} artifacts at the {scale.name} scale "
        f"in {total:.0f}s; tables and CSVs in {out_dir}/"
    )


if __name__ == "__main__":
    main()
