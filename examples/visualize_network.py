#!/usr/bin/env python
"""Render channel heat maps: where deterministic vs adaptive traffic goes.

Runs bit-reversal traffic through DOR and through CR on the same torus
and writes one SVG per scheme (links coloured by flits carried, routers
shaded by buffered flits).  DOR's picture shows a few scorched paths;
CR's shows the same traffic smeared across the fabric -- the visual
version of the channel-imbalance statistic.

Run:  python examples/visualize_network.py
Then open results/cr_heat.svg / results/dor_heat.svg in any browser.
"""

from repro import SimConfig, channel_load_stats, render_network_svg


def run_and_render(routing: str, path: str) -> dict:
    engine = SimConfig(
        routing=routing,
        radix=8,
        dims=2,
        num_vcs=2,
        pattern="bit_reversal",
        load=0.3,
        message_length=8,
        warmup=0,
        measure=1200,
        drain=0,
        seed=5,
    ).build()
    engine.run(1200)
    svg = render_network_svg(
        engine, title=f"{routing} / bit reversal / load 0.3"
    )
    with open(path, "w") as handle:
        handle.write(svg)
    return channel_load_stats(engine)


def main() -> None:
    import os

    os.makedirs("results", exist_ok=True)
    for routing, path in (
        ("cr", os.path.join("results", "cr_heat.svg")),
        ("dor", os.path.join("results", "dor_heat.svg")),
    ):
        stats = run_and_render(routing, path)
        print(
            f"{routing}: wrote {path}  "
            f"(utilisation {stats['utilisation']:.3f} flits/channel/cycle, "
            f"imbalance {stats['imbalance']:.2f})"
        )
    print(
        "\nThe imbalance number is the max/mean channel load: adaptive "
        "CR should sit well below deterministic DOR on this permutation."
    )


if __name__ == "__main__":
    main()
