#!/usr/bin/env python
"""The block-resolution family tree, side by side.

Every strategy for dealing with a blocked wormhole worm, on the same
4-ary torus at the same load, one virtual channel each (where the
strategy permits it):

  naive   adaptive routing, no strategy      -> deadlocks (watchdog)
  dor     deterministic + dateline VCs       -> avoidance (needs 2 VCs)
  drop    reject blocked headers immediately -> rejection (BBN lineage)
  cr      pad + timeout + kill + retry       -> recovery (the paper)
  pcs     probe + reserve + stream           -> reservation (Gaughan)

Run:  python examples/recovery_family.py
"""

from repro import (
    NetworkDeadlockError,
    SimConfig,
    format_table,
    run_simulation,
)

LOAD = 0.25


def run_scheme(scheme: str, **overrides):
    config = SimConfig(
        routing=scheme,
        radix=4,
        dims=2,
        load=LOAD,
        message_length=8,
        warmup=150,
        measure=800,
        drain=8000,
        seed=12,
        watchdog=2000,
        order_preserving=False,
        **overrides,
    )
    try:
        result = run_simulation(config)
    except NetworkDeadlockError as err:
        return {
            "scheme": scheme,
            "vcs": overrides.get("num_vcs", 1),
            "outcome": "DEADLOCK",
            "latency": "-",
            "throughput": "-",
            "recovery_events": str(err)[:30] + "...",
        }
    report = result.report
    recovery = (
        report.get("kills", 0)
        + report.get("probe_backtracks", 0)
        + report.get("probe_failures", 0)
    )
    return {
        "scheme": scheme,
        "vcs": overrides.get("num_vcs", 1),
        "outcome": "delivered" if result.drained else "stalled",
        "latency": report["latency_mean"],
        "throughput": report["throughput"],
        "recovery_events": recovery,
    }


def main() -> None:
    rows = [
        run_scheme("naive", num_vcs=1),
        run_scheme("dor", num_vcs=2),
        run_scheme("drop", num_vcs=1),
        run_scheme("cr", num_vcs=1),
        run_scheme("pcs", num_vcs=1),
    ]
    print(
        format_table(
            rows,
            ["scheme", "vcs", "outcome", "latency", "throughput",
             "recovery_events"],
            title=f"Block-resolution strategies, 4-ary torus, load {LOAD}",
        )
    )
    print(
        "\nnaive has no strategy -- it survives only while no dependency "
        "cycle happens to close (deadlock_recovery.py constructs the "
        "guaranteed wedge); dor avoids cycles with an extra VC; drop, "
        "cr, and pcs all recover with one VC -- by rejection, "
        "timeout-kill, and reservation respectively.  See "
        "docs/BASELINES.md for how to read the trade-offs."
    )


if __name__ == "__main__":
    main()
