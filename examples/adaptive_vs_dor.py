#!/usr/bin/env python
"""CR's adaptivity vs dimension-order routing, pattern by pattern.

Dimension-order routing sends every (src, dst) pair down one fixed path;
adaptive CR may use any minimal path, spreading load around fabric
congestion -- with no virtual channels spent on deadlock avoidance.
The comparison is pattern-dependent, and this example shows all three
regimes honestly:

* uniform near saturation -- CR's higher saturation throughput (the
  paper's headline);
* bit reversal -- a permutation that concentrates deterministic routes:
  adaptivity wins clearly;
* hotspot -- the bottleneck is the *receiver*, where adaptive routing
  cannot help and CR's timeout kills add overhead: DOR can win here.
  (The paper's answer to sink bottlenecks is interface width, Fig.
  14(e,f) -- see E06.)

Run:  python examples/adaptive_vs_dor.py
"""

from repro import SimConfig, format_table, run_simulation


def compare(pattern: str, load: float, length: int = 8, **pattern_kwargs):
    base = SimConfig(
        radix=8,
        dims=2,
        num_vcs=2,           # equal resources for both schemes
        buffer_depth=2,
        message_length=length,
        pattern=pattern,
        pattern_kwargs=pattern_kwargs,
        load=load,
        warmup=300,
        measure=1500,
        drain=8000,
        seed=7,
    )
    rows = []
    for routing in ("cr", "dor"):
        result = run_simulation(base.with_(routing=routing))
        rows.append(
            {
                "pattern": pattern,
                "load": load,
                "routing": routing,
                "latency": result.latency,
                "p95": result.report["latency_p95"],
                "throughput": result.throughput,
                "kills": result.report.get("kills", 0),
            }
        )
    return rows


def main() -> None:
    rows = []
    rows += compare("uniform", load=0.4, length=16)
    rows += compare("bit_reversal", load=0.3)
    rows += compare("hotspot", load=0.25, hotspot=27, fraction=0.08)
    print(
        format_table(
            rows,
            ["pattern", "load", "routing", "latency", "p95",
             "throughput", "kills"],
            title="CR (adaptive, kill/retry) vs DOR (deterministic), "
                  "equal VCs and buffers",
        )
    )
    print(
        "\nReading: CR wins where the congestion is in the *fabric* "
        "(uniform near saturation, bit reversal); a hotspot receiver "
        "bottlenecks at ejection, where adaptivity cannot help and "
        "kills cost extra -- the paper's remedy there is interface "
        "width (Fig. 14(e,f) / experiment e06)."
    )


if __name__ == "__main__":
    main()
