#!/usr/bin/env python
"""Tuning CR's retransmission gap (the paper's Fig. 11 in miniature).

When a kill fires, how long should the source wait before retrying?
Retry immediately and the same contenders re-create the same conflict;
wait a fixed long gap and low-load latency suffers.  The paper's answer
is binary exponential backoff ("quite similar to ... Ethernet"), which
adapts the gap to the observed kill pressure.

This example sweeps static gaps against the dynamic scheme at a low and
a high load, printing the latency each achieves.

Run:  python examples/backoff_tuning.py
"""

from repro import (
    ExponentialBackoff,
    FixedTimeout,
    SimConfig,
    StaticGap,
    format_table,
    run_simulation,
)


def main() -> None:
    base = SimConfig(
        radix=8,
        dims=2,
        routing="cr",
        num_vcs=1,
        message_length=16,
        timeout=FixedTimeout(32),  # the Fig. 11 setting
        warmup=300,
        measure=1500,
        drain=6000,
        seed=3,
    )
    schemes = [(f"static {gap}", StaticGap(gap)) for gap in (4, 32, 256)]
    schemes.append(("dynamic (BEB)", ExponentialBackoff(slot_cycles=16)))

    rows = []
    for load in (0.1, 0.3):
        for name, backoff in schemes:
            result = run_simulation(base.with_(load=load, backoff=backoff))
            rows.append(
                {
                    "load": load,
                    "scheme": name,
                    "latency": result.latency,
                    "p95": result.report["latency_p95"],
                    "kills": result.report.get("kills", 0),
                    "throughput": result.throughput,
                }
            )
    print(
        format_table(
            rows,
            ["load", "scheme", "latency", "p95", "kills", "throughput"],
            title="Retransmission-gap tuning (timeout = 32 cycles)",
        )
    )
    print(
        "\nReading: no single static gap wins at both loads; the "
        "dynamic scheme tracks the best static setting at each load "
        "without tuning -- the paper's Fig. 11 conclusion."
    )


if __name__ == "__main__":
    main()
