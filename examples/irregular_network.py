#!/usr/bin/env python
"""CR on an irregular network -- topology independence in action.

Virtual-channel deadlock-avoidance schemes are derived per topology
(datelines for tori, turn restrictions for meshes, ...); an irregular
network has no such recipe.  CR needs none: its deadlock freedom comes
from recovery, so the same router and interface work on any connected
graph.  The paper lists "applicability to a wide variety of network
topologies" among CR's key advantages.

The example builds a small irregular machine-room-style network (a ring
with chords and a two-switch appendage), runs all-pairs traffic under
CR, and verifies delivery and ordering.

Run:  python examples/irregular_network.py
"""

from repro import (
    Engine,
    GraphTopology,
    Message,
    MinimalAdaptive,
    ProtocolConfig,
    ProtocolMode,
    RandomFree,
    WormholeNetwork,
    format_table,
)

EDGES = [
    # backbone ring
    (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0),
    # chords
    (0, 3), (1, 4),
    # appendage switches
    (2, 6), (6, 7), (7, 3),
    # a stub that makes the graph properly irregular
    (5, 8),
]


def main() -> None:
    topology = GraphTopology.from_edges(9, EDGES)
    network = WormholeNetwork(
        topology,
        MinimalAdaptive(topology),
        RandomFree(),
        num_vcs=1,
        buffer_depth=2,
    )
    engine = Engine(
        network,
        protocol=ProtocolConfig(mode=ProtocolMode.CR),
        seed=19,
        watchdog=10000,
    )

    messages = []
    for src in range(topology.num_nodes):
        for dst in range(topology.num_nodes):
            if src == dst:
                continue
            msg = Message(src, dst, 8, seq=engine.next_seq(src, dst))
            engine.admit(msg)
            messages.append(msg)

    drained = engine.run_until_drained(60000)
    delivered = sum(m.delivered for m in messages)
    pairs = engine.ledger.validate_fifo()

    rows = [
        {"metric": "nodes", "value": topology.num_nodes},
        {"metric": "edges (unidirectional)", "value": 2 * len(EDGES)},
        {"metric": "avg minimal distance",
         "value": topology.average_min_distance()},
        {"metric": "messages sent", "value": len(messages)},
        {"metric": "messages delivered", "value": delivered},
        {"metric": "kills", "value": engine.stats.counters.get("kills", 0)},
        {"metric": "drained", "value": drained},
        {"metric": "FIFO pairs verified", "value": pairs},
    ]
    print(format_table(rows, ["metric", "value"],
                       title="CR on an irregular 9-node network"))
    assert drained and delivered == len(messages)
    print("\nall-pairs traffic delivered, in order, with one VC and no "
          "topology-specific deadlock analysis")


if __name__ == "__main__":
    main()
