#!/usr/bin/env python
"""Watch CR break a real deadlock that wedges plain wormhole routing.

Four long worms on a 4-node ring, each sending two hops clockwise,
form a textbook channel-dependency cycle: worm i holds channel
i -> i+1 and waits for channel i+1 -> i+2 forever.  With classic
blocking wormhole injection the network wedges (the simulator's
watchdog proves it).  With CR interfaces -- same routing relation, same
single virtual channel -- the injection stall trips the source timeout,
a kill tears one worm down, the cycle breaks, and everything delivers.

Run:  python examples/deadlock_recovery.py
"""

from repro import (
    Engine,
    FirstFree,
    Message,
    MinimalAdaptive,
    NetworkDeadlockError,
    ProtocolConfig,
    ProtocolMode,
    WormholeNetwork,
    torus,
)


def build_engine(mode: ProtocolMode) -> Engine:
    topology = torus(4, 1)  # a 4-node ring
    network = WormholeNetwork(
        topology,
        MinimalAdaptive(topology),
        FirstFree(),  # deterministic tie-break: everyone goes clockwise
        num_vcs=1,
        buffer_depth=2,
    )
    return Engine(
        network,
        protocol=ProtocolConfig(mode=mode),
        seed=0,
        watchdog=400,
    )


def inject_cycle(engine: Engine):
    messages = []
    for src in range(4):
        msg = Message(src, (src + 2) % 4, 40, seq=src)
        engine.admit(msg)
        messages.append(msg)
    return messages


def main() -> None:
    print("1) plain blocking wormhole, adaptive routing, 1 VC:")
    engine = build_engine(ProtocolMode.PLAIN)
    inject_cycle(engine)
    try:
        for _ in range(5000):
            engine.step()
        print("   unexpectedly survived!")
    except NetworkDeadlockError as err:
        print(f"   DEADLOCK -> {err}")

    print("\n2) the same pattern under Compressionless Routing:")
    engine = build_engine(ProtocolMode.CR)
    messages = inject_cycle(engine)
    drained = engine.run_until_drained(20000)
    kills = engine.stats.counters.get("kills", 0)
    print(f"   drained={drained} after {engine.now} cycles, "
          f"kills={kills}, retransmissions="
          f"{engine.stats.counters.get('retransmissions', 0)}")
    for msg in messages:
        print(f"   message {msg.src}->{msg.dst}: delivered at "
              f"t={msg.delivered_at}, killed {msg.kills}x")
    print(
        "\nThe kill/retransmit recovery is CR's replacement for "
        "virtual-channel deadlock avoidance: the cycle formed, one "
        "source timed out, its kill signal released the channels, and "
        "the retries completed."
    )


if __name__ == "__main__":
    main()
