"""Regression tests for the dimension-entry dateline bug.

The VC class of a hop must be computed relative to the *hop's*
dimension: a header that wrapped in dimension 0 still starts dimension
1 on the low class.  The original implementation read the stored
dateline bit directly, putting wrapped-then-turned packets onto VC1 for
their whole second dimension and closing a VC1 dependency cycle -- a
genuine deadlock at sustained load (caught by
examples/recovery_family.py).
"""

import pytest

from repro import Message, SimConfig, run_simulation, torus
from repro.network.channel import Channel
from repro.routing.dor import DimensionOrder
from repro.routing.duato import Duato


def hop(routing, msg, dim, wrap):
    channel = Channel(0, 1, num_vcs=2)
    channel.dim = dim
    channel.is_wrap = wrap
    routing.on_header_hop(msg, channel)


class TestDatelineClass:
    def test_fresh_dimension_starts_low(self):
        routing = DimensionOrder(torus(4, 2))
        msg = Message(0, 5, 4)
        hop(routing, msg, dim=0, wrap=True)  # wrapped in dim 0
        assert msg.dateline_bit == 1
        # A dim-1 hop must still be classed low...
        assert routing.dateline_class(msg, hop_dim=1) == 0
        # ...while further dim-0 hops stay high.
        assert routing.dateline_class(msg, hop_dim=0) == 1

    def test_same_dimension_uses_stored_bit(self):
        routing = DimensionOrder(torus(4, 2))
        msg = Message(0, 5, 4)
        assert routing.dateline_class(msg, hop_dim=0) == 0
        hop(routing, msg, dim=0, wrap=True)
        assert routing.dateline_class(msg, hop_dim=0) == 1

    def test_candidate_vc_for_wrapped_then_turned_header(self):
        """The original failure shape: 13 -> 1 (dim-0 wrap) -> 5, now
        turning into dim 1.  The dim-1 hop must claim VC0."""
        topology = torus(4, 2)
        routing = DimensionOrder(topology)
        from repro import FirstFree, WormholeNetwork

        network = WormholeNetwork(topology, routing, FirstFree(), num_vcs=2)
        msg = Message(topology.node_at((3, 1)), topology.node_at((1, 3)), 4)
        hop(routing, msg, dim=0, wrap=True)   # (3,1) -> (0,1)
        hop(routing, msg, dim=0, wrap=False)  # (0,1) -> (1,1)
        tiers = routing.candidates(
            network.routers[topology.node_at((1, 1))], msg
        )
        assert tiers[0][0].vc == 0

    def test_duato_escape_same_rule(self):
        topology = torus(4, 2)
        routing = Duato(topology)
        from repro import FirstFree, WormholeNetwork

        network = WormholeNetwork(topology, routing, FirstFree(), num_vcs=3)
        msg = Message(topology.node_at((3, 1)), topology.node_at((1, 3)), 4)
        hop(routing, msg, dim=0, wrap=True)
        hop(routing, msg, dim=0, wrap=False)
        tiers = routing.candidates(
            network.routers[topology.node_at((1, 1))], msg
        )
        escape = tiers[1][0]
        assert escape.is_escape
        assert escape.vc == 0


class TestSustainedLoadRegression:
    @pytest.mark.parametrize("seed", [12, 3, 7])
    def test_dor_torus_sustained_saturation(self, seed):
        """The configuration that deadlocked before the fix."""
        config = SimConfig(
            routing="dor", num_vcs=2, radix=4, dims=2, load=0.3,
            message_length=8, warmup=150, measure=1200, drain=10000,
            seed=seed, watchdog=3000, order_preserving=False,
        )
        result = run_simulation(config)  # watchdog raises on a wedge
        assert result.drained
        assert result.report["undelivered"] == 0

    def test_duato_torus_sustained_saturation(self):
        config = SimConfig(
            routing="duato", radix=4, dims=2, load=0.4,
            message_length=8, warmup=150, measure=1200, drain=10000,
            seed=12, watchdog=3000, order_preserving=False,
        )
        result = run_simulation(config)
        assert result.drained
        assert result.report["undelivered"] == 0

    def test_dor_3d_torus(self):
        """Three dimensions exercise two dimension-entry boundaries."""
        config = SimConfig(
            routing="dor", num_vcs=2, radix=3, dims=3, load=0.3,
            message_length=6, warmup=100, measure=800, drain=8000,
            seed=5, watchdog=3000, order_preserving=False,
        )
        result = run_simulation(config)
        assert result.drained
        assert result.report["undelivered"] == 0
