"""Dimension-order routing: determinism, datelines, deadlock freedom."""

import random

import pytest

from repro import (
    DimensionOrder,
    Engine,
    FirstFree,
    Message,
    ProtocolConfig,
    ProtocolMode,
    WormholeNetwork,
    mesh,
    torus,
)
from repro.network.channel import Channel


class TestVcRequirements:
    def test_torus_needs_two(self):
        assert DimensionOrder(torus(4, 2)).min_vcs() == 2

    def test_mesh_needs_one(self):
        assert DimensionOrder(mesh(4, 2)).min_vcs() == 1

    def test_network_rejects_too_few_vcs(self):
        topo = torus(4, 2)
        with pytest.raises(ValueError, match="VCs"):
            WormholeNetwork(topo, DimensionOrder(topo), FirstFree(), num_vcs=1)

    def test_lane_count(self):
        routing = DimensionOrder(torus(4, 2))
        assert routing.num_lanes(2) == 1
        assert routing.num_lanes(4) == 2
        with pytest.raises(ValueError):
            routing.num_lanes(1)


class TestDatelineState:
    def _hop(self, routing, msg, dim, wrap):
        channel = Channel(0, 1, num_vcs=2)
        channel.dim = dim
        channel.is_wrap = wrap
        routing.on_header_hop(msg, channel)

    def test_wrap_sets_bit(self):
        routing = DimensionOrder(torus(4, 2))
        msg = Message(0, 5, 4)
        self._hop(routing, msg, dim=0, wrap=False)
        assert msg.dateline_bit == 0
        self._hop(routing, msg, dim=0, wrap=True)
        assert msg.dateline_bit == 1

    def test_dimension_change_resets_bit(self):
        routing = DimensionOrder(torus(4, 2))
        msg = Message(0, 5, 4)
        self._hop(routing, msg, dim=0, wrap=True)
        assert msg.dateline_bit == 1
        self._hop(routing, msg, dim=1, wrap=False)
        assert msg.dateline_bit == 0

    def test_lane_assignment_randomised(self):
        routing = DimensionOrder(torus(4, 2))
        rng = random.Random(0)
        lanes = set()
        for _ in range(16):
            msg = Message(0, 5, 4)
            routing.assign_lane(msg, rng)
            lanes.add(msg.lane % routing.num_lanes(4))
        assert lanes == {0, 1}


class TestDeadlockFreedom:
    @pytest.mark.parametrize("topo_factory", [lambda: torus(4, 2),
                                              lambda: mesh(4, 2)])
    def test_saturating_plain_wormhole_drains(self, topo_factory):
        """DOR with dateline VCs never deadlocks, even saturated."""
        topology = topo_factory()
        routing = DimensionOrder(topology)
        network = WormholeNetwork(
            topology, routing, FirstFree(), num_vcs=routing.min_vcs()
        )
        engine = Engine(
            network,
            protocol=ProtocolConfig(mode=ProtocolMode.PLAIN),
            seed=3,
            watchdog=3000,
        )
        rng = random.Random(5)
        messages = []
        for src in range(topology.num_nodes):
            for _ in range(3):
                dst = rng.randrange(topology.num_nodes)
                if dst == src:
                    continue
                msg = Message(src, dst, 12, seq=engine.next_seq(src, dst))
                engine.admit(msg)
                messages.append(msg)
        assert engine.run_until_drained(30000)
        assert all(m.delivered for m in messages)
        assert engine.stats.counters.get("kills", 0) == 0

    def test_route_is_dimension_ordered(self):
        topology = torus(4, 2)
        routing = DimensionOrder(topology)
        network = WormholeNetwork(topology, routing, FirstFree(), num_vcs=2)
        engine = Engine(
            network,
            protocol=ProtocolConfig(mode=ProtocolMode.PLAIN),
            seed=0,
        )
        src = topology.node_at((0, 0))
        dst = topology.node_at((2, 3))
        msg = Message(src, dst, 4, seq=0)
        engine.admit(msg)
        engine.run_until_drained(500)
        assert msg.delivered
        dims = [
            seg.feeder.dim
            for seg in msg.segments
            if seg.feeder is not None and not seg.feeder.is_injection
        ]
        assert dims == sorted(dims), "hops must complete dim 0 before dim 1"
