"""Property-based tests of the routing relations (Hypothesis).

The routing functions are pure header policy: (router, message) ->
candidate (port, VC) pairs.  That makes them ideal property-test
targets -- for *any* reachable topology/header state the relations must
produce minimal, in-bounds, progress-making candidates, and the padding
arithmetic the CR guarantee rests on must be monotone.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Message
from repro.core.padding import (
    PaddingParams,
    cr_wire_length,
    fcr_wire_length,
    path_capacity,
)
from repro.routing.dor import DimensionOrder
from repro.routing.minimal_adaptive import MinimalAdaptive
from repro.routing.turnmodel import NegativeFirst
from repro.topology.torus import KAryNCube


def _router(node_id: int, num_vcs: int):
    """The routing relations only read ``node_id`` and ``num_vcs``."""
    return SimpleNamespace(node_id=node_id, num_vcs=num_vcs)


@st.composite
def torus_case(draw, wrap=None):
    """A k-ary n-cube plus a (here, dst) pair with hops remaining."""
    radix = draw(st.integers(3, 5))
    dims = draw(st.integers(1, 3))
    if wrap is None:
        wrap = draw(st.booleans())
    topo = KAryNCube(radix, dims, wrap=wrap)
    here = draw(st.integers(0, topo.num_nodes - 1))
    dst = draw(
        st.integers(0, topo.num_nodes - 1).filter(lambda n: n != here)
    )
    return topo, here, dst


class TestDimensionOrderProperties:
    @given(torus_case(), st.integers(2, 4), st.integers(0, 1 << 16))
    @settings(max_examples=200)
    def test_single_minimal_in_bounds_candidate(self, case, num_vcs, lane):
        """DOR is deterministic: one candidate, on a minimal link, on a
        legal VC for every header state."""
        topo, here, dst = case
        routing = DimensionOrder(topo)
        message = Message(here, dst, 4)
        message.lane = lane
        tiers = routing.candidates(_router(here, num_vcs), message)
        assert len(tiers) == 1 and len(tiers[0]) == 1
        candidate = tiers[0][0]
        link = topo.dor_link(here, dst)
        assert candidate.port == link.port
        assert 0 <= candidate.vc < num_vcs
        # The deterministic choice makes progress.
        assert (
            topo.min_distance(link.dst, dst)
            == topo.min_distance(here, dst) - 1
        )

    @given(torus_case(wrap=True), st.integers(0, 1 << 16))
    @settings(max_examples=200)
    def test_dateline_class_splits_vc_parity(self, case, lane):
        """On a wrap torus the dateline scheme maps the low class to
        even VCs and the high class to odd VCs of the chosen lane."""
        topo, here, dst = case
        routing = DimensionOrder(topo)
        message = Message(here, dst, 4)
        message.lane = lane
        link = topo.dor_link(here, dst)
        # Fresh header: low class regardless of lane.
        tiers = routing.candidates(_router(here, 4), message)
        assert tiers[0][0].vc % 2 == 0
        # After crossing this dimension's dateline: high class.
        message.dor_dim = link.dim
        message.dateline_bit = 1
        tiers = routing.candidates(_router(here, 4), message)
        assert tiers[0][0].vc % 2 == 1


class TestMinimalAdaptiveProperties:
    @given(torus_case(), st.integers(1, 3))
    @settings(max_examples=200)
    def test_candidates_are_exactly_productive_links(
        self, case, num_vcs
    ):
        """The relation admits every productive link on every VC, and
        nothing else."""
        topo, here, dst = case
        routing = MinimalAdaptive(topo)
        tiers = routing.candidates(
            _router(here, num_vcs), Message(here, dst, 4)
        )
        assert len(tiers) == 1
        got = {(c.port, c.vc) for c in tiers[0]}
        want = {
            (link.port, vc)
            for link in topo.productive_links(here, dst)
            for vc in range(num_vcs)
        }
        assert got == want
        assert got, "a header short of its destination can always move"

    @given(torus_case(), st.integers(1, 3))
    @settings(max_examples=200)
    def test_every_candidate_makes_progress(self, case, num_vcs):
        topo, here, dst = case
        routing = MinimalAdaptive(topo)
        by_port = {link.port: link for link in topo.links(here)}
        distance = topo.min_distance(here, dst)
        for candidate in routing.candidates(
            _router(here, num_vcs), Message(here, dst, 4)
        )[0]:
            link = by_port[candidate.port]
            assert topo.min_distance(link.dst, dst) == distance - 1


class TestNegativeFirstProperties:
    @given(torus_case(wrap=False), st.integers(1, 2))
    @settings(max_examples=200)
    def test_no_forbidden_turn(self, case, num_vcs):
        """While any negative productive hop remains, every candidate
        is negative (the turn the model forbids never appears)."""
        topo, here, dst = case
        routing = NegativeFirst(topo)
        by_port = {link.port: link for link in topo.links(here)}
        productive = topo.productive_links(here, dst)
        has_negative = any(link.direction < 0 for link in productive)
        tier = routing.candidates(
            _router(here, num_vcs), Message(here, dst, 4)
        )[0]
        assert tier, "the turn model is connected on meshes"
        for candidate in tier:
            link = by_port[candidate.port]
            assert link in productive
            if has_negative:
                assert link.direction < 0


@st.composite
def padding_case(draw):
    params = PaddingParams(
        buffer_depth=draw(st.integers(1, 4)),
        channel_latency=draw(st.integers(1, 3)),
        eject_slots=draw(st.integers(1, 4)),
        slack=draw(st.integers(1, 8)),
    )
    payload = draw(st.integers(1, 64))
    hops = draw(st.integers(1, 32))
    return params, payload, hops


class TestPaddingProperties:
    @given(padding_case())
    @settings(max_examples=200)
    def test_imin_never_below_message_length(self, case):
        params, payload, hops = case
        assert cr_wire_length(payload, hops, params) >= payload
        assert fcr_wire_length(payload, hops, params) >= payload

    @given(padding_case())
    @settings(max_examples=200)
    def test_imin_monotone_in_distance(self, case):
        """A longer minimal path never shrinks the padded length (the
        padding lemma is a lower bound over the whole path)."""
        params, payload, hops = case
        assert cr_wire_length(payload, hops + 1, params) >= cr_wire_length(
            payload, hops, params
        )
        assert fcr_wire_length(
            payload, hops + 1, params
        ) >= fcr_wire_length(payload, hops, params)

    @given(padding_case())
    @settings(max_examples=200)
    def test_cr_covers_path_capacity(self, case):
        """The committed worm occupies strictly more flits than the
        path can hold -- the pigeonhole the delivery guarantee needs."""
        params, payload, hops = case
        assert cr_wire_length(payload, hops, params) > path_capacity(
            hops, params
        )

    @given(padding_case())
    @settings(max_examples=200)
    def test_fcr_at_least_cr(self, case):
        params, payload, hops = case
        assert fcr_wire_length(payload, hops, params) >= cr_wire_length(
            payload, hops, params
        )
