"""Selection policies."""

import random

import pytest

from repro import (
    Candidate,
    FirstFree,
    LeastOccupied,
    MinimalAdaptive,
    Message,
    RandomFree,
    WormholeNetwork,
    make_selection,
    torus,
)
from repro.network.flit import Flit, FlitKind


class TestFirstFree:
    def test_deterministic(self):
        policy = FirstFree()
        free = [Candidate(0, 0), Candidate(1, 0)]
        assert policy.pick(free, None, None, random.Random(0)) == free[0]


class TestRandomFree:
    def test_covers_all_candidates(self):
        policy = RandomFree()
        free = [Candidate(p, 0) for p in range(3)]
        rng = random.Random(0)
        seen = {policy.pick(free, None, None, rng).port for _ in range(60)}
        assert seen == {0, 1, 2}

    def test_single_candidate_shortcut(self):
        policy = RandomFree()
        only = [Candidate(2, 1)]
        assert policy.pick(only, None, None, random.Random(0)) == only[0]


class TestLeastOccupied:
    def _network(self):
        topology = torus(4, 2)
        return WormholeNetwork(
            topology, MinimalAdaptive(topology), FirstFree(), num_vcs=1
        )

    def test_prefers_empty_downstream(self):
        network = self._network()
        router = network.routers[0]
        msg = Message(5, 0, 4)
        # Occupy the downstream buffer of port 0.
        busy = router.out_channels[0].sinks[0]
        busy.stage(Flit(msg, FlitKind.HEAD, 0), arrival=0)
        policy = LeastOccupied()
        free = [Candidate(0, 0), Candidate(2, 0)]
        pick = policy.pick(free, router, msg, random.Random(0))
        assert pick.port == 2

    def test_ejection_counts_as_empty(self):
        network = self._network()
        router = network.routers[0]
        policy = LeastOccupied()
        free = [Candidate(router.eject_ports[0], 0)]
        pick = policy.pick(free, router, Message(1, 0, 4), random.Random(0))
        assert pick.port == router.eject_ports[0]


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("first_free", FirstFree), ("random", RandomFree),
         ("least_occupied", LeastOccupied)],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_selection(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown selection"):
            make_selection("nope")
