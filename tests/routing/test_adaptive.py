"""Minimal-adaptive, Duato, and turn-model routing functions."""

import random

import pytest

from repro import (
    Duato,
    Engine,
    FirstFree,
    Message,
    MinimalAdaptive,
    NegativeFirst,
    ProtocolConfig,
    ProtocolMode,
    RandomFree,
    WormholeNetwork,
    mesh,
    torus,
)
from repro.network.router import Router


def candidates_at(routing, topology, num_vcs, node, dst):
    network = WormholeNetwork(
        topology, routing, FirstFree(), num_vcs=num_vcs
    )
    msg = Message(node, dst, 4)
    return routing.candidates(network.routers[node], msg)


class TestMinimalAdaptive:
    def test_single_tier_all_productive_all_vcs(self):
        topology = torus(4, 2)
        routing = MinimalAdaptive(topology)
        tiers = candidates_at(routing, topology, 2, 0,
                              topology.node_at((1, 1)))
        assert len(tiers) == 1
        ports = {c.port for c in tiers[0]}
        productive = {
            l.port for l in topology.productive_links(
                0, topology.node_at((1, 1)))
        }
        assert ports == productive
        assert {c.vc for c in tiers[0]} == {0, 1}
        assert not any(c.is_escape for c in tiers[0])

    def test_min_vcs_is_one(self):
        assert MinimalAdaptive(torus(4, 2)).min_vcs() == 1


class TestDuato:
    def test_min_vcs(self):
        assert Duato(torus(4, 2)).min_vcs() == 3
        assert Duato(mesh(4, 2)).min_vcs() == 2

    def test_tiers_split_adaptive_and_escape(self):
        topology = torus(4, 2)
        routing = Duato(topology)
        tiers = candidates_at(routing, topology, 3, 0,
                              topology.node_at((2, 2)))
        assert len(tiers) == 2
        adaptive, escape = tiers
        assert all(c.vc >= 2 for c in adaptive)
        assert all(not c.is_escape for c in adaptive)
        assert len(escape) == 1
        assert escape[0].is_escape
        assert escape[0].vc in (0, 1)

    def test_escape_follows_dor(self):
        topology = torus(4, 2)
        routing = Duato(topology)
        dst = topology.node_at((2, 2))
        tiers = candidates_at(routing, topology, 3, 0, dst)
        assert tiers[1][0].port == topology.dor_link(0, dst).port

    def test_too_few_vcs_raises(self):
        topology = torus(4, 2)
        routing = Duato(topology)
        router = Router(0, num_vcs=2)
        with pytest.raises(ValueError, match="VCs"):
            routing.candidates(router, Message(0, 5, 4))

    def test_saturated_duato_drains_without_kills(self):
        topology = torus(4, 2)
        routing = Duato(topology)
        network = WormholeNetwork(
            topology, routing, RandomFree(), num_vcs=3
        )
        engine = Engine(
            network,
            protocol=ProtocolConfig(mode=ProtocolMode.PLAIN),
            seed=9,
            watchdog=5000,
        )
        rng = random.Random(1)
        messages = []
        for src in range(topology.num_nodes):
            for _ in range(4):
                dst = rng.randrange(topology.num_nodes)
                if dst != src:
                    msg = Message(src, dst, 12, seq=engine.next_seq(src, dst))
                    engine.admit(msg)
                    messages.append(msg)
        assert engine.run_until_drained(30000)
        assert all(m.delivered for m in messages)

    def test_escape_usage_is_counted(self):
        topology = torus(4, 2)
        routing = Duato(topology)
        network = WormholeNetwork(topology, routing, RandomFree(), num_vcs=3)
        engine = Engine(
            network,
            protocol=ProtocolConfig(mode=ProtocolMode.PLAIN),
            seed=2,
            watchdog=5000,
        )
        rng = random.Random(3)
        for src in range(topology.num_nodes):
            for _ in range(6):
                dst = rng.randrange(topology.num_nodes)
                if dst != src:
                    engine.admit(
                        Message(src, dst, 16, seq=engine.next_seq(src, dst))
                    )
        engine.run_until_drained(40000)
        # Under this much pressure some headers must take the escape path.
        assert engine.stats.counters["escape_grants"] > 0


class TestNegativeFirst:
    def test_rejects_torus(self):
        with pytest.raises(ValueError, match="mesh"):
            NegativeFirst(torus(4, 2))

    def test_negative_hops_offered_first(self):
        topology = mesh(4, 2)
        routing = NegativeFirst(topology)
        src = topology.node_at((2, 1))
        dst = topology.node_at((1, 3))  # needs -1 in dim0, +2 in dim1
        tiers = candidates_at(routing, topology, 1, src, dst)
        assert len(tiers) == 1
        directions = set()
        for cand in tiers[0]:
            link = topology.links(src)[cand.port]
            directions.add(link.direction)
        assert directions == {-1}

    def test_positive_phase_fully_adaptive(self):
        topology = mesh(4, 2)
        routing = NegativeFirst(topology)
        src = topology.node_at((0, 0))
        dst = topology.node_at((2, 2))
        tiers = candidates_at(routing, topology, 1, src, dst)
        dims = set()
        for cand in tiers[0]:
            link = topology.links(src)[cand.port]
            assert link.direction == 1
            dims.add(link.dim)
        assert dims == {0, 1}

    def test_saturated_mesh_drains(self):
        topology = mesh(4, 2)
        routing = NegativeFirst(topology)
        network = WormholeNetwork(topology, routing, RandomFree(), num_vcs=1)
        engine = Engine(
            network,
            protocol=ProtocolConfig(mode=ProtocolMode.PLAIN),
            seed=4,
            watchdog=5000,
        )
        rng = random.Random(8)
        messages = []
        for src in range(topology.num_nodes):
            for _ in range(3):
                dst = rng.randrange(topology.num_nodes)
                if dst != src:
                    msg = Message(src, dst, 10, seq=engine.next_seq(src, dst))
                    engine.admit(msg)
                    messages.append(msg)
        assert engine.run_until_drained(30000)
        assert all(m.delivered for m in messages)
