"""Bounded misrouting: the permanent-fault escape hatch."""

from repro import (
    Engine,
    Message,
    MisroutingAdaptive,
    ProtocolConfig,
    ProtocolMode,
    RandomFree,
    SimConfig,
    WormholeNetwork,
    run_simulation,
    torus,
)


class TestBudget:
    def test_first_attempt_is_minimal(self):
        routing = MisroutingAdaptive(torus(4, 2))
        msg = Message(0, 1, 4)
        assert routing.misroute_budget(msg) == 0

    def test_budget_grows_with_kills(self):
        routing = MisroutingAdaptive(torus(4, 2))
        msg = Message(0, 1, 4)
        msg.kills = 2
        assert routing.misroute_budget(msg) == 4
        msg.fkills = 1
        assert routing.misroute_budget(msg) == 6

    def test_budget_capped(self):
        routing = MisroutingAdaptive(torus(4, 2), budget_cap=8)
        msg = Message(0, 1, 4)
        msg.kills = 50
        assert routing.misroute_budget(msg) == 8


class TestCandidateTiers:
    def _setup(self):
        topology = torus(4, 2)
        routing = MisroutingAdaptive(topology)
        network = WormholeNetwork(
            topology, routing, RandomFree(), num_vcs=1
        )
        return topology, routing, network

    def test_no_detour_without_budget(self):
        topology, routing, network = self._setup()
        msg = Message(0, 1, 4)
        msg.misroute_budget = 0
        tiers = routing.candidates(network.routers[0], msg)
        assert len(tiers) == 1

    def test_no_detour_while_productive_alive(self):
        topology, routing, network = self._setup()
        msg = Message(0, 1, 4)
        msg.misroute_budget = 4
        tiers = routing.candidates(network.routers[0], msg)
        assert len(tiers) == 1  # live minimal path: stay minimal

    def test_detour_offered_at_dead_end(self):
        topology, routing, network = self._setup()
        network.find_link(0, 1).dead = True  # only minimal link of 0->1
        msg = Message(0, 1, 4)
        msg.misroute_budget = 2
        tiers = routing.candidates(network.routers[0], msg)
        assert len(tiers) == 2
        assert all(c.is_misroute for c in tiers[1])
        productive = {
            l.port for l in topology.productive_links(0, 1)
        }
        assert all(c.port not in productive for c in tiers[1])

    def test_budget_exhaustion_stops_detours(self):
        topology, routing, network = self._setup()
        network.find_link(0, 1).dead = True
        msg = Message(0, 1, 4)
        msg.misroute_budget = 2
        msg.misroutes_used = 2
        tiers = routing.candidates(network.routers[0], msg)
        assert len(tiers) == 1


class TestEndToEnd:
    def test_distance_one_pair_with_dead_direct_link(self):
        """The case minimal-only routing can never deliver."""
        topology = torus(4, 2)
        routing = MisroutingAdaptive(topology)
        network = WormholeNetwork(topology, routing, RandomFree(), num_vcs=1)
        network.find_link(0, 1).dead = True
        engine = Engine(
            network,
            protocol=ProtocolConfig(mode=ProtocolMode.CR),
            seed=7,
            watchdog=8000,
        )
        msg = Message(0, 1, 4, seq=0)
        engine.admit(msg)
        assert engine.run_until_drained(20000)
        assert msg.delivered
        assert msg.kills >= 1  # first minimal attempt had to die
        assert msg.misroutes_used >= 1 or msg.attempts > 1

    def test_misrouting_config_flag(self):
        config = SimConfig(
            radix=4, dims=2, routing="fcr", misrouting=True,
            permanent_faults=2, load=0.08, message_length=8,
            warmup=100, measure=500, drain=10000, seed=5,
        )
        result = run_simulation(config)
        assert result.drained
        assert result.report["undelivered"] == 0

    def test_misrouting_rejected_for_dor(self):
        config = SimConfig(routing="dor", misrouting=True)
        try:
            config.make_routing(config.make_topology())
        except ValueError as err:
            assert "misrouting" in str(err)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected ValueError")

    def test_padding_covers_detours(self):
        """Wire length grows with the attempt's misroute budget."""
        topology = torus(4, 2)
        routing = MisroutingAdaptive(topology)
        network = WormholeNetwork(topology, routing, RandomFree(), num_vcs=1)
        network.find_link(0, 1).dead = True
        engine = Engine(
            network,
            protocol=ProtocolConfig(mode=ProtocolMode.CR),
            seed=3,
            watchdog=8000,
        )
        msg = Message(0, 1, 4, seq=0)
        engine.admit(msg)
        first_wire = None
        while not msg.delivered:
            engine.step()
            if msg.attempts == 1 and first_wire is None:
                first_wire = msg.wire_length
        assert msg.wire_length > first_wire  # retries sized for detours
