"""Hardware models: interface inventory and router delay."""

import pytest

from repro.hardware.costmodel import (
    InterfaceParams,
    injector_components,
    interface_table,
    receiver_components,
    totals,
)
from repro.hardware.routermodel import (
    RouterSpec,
    router_delay,
    router_table,
    standard_specs,
)


class TestInterfaceInventory:
    def setup_method(self):
        self.params = InterfaceParams(radix=16, dims=2)

    def test_mode_ordering_injector(self):
        """plain < cr < fcr in gate count."""
        plain = totals(injector_components(self.params, "plain"))
        cr = totals(injector_components(self.params, "cr"))
        fcr = totals(injector_components(self.params, "fcr"))
        assert plain["gates"] < cr["gates"] < fcr["gates"]

    def test_mode_ordering_receiver(self):
        plain = totals(receiver_components(self.params, "plain"))
        cr = totals(receiver_components(self.params, "cr"))
        fcr = totals(receiver_components(self.params, "fcr"))
        assert plain["gates"] < cr["gates"] < fcr["gates"]

    def test_cr_addition_is_modest(self):
        """The paper's claim: CR interface hardware is a few hundred
        gates over a plain interface."""
        plain = totals(injector_components(self.params, "plain"))
        cr = totals(injector_components(self.params, "cr"))
        delta = cr["gates"] - plain["gates"]
        assert 100 < delta < 2000

    def test_widths_grow_with_radix(self):
        small = totals(injector_components(InterfaceParams(radix=4), "cr"))
        big = totals(injector_components(InterfaceParams(radix=64), "cr"))
        assert big["gates"] > small["gates"]

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            injector_components(self.params, "bogus")
        with pytest.raises(ValueError):
            receiver_components(self.params, "bogus")

    def test_table_shape(self):
        rows = interface_table(self.params)
        assert [row["interface"] for row in rows] == ["plain", "cr", "fcr"]
        for row in rows:
            assert row["total_gates"] == (
                row["injector_gates"] + row["receiver_gates"]
            )


class TestRouterModel:
    def test_cr_faster_than_vc_adaptive(self):
        """The motivating ordering: CR < Duato/PAR/Linder-Harden."""
        table = {row["router"]: row["total_ns"] for row in router_table()}
        assert table["CR"] < table["Duato"]
        assert table["CR"] < table["PAR"]
        assert table["CR"] < table["LinderHarden"]

    def test_cr_competitive_with_dor(self):
        table = {row["router"]: row["total_ns"] for row in router_table()}
        assert table["CR"] <= table["DOR"] * 1.1

    def test_vcs_increase_delay(self):
        base = RouterSpec("x", 6, 1, 2)
        more = RouterSpec("x", 6, 4, 2)
        assert router_delay(more) > router_delay(base)

    def test_freedom_increases_routing_stage(self):
        narrow = RouterSpec("x", 6, 1, 1)
        wide = RouterSpec("x", 6, 1, 8)
        assert router_delay(wide) > router_delay(narrow)

    def test_standard_specs_cover_paper_schemes(self):
        names = {spec.name for spec in standard_specs()}
        assert {"DOR", "CR", "Duato", "PAR", "LinderHarden"} <= names

    def test_relative_column_normalised_to_dor(self):
        rows = router_table()
        dor = next(r for r in rows if r["router"] == "DOR")
        assert dor["vs_dor"] == 1.0
