"""Buffer-storage accounting."""

from repro.hardware.buffercost import (
    BufferOrganisation,
    standard_organisations,
    storage_table,
    throughput_per_flit,
)


class TestOrganisation:
    def test_flit_count(self):
        org = BufferOrganisation("x", num_vcs=2, buffer_depth=4, ports=5)
        assert org.flits_per_router == 40

    def test_bits(self):
        org = BufferOrganisation("x", 2, 4, 5)
        assert org.bits_per_router(16) == 640
        assert org.bits_per_router(32) == 1280

    def test_throughput_per_flit(self):
        org = BufferOrganisation("x", 1, 2, 5)
        assert throughput_per_flit(0.2, org) == 0.02


class TestStandardSet:
    def test_covers_e04_e05_configs(self):
        names = {o.name for o in standard_organisations()}
        assert "dor_2vc_d16" in names
        assert "cr_2vc_d2" in names
        assert "dor_8vc_d2" in names

    def test_cr_budget_fraction_of_deep_dor(self):
        orgs = {o.name: o for o in standard_organisations()}
        assert (
            orgs["cr_2vc_d2"].flits_per_router * 8
            == orgs["dor_2vc_d16"].flits_per_router
        )

    def test_table_normalised_to_cr(self):
        rows = storage_table()
        cr = next(r for r in rows if r["organisation"] == "cr_2vc_d2")
        assert cr["vs_cr_2vc"] == 1.0
        deep = next(r for r in rows if r["organisation"] == "dor_2vc_d16")
        assert deep["vs_cr_2vc"] == 8.0
