"""CLI telemetry surface: --alerts, --serve, and watch --alerts."""

import json

import pytest

from repro.campaign.monitor import write_status
from repro.cli import main as cli_main
from repro.obs.alerts import builtin_rules, rules_to_json

QUICK_RUN = [
    "run", "--routing", "cr", "--radix", "4", "--load", "0.2",
    "--warmup", "50", "--measure", "200", "--drain", "2000",
    "--message-length", "8",
]


class TestRunAlerts:
    def test_builtin_alerts_print_a_summary(self, capsys):
        assert cli_main(
            QUICK_RUN + ["--alerts", "--sample-interval", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "alerts" in out  # episodes or the explicit none-fired line

    def test_rules_file_round_trips_through_the_cli(
            self, capsys, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(rules_to_json(builtin_rules()))
        assert cli_main(
            QUICK_RUN + ["--alerts", str(path),
                         "--sample-interval", "100"]
        ) == 0

    def test_always_firing_rule_reports_the_episode(
            self, capsys, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [{
            "name": "heartbeat", "metric": "delivery_ratio",
            "op": "<=", "value": 1.0, "severity": "info",
        }]}))
        assert cli_main(
            QUICK_RUN + ["--alerts", str(path),
                         "--sample-interval", "100"]
        ) == 0
        out = capsys.readouterr().out
        assert "alerts (1 episode(s))" in out
        assert "[info] heartbeat" in out
        assert "still firing" in out

    def test_missing_rules_file_is_a_usage_error(self, capsys):
        assert cli_main(
            QUICK_RUN + ["--alerts", "/no/such/rules.json"]
        ) == 2
        err = capsys.readouterr().err
        assert "no alert rules file" in err


class TestRunServe:
    def test_serve_announces_the_endpoints(self, capsys):
        # Port 0 binds an ephemeral loopback port; the CLI announces
        # the resolved URL on stderr before the run starts.
        assert cli_main(QUICK_RUN + ["--serve", "127.0.0.1:0"]) == 0
        err = capsys.readouterr().err
        assert "telemetry: http://127.0.0.1:" in err
        assert "/metrics" in err

    def test_trace_accepts_serve(self, capsys):
        assert cli_main([
            "trace", "--routing", "cr", "--radix", "4",
            "--load", "0.2", "--cycles", "400",
            "--message-length", "8", "--sample-interval", "100",
            "--serve", "127.0.0.1:0",
        ]) == 0
        assert "telemetry:" in capsys.readouterr().err

    def test_bad_serve_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(QUICK_RUN + ["--serve"])  # needs a value

    def test_malformed_serve_spec_exits_2_with_a_message(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(QUICK_RUN + ["--serve", "host:port:extra"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "is not [HOST:]PORT" in err


class TestWatchAlerts:
    def status(self, state="finished"):
        return {
            "name": "al", "state": state, "done": 2, "total": 2,
            "alerts": {
                "total": 1,
                "by_rule": {"cascade-outage": 1},
                "recent": [{
                    "rule": "cascade-outage", "severity": "critical",
                    "state": "firing", "fired_at": 400,
                    "resolved_at": None, "value": 2.0,
                    "message": "outage", "point_id": "p0",
                }],
            },
        }

    def test_watch_alerts_filter(self, capsys, tmp_path):
        path = str(tmp_path / "al.status.json")
        write_status(path, self.status())
        assert cli_main([
            "campaign", "watch", "al", "--status-file", path,
            "--once", "--alerts",
        ]) == 0
        out = capsys.readouterr().out
        assert "— alerts" in out
        assert "cascade-outage" in out
        assert "elapsed" not in out

    def test_watch_shows_alerts_in_the_full_view(
            self, capsys, tmp_path):
        path = str(tmp_path / "al.status.json")
        write_status(path, self.status())
        assert cli_main([
            "campaign", "watch", "al", "--status-file", path, "--once",
        ]) == 0
        out = capsys.readouterr().out
        assert "alerts: 1 episode(s)" in out
        assert "cascade-outage" in out
