"""Trace/introspection helpers."""

from repro import (
    SimConfig,
    buffer_occupancy,
    channel_heatmap,
    channel_load_stats,
    format_timeline,
    message_timeline,
    occupancy_snapshot,
    run_simulation,
)


def finished_engine():
    result = run_simulation(
        SimConfig(
            radix=4, dims=2, routing="cr", load=0.2, message_length=8,
            warmup=50, measure=300, drain=3000, seed=2,
        ),
        keep_engine=True,
    )
    return result


class TestTimeline:
    def test_delivered_message_has_full_lifecycle(self):
        result = finished_engine()
        msg = result.ledger.deliveries[0]
        events = dict(message_timeline(msg))
        assert events["phase"] == "delivered"
        assert events["created"] <= events["first_injection"]
        assert events["header_at_destination"] <= events["committed"]
        assert events["committed"] <= events["delivered"]
        assert events["total_latency"] == msg.total_latency()

    def test_format_timeline_text(self):
        result = finished_engine()
        msg = result.ledger.deliveries[0]
        text = format_timeline(msg)
        assert f"message {msg.uid}" in text
        assert "delivered" in text


class TestOccupancy:
    def test_empty_after_drain(self):
        result = finished_engine()
        occ = buffer_occupancy(result.engine)
        assert set(occ) == set(range(16))
        assert all(v == 0 for v in occ.values())

    def test_snapshot_grid_shape(self):
        result = finished_engine()
        snapshot = occupancy_snapshot(result.engine)
        lines = snapshot.splitlines()
        assert len(lines) == 4  # 4x4 torus
        assert all("." in line for line in lines)  # drained

    def test_snapshot_shows_parked_worms(self):
        from repro import (
            Engine,
            FirstFree,
            Message,
            MinimalAdaptive,
            ProtocolConfig,
            ProtocolMode,
            WormholeNetwork,
            torus,
        )

        topology = torus(4, 2)
        network = WormholeNetwork(
            topology, MinimalAdaptive(topology), FirstFree(), num_vcs=1
        )
        engine = Engine(
            network, protocol=ProtocolConfig(mode=ProtocolMode.PLAIN), seed=0
        )
        engine.admit(Message(0, 5, 30, seq=0))
        for _ in range(10):
            engine.step()
        occ = buffer_occupancy(engine)
        assert sum(occ.values()) > 0
        assert any(ch.isdigit() for ch in occupancy_snapshot(engine))


class TestChannelStats:
    def test_heatmap_sorted_and_bounded(self):
        result = finished_engine()
        rows = channel_heatmap(result.engine, top=5)
        assert len(rows) == 5
        flits = [row["flits"] for row in rows]
        assert flits == sorted(flits, reverse=True)
        assert flits[0] > 0

    def test_load_stats(self):
        result = finished_engine()
        stats = channel_load_stats(result.engine)
        assert 0 < stats["utilisation"] < 1
        assert stats["imbalance"] >= 1.0

    def test_adaptive_balances_better_than_dor_on_transpose(self):
        base = SimConfig(
            radix=4, dims=2, pattern="transpose", load=0.3,
            num_vcs=2, message_length=8,
            warmup=100, measure=600, drain=4000, seed=3,
        )
        cr = run_simulation(base.with_(routing="cr"), keep_engine=True)
        dor = run_simulation(base.with_(routing="dor"), keep_engine=True)
        cr_imbalance = channel_load_stats(cr.engine)["imbalance"]
        dor_imbalance = channel_load_stats(dor.engine)["imbalance"]
        assert cr_imbalance < dor_imbalance
