"""SVG network rendering."""

import xml.dom.minidom

import pytest

from repro import SimConfig, run_simulation
from repro.stats.svg import (
    _heat_colour,
    render_network_svg,
    render_sparkline,
    render_sparkline_rows,
)


def rendered_engine(**overrides):
    base = dict(
        routing="cr", radix=4, dims=2, load=0.25, message_length=8,
        warmup=0, measure=400, drain=0, seed=3,
    )
    base.update(overrides)
    return run_simulation(SimConfig(**base), keep_engine=True).engine


class TestHeatColour:
    def test_extremes(self):
        assert _heat_colour(0.0) == "rgb(255,255,255)"
        assert _heat_colour(1.0) == "rgb(255,0,0)"

    def test_midpoint_is_amber(self):
        assert _heat_colour(0.5) == "rgb(255,170,0)"

    def test_clamps_out_of_range(self):
        assert _heat_colour(-1.0) == _heat_colour(0.0)
        assert _heat_colour(2.0) == _heat_colour(1.0)


class TestRendering:
    def test_well_formed_xml(self):
        svg = render_network_svg(rendered_engine(), title="test")
        xml.dom.minidom.parseString(svg)

    def test_one_circle_per_router(self):
        engine = rendered_engine()
        svg = render_network_svg(engine)
        assert svg.count("<circle") == engine.topology.num_nodes

    def test_one_line_per_link_channel(self):
        engine = rendered_engine()
        svg = render_network_svg(engine)
        assert svg.count("<line") == len(engine.network.link_channels)

    def test_dead_links_dashed(self):
        engine = rendered_engine(permanent_faults=1, routing="fcr",
                                 misrouting=True, load=0.1)
        svg = render_network_svg(engine)
        assert "stroke-dasharray" in svg

    def test_title_rendered(self):
        svg = render_network_svg(rendered_engine(), title="hello torus")
        assert "hello torus" in svg

    def test_rejects_non_2d(self):
        engine = rendered_engine(dims=1, radix=6)
        with pytest.raises(ValueError, match="2D"):
            render_network_svg(engine)

    def test_wrap_stubs_are_axis_aligned(self):
        svg = render_network_svg(rendered_engine())
        for line in svg.splitlines():
            if "<line" not in line:
                continue
            attrs = dict(
                part.split("=")
                for part in line.replace("<line ", "").replace("/>", "")
                .replace('"', "").split()
                if "=" in part
            )
            dx = float(attrs["x2"]) - float(attrs["x1"])
            dy = float(attrs["y2"]) - float(attrs["y1"])
            assert dx == 0 or dy == 0, f"diagonal link: {line}"


class TestSparklines:
    """Sampler series can hold None (all-quiescent windows)."""

    def test_rows_with_none_samples_render(self):
        svg = render_sparkline_rows(
            [("latency", [None, 4.0, None, 2.0]), ("kills", [None, None])],
            title="quiescent intervals",
        )
        xml.dom.minidom.parseString(svg)
        assert "latency" in svg and "kills" in svg
        # None plots as 0.0, so the annotations span 0..4.
        assert "max 4" in svg and "min 0" in svg

    def test_single_none_sample_renders(self):
        svg = render_sparkline_rows([("latency", [None])])
        xml.dom.minidom.parseString(svg)
        assert "<polyline" in svg

    def test_bare_sparkline_tolerates_none(self):
        fragment = render_sparkline([1.0, None, 3.0])
        assert fragment.startswith("<polyline")

    def test_empty_rows_still_labelled(self):
        svg = render_sparkline_rows([("latency", [])])
        assert "(no samples)" in svg
