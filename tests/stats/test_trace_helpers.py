"""Trace helpers under torus wraps, dead channels, and tied loads."""

from repro import (
    SimConfig,
    channel_heatmap,
    channel_load_stats,
    format_timeline,
    message_timeline,
    run_simulation,
)


def finished_engine(**overrides):
    params = dict(
        radix=4, dims=2, routing="cr", load=0.2, message_length=8,
        warmup=50, measure=300, drain=3000, seed=2,
    )
    params.update(overrides)
    return run_simulation(SimConfig(**params), keep_engine=True).engine


class TestWrapLinks:
    def test_heatmap_rows_flag_wrap_channels(self):
        # Uniform traffic on a small torus uses the wraparound links;
        # the heatmap must label them so hot wraps are identifiable.
        engine = finished_engine()
        rows = channel_heatmap(engine, top=len(
            engine.network.link_channels
        ))
        by_flag = {True: 0, False: 0}
        for row in rows:
            by_flag[bool(row["wrap"])] += 1
        assert by_flag[True] > 0 and by_flag[False] > 0

    def test_wrap_channels_carry_traffic_under_uniform_load(self):
        engine = finished_engine()
        wrap_flits = sum(
            ch.flits_carried
            for ch in engine.network.link_channels if ch.is_wrap
        )
        assert wrap_flits > 0


class TestDeadChannels:
    def kill_some(self, engine, n=3):
        channels = sorted(
            engine.network.link_channels,
            key=lambda ch: (ch.src_node, ch.dst_node),
        )[:n]
        for channel in channels:
            channel.dead = True
        return channels

    def test_load_stats_count_live_and_dead(self):
        engine = finished_engine()
        total = len(engine.network.link_channels)
        self.kill_some(engine, n=3)
        stats = channel_load_stats(engine)
        assert stats["dead_channels"] == 3
        assert stats["live_channels"] == total - 3

    def test_imbalance_ignores_dead_channels(self):
        # A dead channel carries nothing by construction; counting its
        # zero would inflate max/mean exactly when faults are active.
        engine = finished_engine()
        before = channel_load_stats(engine)
        killed = self.kill_some(engine, n=2)
        after = channel_load_stats(engine)
        live_counts = [
            ch.flits_carried
            for ch in engine.network.link_channels if not ch.dead
        ]
        mean = sum(live_counts) / len(live_counts)
        assert after["imbalance"] == max(live_counts) / mean
        # Killing channels that carried flits shifts the live mean.
        assert any(ch.flits_carried for ch in killed)
        assert after["utilisation"] != before["utilisation"]

    def test_all_dead_degenerates_to_zero(self):
        engine = finished_engine()
        for channel in engine.network.link_channels:
            channel.dead = True
        stats = channel_load_stats(engine)
        assert stats["utilisation"] == 0.0
        assert stats["imbalance"] == 0.0
        assert stats["live_channels"] == 0

    def test_heatmap_reports_dead_flag(self):
        engine = finished_engine()
        killed = self.kill_some(engine, n=1)[0]
        link = f"{killed.src_node}->{killed.dst_node}"
        rows = channel_heatmap(engine, top=len(
            engine.network.link_channels
        ))
        row = next(r for r in rows if r["link"] == link)
        assert row["dead"] is True


class TestHeatmapDeterminism:
    def test_ties_break_by_src_then_dst(self):
        # An unrun network has every count tied at zero: the order must
        # still be fully determined (construction order is not part of
        # the reproducibility contract).
        engine = SimConfig(radix=4, dims=2, message_length=8).build()
        rows = channel_heatmap(engine, top=len(
            engine.network.link_channels
        ))
        keys = [tuple(map(int, row["link"].split("->"))) for row in rows]
        assert keys == sorted(keys)

    def test_identical_runs_produce_identical_heatmaps(self):
        first = channel_heatmap(finished_engine(), top=10)
        second = channel_heatmap(finished_engine(), top=10)
        assert first == second

    def test_sorted_by_flits_descending(self):
        rows = channel_heatmap(finished_engine(), top=10)
        flits = [row["flits"] for row in rows]
        assert flits == sorted(flits, reverse=True)


class TestKillHistoryTimeline:
    def killed_delivery(self):
        engine = finished_engine(load=0.45, seed=5)
        for message in engine.ledger.deliveries:
            if message.kill_history:
                return message
        raise AssertionError("no delivered message was ever killed")

    def test_timeline_lists_each_kill_with_cycle_and_cause(self):
        message = self.killed_delivery()
        events = dict(message_timeline(message))
        for index, (cycle, cause) in enumerate(message.kill_history):
            assert events[f"kill_{index}"] == f"t={cycle} {cause}"

    def test_history_length_matches_kill_counters(self):
        message = self.killed_delivery()
        assert len(message.kill_history) == message.kills + message.fkills

    def test_format_timeline_shows_the_kills(self):
        message = self.killed_delivery()
        text = format_timeline(message)
        assert "kill_0" in text

    def test_unkilled_message_has_no_kill_entries(self):
        engine = finished_engine()
        message = next(
            m for m in engine.ledger.deliveries if not m.kill_history
        )
        events = dict(message_timeline(message))
        assert not any(key.startswith("kill_") for key in events)
