"""Latency summaries, the collector, and table rendering."""

import pytest

from repro.network.message import Message
from repro.stats.collector import StatsCollector
from repro.stats.latency import histogram, percentile, summarize
from repro.stats.report import format_series, format_table


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 1, 9]
        assert percentile(sorted(values), 0.0) == 1
        assert percentile(sorted(values), 1.0) == 9

    def test_single_value(self):
        assert percentile([7], 0.9) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)


class TestSummarize:
    def test_moments(self):
        summary = summarize([2, 4, 6, 8])
        assert summary.mean == 5.0
        assert summary.count == 4
        assert summary.minimum == 2
        assert summary.maximum == 8
        assert summary.std == pytest.approx(5.0**0.5)

    def test_empty_sample(self):
        summary = summarize([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_as_dict(self):
        d = summarize([1, 2, 3]).as_dict()
        assert d["count"] == 3
        assert "p95" in d


class TestHistogram:
    def test_binning(self):
        bins = histogram([0, 1, 15, 16, 17, 40], bin_width=16)
        assert bins == [(0, 3), (16, 2), (32, 1)]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            histogram([1], bin_width=0)


class TestCollector:
    def _delivered_message(self, created, injected, delivered):
        msg = Message(0, 1, 8, created_at=created)
        msg.begin_attempt(8, now=injected)
        msg.delivered_at = delivered
        return msg

    def test_window_marking(self):
        stats = StatsCollector(4, warmup_end=100, measure_end=200)
        early = Message(0, 1, 8, created_at=50)
        stats.on_created(early, 50)
        assert not early.measured
        inside = Message(0, 1, 8, created_at=150)
        stats.on_created(inside, 150)
        assert inside.measured

    def test_latency_only_for_measured(self):
        stats = StatsCollector(4, warmup_end=0, measure_end=1000)
        msg = self._delivered_message(10, 12, 50)
        stats.on_created(msg, 10)
        stats.on_delivery(msg, 50, corrupt=False)
        assert stats.latency_summary().count == 1
        assert stats.latency_summary().mean == 40

    def test_throughput_window(self):
        stats = StatsCollector(num_nodes=2, warmup_end=0, measure_end=100)
        msg = self._delivered_message(1, 2, 50)
        stats.on_created(msg, 1)
        stats.on_delivery(msg, 50, corrupt=False)
        late = self._delivered_message(1, 2, 150)
        stats.on_created(late, 1)
        stats.on_delivery(late, 150, corrupt=False)  # outside window
        assert stats.throughput_flits_per_node_cycle() == \
            pytest.approx(8 / (2 * 100))

    def test_pad_overhead(self):
        stats = StatsCollector(4)
        for _ in range(6):
            stats.on_flit_injected(is_pad=False)
        for _ in range(2):
            stats.on_flit_injected(is_pad=True)
        assert stats.pad_overhead() == pytest.approx(0.25)

    def test_kill_accounting(self):
        stats = StatsCollector(4)
        msg = Message(0, 1, 8)
        stats.on_kill(msg, "source_timeout")
        stats.on_kill(msg, "fkill")
        assert stats.counters["kills"] == 2
        assert stats.counters["kills_source_timeout"] == 1
        assert stats.counters["kills_fkill"] == 1

    def test_undelivered_census(self):
        stats = StatsCollector(4, warmup_end=0, measure_end=100)
        a = self._delivered_message(10, 11, 90)
        b = Message(0, 1, 8, created_at=20)
        stats.on_created(a, 10)
        stats.on_created(b, 20)
        stats.on_delivery(a, 90, corrupt=False)
        assert stats.undelivered_measured() == 1

    def test_report_keys(self):
        stats = StatsCollector(4, warmup_end=0, measure_end=100)
        report = stats.report()
        for key in ("latency_mean", "throughput", "kill_rate",
                    "pad_overhead", "undelivered"):
            assert key in report


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows, ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_series_pivot(self):
        rows = [
            {"load": 0.1, "config": "cr", "latency": 5},
            {"load": 0.1, "config": "dor", "latency": 7},
            {"load": 0.2, "config": "cr", "latency": 9},
            {"load": 0.2, "config": "dor", "latency": 12},
        ]
        text = format_series(rows, x="load", y="latency")
        lines = text.splitlines()
        assert "cr" in lines[0] and "dor" in lines[0]
        assert len(lines) == 4
