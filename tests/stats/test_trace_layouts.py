"""Trace helpers on non-2D layouts (fallback paths)."""

from repro import (
    Engine,
    FirstFree,
    Message,
    MinimalAdaptive,
    ProtocolConfig,
    ProtocolMode,
    WormholeNetwork,
    occupancy_snapshot,
    torus,
)
from repro.topology.hypercube import Hypercube


def engine_for(topology):
    network = WormholeNetwork(
        topology, MinimalAdaptive(topology), FirstFree(), num_vcs=1
    )
    return Engine(
        network, protocol=ProtocolConfig(mode=ProtocolMode.PLAIN), seed=0
    )


class TestSnapshotFallbacks:
    def test_1d_ring_listing(self):
        engine = engine_for(torus(6, 1))
        engine.admit(Message(0, 3, 20, seq=0))
        for _ in range(6):
            engine.step()
        text = occupancy_snapshot(engine)
        assert text.startswith("occupancy:")
        assert any(ch.isdigit() for ch in text)

    def test_1d_empty_listing(self):
        engine = engine_for(torus(6, 1))
        assert occupancy_snapshot(engine) == "occupancy: (empty)"

    def test_3d_listing(self):
        engine = engine_for(torus(3, 3))
        engine.admit(Message(0, 13, 12, seq=0))
        for _ in range(4):
            engine.step()
        text = occupancy_snapshot(engine)
        assert text.startswith("occupancy:")

    def test_hypercube_coords_are_bits_not_grid(self):
        engine = engine_for(Hypercube(3))
        engine.admit(Message(0, 7, 8, seq=0))
        for _ in range(3):
            engine.step()
        text = occupancy_snapshot(engine)
        assert text.startswith("occupancy:")
