"""Fault models: transient corruption, permanent schedules, composition."""

import random

import pytest

from repro import (
    ChannelFault,
    CompositeFaultModel,
    FirstFree,
    MinimalAdaptive,
    NoFaults,
    PermanentFaultSchedule,
    TransientFaults,
    WormholeNetwork,
    kill_router,
    random_channel_faults,
    torus,
)
from repro.network.flit import Flit, FlitKind
from repro.network.message import Message


def make_network(radix=4):
    topology = torus(radix, 2)
    return WormholeNetwork(
        topology, MinimalAdaptive(topology), FirstFree(), num_vcs=1
    )


def a_flit(kind=FlitKind.BODY):
    return Flit(Message(0, 1, 4), kind, 1)


class TestTransientFaults:
    def test_rate_zero_never_corrupts(self):
        model = TransientFaults(0.0)
        rng = random.Random(0)
        channel = make_network().link_channels[0]
        assert not any(
            model.corrupt(a_flit(), channel, rng) for _ in range(1000)
        )

    def test_rate_one_always_corrupts(self):
        model = TransientFaults(1.0)
        rng = random.Random(0)
        channel = make_network().link_channels[0]
        assert all(model.corrupt(a_flit(), channel, rng) for _ in range(50))

    def test_empirical_rate(self):
        model = TransientFaults(0.1)
        rng = random.Random(42)
        channel = make_network().link_channels[0]
        hits = sum(
            model.corrupt(a_flit(), channel, rng) for _ in range(20000)
        )
        assert 0.08 < hits / 20000 < 0.12

    def test_payload_only_mode(self):
        model = TransientFaults(1.0, payload_only=True)
        rng = random.Random(0)
        channel = make_network().link_channels[0]
        assert model.corrupt(a_flit(FlitKind.HEAD), channel, rng)
        assert not model.corrupt(a_flit(FlitKind.PAD), channel, rng)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            TransientFaults(1.5)


class TestPermanentFaults:
    def test_schedule_applies_at_cycle(self):
        network = make_network()
        link = network.link_channels[0]
        schedule = PermanentFaultSchedule(
            [ChannelFault(10, link.src_node, link.dst_node)]
        )
        schedule.on_cycle(9, network)
        assert not link.dead
        schedule.on_cycle(10, network)
        assert link.dead
        assert len(schedule.applied) == 1

    def test_random_faults_bidirectional(self):
        network = make_network()
        faults = random_channel_faults(
            network, 3, random.Random(0), bidirectional=True
        )
        assert len(faults) == 6
        pairs = {(f.src, f.dst) for f in faults}
        for fault in faults:
            assert (fault.dst, fault.src) in pairs

    def test_random_faults_keep_live_links(self):
        network = make_network()
        faults = random_channel_faults(network, 4, random.Random(1))
        dead_out = {}
        for fault in faults:
            dead_out[fault.src] = dead_out.get(fault.src, 0) + 1
        for node, count in dead_out.items():
            assert count < len(network.topology.links(node))

    def test_kill_router_darkens_all_its_links(self):
        network = make_network()
        killed = kill_router(network, 5)
        assert killed == 8  # 4 out + 4 in on a 2D torus
        for channel in network.link_channels:
            if channel.src_node == 5 or channel.dst_node == 5:
                assert channel.dead

    def test_find_link_missing(self):
        network = make_network()
        with pytest.raises(KeyError):
            network.find_link(0, 9)  # not adjacent


class TestComposite:
    def test_combines_models(self):
        network = make_network()
        link = network.link_channels[0]
        schedule = PermanentFaultSchedule(
            [ChannelFault(0, link.src_node, link.dst_node)]
        )
        model = CompositeFaultModel([NoFaults(), schedule,
                                     TransientFaults(1.0)])
        model.on_cycle(0, network)
        assert link.dead
        assert model.corrupt(a_flit(), link, random.Random(0))

    def test_no_faults_is_inert(self):
        model = NoFaults()
        network = make_network()
        model.on_cycle(0, network)
        assert not model.corrupt(a_flit(), network.link_channels[0],
                                 random.Random(0))
