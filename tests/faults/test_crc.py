"""CRC-16 check-code model: the detection assumption grounded."""

import random

import pytest

from repro.faults.crc import check_flit, crc16, flip_bits, flit_with_crc


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16(b"123456789") == 0x29B1

    def test_empty_payload(self):
        assert crc16(b"") == 0xFFFF

    def test_roundtrip(self):
        payload = b"\x12\x34\x56\x78"
        assert check_flit(flit_with_crc(payload))

    def test_too_short_flit(self):
        with pytest.raises(ValueError):
            check_flit(b"\x01")


class TestDetection:
    def test_all_single_bit_errors_detected(self):
        payload = bytes(range(8))
        flit = flit_with_crc(payload)
        for bit in range(len(flit) * 8):
            assert not check_flit(flip_bits(flit, [bit])), (
                f"single-bit error at {bit} undetected"
            )

    def test_all_double_bit_errors_detected_sampled(self):
        payload = bytes(range(6))
        flit = flit_with_crc(payload)
        rng = random.Random(0)
        total_bits = len(flit) * 8
        for _ in range(500):
            a, b = rng.sample(range(total_bits), 2)
            assert not check_flit(flip_bits(flit, [a, b]))

    def test_burst_errors_detected(self):
        payload = bytes(range(16))
        flit = flit_with_crc(payload)
        for start in range(0, len(flit) * 8 - 16, 7):
            burst = list(range(start, start + 13))
            assert not check_flit(flip_bits(flit, burst))

    def test_flip_bits_out_of_range(self):
        with pytest.raises(ValueError):
            flip_bits(b"\x00", [9])
