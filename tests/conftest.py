"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import SimConfig


@pytest.fixture
def tiny_config() -> SimConfig:
    """A 4x4 torus run small enough for unit tests (<1s)."""
    return SimConfig(
        radix=4,
        dims=2,
        warmup=100,
        measure=400,
        drain=3000,
        message_length=8,
        load=0.2,
        seed=11,
    )


def run_tiny(config: SimConfig):
    """Convenience wrapper so tests read naturally."""
    from repro import run_simulation

    return run_simulation(config)
