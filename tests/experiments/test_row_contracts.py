"""Row-schema contracts for every experiment module.

The benchmark assertions, EXPERIMENTS.md, and the CSV exports all key
into experiment rows by column name; these tests pin each experiment's
output schema so a refactor cannot silently break the harness.
"""

import pytest

from repro.experiments import REGISTRY, Scale

TINY = Scale(
    name="tiny-contract",
    radix=4,
    dims=2,
    warmup=40,
    measure=200,
    drain=2500,
    message_length=8,
    loads=(0.1,),
    seed=8,
)

#: experiment id -> columns every row must carry
EXPECTED_COLUMNS = {
    "e01": {"load", "config", "latency_mean", "throughput"},
    "e02": {"timeout", "latency_mean", "throughput", "kills"},
    "e03": {"load", "config", "latency_mean"},
    "e04": {"load", "config", "part", "latency_mean", "throughput"},
    "e05": {"load", "config", "latency_mean", "throughput"},
    "e06": {"load", "config", "latency_mean", "throughput"},
    "e07": {"fault_rate", "latency_mean", "corrupt_deliveries",
            "undelivered"},
    "e08": {"dead_links", "latency_mean", "kills", "undelivered"},
    "e09": {"load", "escape_grants", "cr_kills"},
    "e10": {"load", "scheme", "kills", "latency_mean"},
    "e11": {"buffer_depth", "payload", "hops"},
    "e12": {"load", "pairs_checked", "fifo_violations"},
    "e13": {"load", "routing", "short_mean", "long_mean"},
    "e14": {"load", "routing", "std", "tail_ratio"},
    "e15": {"channel_latency", "routing", "pad_overhead"},
    "e16": {"pattern", "routing", "latency_mean", "throughput"},
    "e17": {"load", "config", "latency_mean", "kill_rate"},
    "e18": {"fault_rate", "scheme", "flits_per_payload", "lost"},
    "e19": {"load", "scheme", "kills", "fifo_violations", "copy_held"},
    "e20": {"part", "scheme", "recovery_events", "undelivered"},
    "e21": {"latency_bin", "cr", "dor"},
    "e22": {"load", "scheme", "clock_ns", "latency_ns",
            "throughput_flits_us"},
    "e23": {"load", "scheme", "workload_msgs", "makespan",
            "undelivered"},
    "t01": {"interface", "total_gates", "total_latches"},
    "t02": {"router", "vcs", "total_ns", "vs_dor"},
    "t03": {"organisation", "flits_per_router", "thr_per_buffer_flit"},
}


_ROWS_CACHE = {}


def rows_for(exp_id):
    if exp_id not in _ROWS_CACHE:
        _ROWS_CACHE[exp_id] = REGISTRY[exp_id].run(TINY)
    return _ROWS_CACHE[exp_id]


def test_contract_covers_registry():
    assert set(EXPECTED_COLUMNS) == set(REGISTRY)


@pytest.mark.parametrize("exp_id", sorted(EXPECTED_COLUMNS))
def test_rows_carry_expected_columns(exp_id):
    rows = rows_for(exp_id)
    assert rows, f"{exp_id} produced no rows"
    required = EXPECTED_COLUMNS[exp_id]
    for row in rows:
        missing = required - set(row)
        assert not missing, f"{exp_id} row missing {missing}: {row}"


@pytest.mark.parametrize("exp_id", sorted(EXPECTED_COLUMNS))
def test_tables_render(exp_id):
    module = REGISTRY[exp_id]
    text = module.table(rows_for(exp_id))
    assert isinstance(text, str) and len(text.splitlines()) >= 3
