"""Experiment registry and smoke runs at a tiny scale.

Full-fidelity runs live in benchmarks/; here each experiment module is
exercised end-to-end on a 4x4 torus with very short runs so the suite
stays fast while covering the harness code paths.
"""

import pytest

from repro.experiments import PAPER, QUICK, REGISTRY, Scale

TINY = Scale(
    name="tiny",
    radix=4,
    dims=2,
    warmup=50,
    measure=250,
    drain=2500,
    message_length=8,
    loads=(0.1, 0.25),
    seed=3,
)

EXPECTED_IDS = {
    "e01", "e02", "e03", "e04", "e05", "e06", "e07", "e08",
    "e09", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17",
    "e18", "e19", "e20", "e21", "e22", "e23", "t01", "t02", "t03",
}

CHEAP = ("t01", "t02")
MODERATE = ("e02", "e07", "e08", "e09", "e10", "e11", "e12", "e15", "e16")
HEAVY = ("e01", "e03", "e04", "e05", "e06", "e13", "e14", "e17", "e18",
         "e19", "e20", "e21", "e22", "e23", "t03")


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(REGISTRY) == EXPECTED_IDS

    def test_modules_expose_run_and_table(self):
        for module in REGISTRY.values():
            assert callable(module.run)
            assert callable(module.table)

    def test_scales(self):
        assert QUICK.radix == 8
        assert PAPER.radix == 16
        assert PAPER.measure > QUICK.measure

    def test_scale_base_config(self):
        config = TINY.base_config(routing="dor", load=0.1)
        assert config.radix == 4
        assert config.routing == "dor"

    def test_scaled_override(self):
        smaller = QUICK.scaled(radix=4)
        assert smaller.radix == 4
        assert smaller.measure == QUICK.measure


@pytest.mark.parametrize("exp_id", CHEAP)
def test_cheap_experiments_produce_tables(exp_id):
    module = REGISTRY[exp_id]
    rows = module.run(TINY)
    assert rows
    text = module.table(rows)
    assert exp_id.upper().replace("E0", "E0").lower() in text.lower() or text


@pytest.mark.parametrize("exp_id", MODERATE)
def test_moderate_experiments_run_tiny(exp_id):
    module = REGISTRY[exp_id]
    rows = module.run(TINY)
    assert rows
    assert isinstance(module.table(rows), str)


@pytest.mark.parametrize("exp_id", HEAVY)
def test_heavy_experiments_run_tiny(exp_id):
    module = REGISTRY[exp_id]
    rows = module.run(TINY.scaled(loads=(0.15,)))
    assert rows
    assert isinstance(module.table(rows), str)


class TestExperimentSemantics:
    def test_e07_integrity_columns_zero(self):
        rows = REGISTRY["e07"].run(TINY)
        for row in rows:
            assert row["corrupt_deliveries"] == 0
            assert row["late_corruption"] == 0

    def test_e08_everything_delivered(self):
        rows = REGISTRY["e08"].run(TINY)
        for row in rows:
            assert row["undelivered"] == 0

    def test_e12_no_fifo_violations(self):
        rows = REGISTRY["e12"].run(TINY)
        for row in rows:
            assert row["fifo_violations"] == 0

    def test_e11_measured_overhead_close_to_analytic(self):
        from repro.core.padding import PaddingParams, cr_wire_length

        rows = REGISTRY["e11"].run(TINY)
        measured = [r for r in rows if r["hops"] == "sim"][0]
        frac = measured["measured_pad_overhead"]
        # Bound by the analytic overheads of min and max distances.
        params = PaddingParams(buffer_depth=2)
        lo_wire = cr_wire_length(TINY.message_length, 1, params)
        hi_wire = cr_wire_length(TINY.message_length, 4, params)
        lo = 1 - TINY.message_length / hi_wire
        assert 0.0 <= frac <= lo + 0.25
