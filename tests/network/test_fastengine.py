"""FastEngine differential equivalence and behaviour tests.

The fast engine's contract is flit-for-flit identity with the
reference engine, so nearly every test here is a differential run:
same config, both engines, identical events/report/channel state.
"""

from __future__ import annotations

import pytest

from repro.network.fastengine import FastEngine
from repro.network.message import reset_uid_counter
from repro.obs.tracing import run_traced
from repro.sim.config import SimConfig
from repro.verify import (
    ENGINE_EQUIVALENCE_PRESETS,
    assert_engines_equivalent,
    engine_equivalence_presets,
    iter_fuzz_equivalence_configs,
)

# Small-but-busy base for the targeted cases: large enough to exercise
# kills/misrouting, small enough to keep the differential runs quick.
SMALL = dict(
    radix=4, dims=2, message_length=8, load=0.3,
    warmup=60, measure=240, drain=800, seed=11,
)


class TestPresetEquivalence:
    """Acceptance presets: e01, e07, and the e16-style no-VC mesh."""

    @pytest.mark.parametrize("name", ENGINE_EQUIVALENCE_PRESETS)
    def test_preset_is_flit_identical(self, name):
        config = engine_equivalence_presets()[name]
        assert_engines_equivalent(config, label=name)


class TestFuzzCorpusEquivalence:
    """The seeded 25-config fuzz corpus, run under both engines."""

    @pytest.mark.parametrize(
        "index,config",
        list(iter_fuzz_equivalence_configs()),
        ids=lambda value: (
            f"case{value:02d}" if isinstance(value, int) else ""
        ),
    )
    def test_fuzz_case_is_flit_identical(self, index, config):
        assert_engines_equivalent(config, label=f"fuzz case {index}")


class TestTargetedEquivalence:
    def test_pcs_falls_back_and_stays_identical(self):
        # PCS uses the reference stepping path inside FastEngine; the
        # outputs must still match exactly.
        assert_engines_equivalent(
            SimConfig(routing="pcs", num_vcs=2, **SMALL),
            label="pcs",
        )

    def test_swretry_falls_back_and_stays_identical(self):
        assert_engines_equivalent(
            SimConfig(
                routing="dor", software_retry=True, num_vcs=2,
                fault_rate=5e-4, **SMALL
            ),
            label="swretry",
        )

    def test_faulty_run_is_identical(self):
        assert_engines_equivalent(
            SimConfig(
                routing="fcr", num_vcs=2, fault_rate=5e-4, **SMALL
            ),
            label="fcr-faults",
        )


class TestE23TraceIdentity:
    """E23's recorded-workload replay, run under both engines.

    E23's whole argument rests on byte-identical workloads, so the
    engines must agree not just on generated traffic but on trace
    replay — including the drained makespan cycle count.
    """

    @pytest.mark.parametrize("scheme", ("cr", "dor"))
    def test_replay_is_flit_identical(self, scheme):
        from repro.traffic.trace import record_trace

        reset_uid_counter()
        trace = record_trace(SimConfig(routing="cr", **SMALL))
        assert_engines_equivalent(
            SimConfig(
                routing=scheme, num_vcs=2, trace=trace, **SMALL
            ),
            label=f"e23-{scheme}",
        )


class TestEngineBehaviour:
    def _run(self, **overrides):
        params = dict(SMALL)
        params.update(overrides)
        reset_uid_counter()
        return run_traced(
            SimConfig(engine="fast", **params), keep_engine=True
        )

    def test_event_skipping_happens_when_sparse(self):
        # At very low load the network is quiescent most of the time;
        # the fast engine must jump those gaps rather than tick them.
        traced = self._run(routing="cr", num_vcs=2, load=0.02)
        engine = traced.result.engine
        assert isinstance(engine, FastEngine)
        assert engine.cycles_skipped > 0

    def test_profiler_attributes_skipped_cycles_to_idle(self):
        # Profiled runs keep paced generator cycles timed, so idle-phase
        # accounting shows up on pure skips: replay a sparse trace,
        # where the gaps between entries have no actor at all.
        from repro.traffic.trace import record_trace

        reset_uid_counter()
        trace = record_trace(
            SimConfig(routing="cr", num_vcs=2, **{
                **SMALL, "load": 0.02,
            })
        )
        traced = self._run(
            routing="cr", num_vcs=2, load=0.0, trace=trace, profile=True
        )
        idle = traced.report["profile"]["phases"]["idle"]
        assert idle["calls"] > 0
        assert traced.result.engine.cycles_skipped > 0

    def test_saturated_run_skips_nothing_yet_matches(self):
        traced = self._run(routing="cr", num_vcs=2, load=0.9)
        assert traced.result.engine.cycles_skipped == 0

    def test_unknown_engine_is_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SimConfig(engine="bogus", **SMALL).build()

    def test_reference_engine_is_the_default(self):
        assert SimConfig(**SMALL).engine == "reference"
