"""Unit tests for VC buffers and credit-based channels."""

import pytest

from repro.network.buffer import VCBuffer
from repro.network.channel import Channel
from repro.network.flit import Flit, FlitKind
from repro.network.message import Message
from repro.network.router import Router


def make_buffer(depth=2):
    router = Router(0, num_vcs=1)
    port = router.add_input_port(depth)
    return router.in_buffers[port][0]


def flit_of(msg, index=0, kind=FlitKind.HEAD, tail=False):
    return Flit(msg, kind, index, is_tail=tail)


class TestVCBuffer:
    def test_staging_respects_arrival_time(self):
        buf = make_buffer()
        msg = Message(0, 1, 2)
        buf.stage(flit_of(msg), arrival=5)
        assert buf.merge_incoming(4) == []
        assert buf.head() is None
        arrived = buf.merge_incoming(5)
        assert len(arrived) == 1
        assert buf.head() is arrived[0]

    def test_pop_credits_feeder(self):
        channel = Channel(0, 1, num_vcs=1)
        buf = make_buffer()
        channel.attach_sink(0, buf)
        msg = Message(0, 1, 2)
        channel.send(0, flit_of(msg), now=0)
        assert channel.credits[0] == 1
        buf.merge_incoming(1)
        buf.pop(1)
        assert channel.credits[0] == 1  # credit still in flight
        channel.tick(2)
        assert channel.credits[0] == 2

    def test_acquire_release(self):
        buf = make_buffer()
        msg = Message(0, 1, 2)
        buf.acquire(msg, now=3)
        assert buf.owner is msg
        assert buf.last_advance == 3
        buf.release()
        assert buf.owner is None

    def test_double_acquire_raises(self):
        buf = make_buffer()
        buf.acquire(Message(0, 1, 2))
        with pytest.raises(RuntimeError):
            buf.acquire(Message(1, 2, 2))

    def test_flush_owner_returns_credits_and_clears(self):
        channel = Channel(0, 1, num_vcs=1)
        buf = make_buffer(depth=4)
        channel.attach_sink(0, buf)
        msg = Message(0, 1, 4)
        buf.acquire(msg)
        for i in range(3):
            channel.send(0, flit_of(msg, i), now=0)
        buf.merge_incoming(1)
        assert channel.credits[0] == 1
        dropped = buf.flush_owner(now=1)
        assert dropped == 3
        assert buf.owner is None
        assert buf.occupancy == 0
        channel.tick(2)
        assert channel.credits[0] == 4

    def test_flush_covers_in_flight_flits(self):
        channel = Channel(0, 1, num_vcs=1)
        buf = make_buffer(depth=4)
        channel.attach_sink(0, buf)
        msg = Message(0, 1, 4)
        buf.acquire(msg)
        channel.send(0, flit_of(msg), now=0)  # still staged, not merged
        dropped = buf.flush_owner(now=0)
        assert dropped == 1
        assert not buf.incoming

    def test_invalid_depth(self):
        router = Router(0, num_vcs=1)
        with pytest.raises(ValueError):
            VCBuffer(router, 0, 0, depth=0)


class TestChannel:
    def test_credit_lifecycle(self):
        channel = Channel(0, 1, num_vcs=2)
        buf = make_buffer(depth=3)
        channel.attach_sink(0, buf)
        assert channel.credits[0] == 3
        assert channel.can_send(0)
        channel.consume_credit(0)
        channel.consume_credit(0)
        channel.consume_credit(0)
        assert not channel.can_send(0)
        with pytest.raises(RuntimeError):
            channel.consume_credit(0)

    def test_credit_return_latency(self):
        channel = Channel(0, 1, num_vcs=1, latency=3)
        buf = make_buffer(depth=1)
        channel.attach_sink(0, buf)
        channel.consume_credit(0)
        channel.return_credit(0, now=10)
        channel.tick(12)
        assert channel.credits[0] == 0
        channel.tick(13)
        assert channel.credits[0] == 1

    def test_dead_channel_blocks_send(self):
        channel = Channel(0, 1, num_vcs=1)
        buf = make_buffer()
        channel.attach_sink(0, buf)
        channel.dead = True
        assert not channel.can_send(0)

    def test_ejection_capacity(self):
        channel = Channel(0, 0, num_vcs=1, is_ejection=True)
        channel.set_eject_capacity(2)
        assert channel.credits[0] == 2

    def test_eject_capacity_on_link_raises(self):
        with pytest.raises(RuntimeError):
            Channel(0, 1, num_vcs=1).set_eject_capacity(2)

    def test_send_without_sink_raises(self):
        channel = Channel(0, 1, num_vcs=1)
        channel.credits[0] = 1
        with pytest.raises(RuntimeError):
            channel.send(0, flit_of(Message(0, 1, 2)), now=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Channel(0, 1, num_vcs=0)
        with pytest.raises(ValueError):
            Channel(0, 1, num_vcs=1, latency=0)


class TestRouterState:
    def test_claim_and_release(self):
        router = Router(0, num_vcs=2)
        port = router.add_input_port(2)
        buf = router.in_buffers[port][0]
        msg = Message(0, 1, 2)
        router.claim_output(3, 1, buf, msg)
        assert not router.output_free(3, 1)
        assert router.claims[(3, 1)] is buf
        assert buf.routed and buf.out_port == 3 and buf.out_vc == 1
        router.release_output(3, 1)
        assert router.output_free(3, 1)

    def test_double_claim_raises(self):
        router = Router(0, num_vcs=1)
        port = router.add_input_port(2)
        buf = router.in_buffers[port][0]
        router.claim_output(0, 0, buf, Message(0, 1, 2))
        with pytest.raises(RuntimeError):
            router.claim_output(0, 0, buf, Message(1, 0, 2))

    def test_release_if_checks_owner(self):
        router = Router(0, num_vcs=1)
        port = router.add_input_port(2)
        buf = router.in_buffers[port][0]
        owner = Message(0, 1, 2)
        other = Message(1, 0, 2)
        router.claim_output(0, 0, buf, owner)
        router.release_output_if(0, 0, other)
        assert not router.output_free(0, 0)
        router.release_output_if(0, 0, owner)
        assert router.output_free(0, 0)

    def test_retire_claim_keeps_ownership(self):
        router = Router(0, num_vcs=1)
        port = router.add_input_port(2)
        buf = router.in_buffers[port][0]
        msg = Message(0, 1, 2)
        router.claim_output(0, 0, buf, msg)
        router.retire_claim(0, 0)
        assert (0, 0) not in router.claims
        assert not router.output_free(0, 0)

    def test_rotate_round_robin(self):
        router = Router(0, num_vcs=1)
        picks = [router.rotate(0, 3) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
