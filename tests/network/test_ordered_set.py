"""OrderedSet: the determinism-preserving collection the engine uses."""

from repro.network.engine import OrderedSet


class TestOrderedSet:
    def test_insertion_order_preserved(self):
        items = [object() for _ in range(10)]
        ordered = OrderedSet()
        for item in items:
            ordered.add(item)
        assert list(ordered) == items

    def test_membership_and_len(self):
        ordered = OrderedSet()
        a, b = object(), object()
        ordered.add(a)
        assert a in ordered
        assert b not in ordered
        assert len(ordered) == 1

    def test_discard_idempotent(self):
        ordered = OrderedSet()
        a = object()
        ordered.add(a)
        ordered.discard(a)
        ordered.discard(a)  # no error
        assert a not in ordered
        assert len(ordered) == 0

    def test_re_add_moves_nothing(self):
        """Re-adding an existing element keeps its original position
        (dict semantics), so engine fairness rotation stays stable."""
        ordered = OrderedSet()
        a, b = object(), object()
        ordered.add(a)
        ordered.add(b)
        ordered.add(a)
        assert list(ordered) == [a, b]

    def test_truthiness(self):
        ordered = OrderedSet()
        assert not ordered
        ordered.add(object())
        assert ordered

    def test_discard_during_iteration_snapshot(self):
        """Engine code iterates list(ordered) copies; the underlying
        dict supports removal between snapshots."""
        ordered = OrderedSet()
        items = [object() for _ in range(5)]
        for item in items:
            ordered.add(item)
        for item in list(ordered):
            ordered.discard(item)
        assert len(ordered) == 0
