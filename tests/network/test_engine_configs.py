"""Engine correctness across the resource-configuration matrix.

Every combination here must drain completely, keep the guarantees, and
leave the network spotless -- these runs catch interactions (deep
channels x padding, multi-VC x timeout scaling, wide interfaces x
ejection credits) that single-feature tests miss.
"""

import pytest

from repro import SimConfig, run_simulation


def run_config(**overrides):
    base = dict(
        radix=4, dims=2, routing="cr", load=0.2, message_length=8,
        warmup=100, measure=400, drain=6000, seed=13,
    )
    base.update(overrides)
    result = run_simulation(SimConfig(**base), keep_engine=True)
    assert result.drained, f"undrained for {overrides}"
    assert result.report["undelivered"] == 0
    engine = result.engine
    for router in engine.routers:
        assert not router.claims
        assert not router.out_owner
        for port_bufs in router.in_buffers:
            for buf in port_bufs:
                assert buf.occupancy == 0 and buf.owner is None
    # FIFO order is a property CR *buys* with padding + commit gating;
    # plain adaptive routing (duato) legitimately reorders, and plain
    # DOR is FIFO only because its paths are deterministic.
    if base["routing"] in ("cr", "fcr", "dor", "dor+cr"):
        result.ledger.validate_fifo()
    return result


class TestResourceMatrix:
    @pytest.mark.parametrize("buffer_depth", [1, 2, 4, 8])
    def test_buffer_depths(self, buffer_depth):
        run_config(buffer_depth=buffer_depth)

    @pytest.mark.parametrize("num_vcs", [1, 2, 4])
    def test_vc_counts(self, num_vcs):
        run_config(num_vcs=num_vcs)

    @pytest.mark.parametrize("channel_latency", [1, 2, 3])
    def test_channel_latencies(self, channel_latency):
        run_config(channel_latency=channel_latency)

    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_interface_widths(self, width):
        run_config(num_inject=width, num_sink=width)

    @pytest.mark.parametrize("eject_slots", [1, 2, 4])
    def test_eject_slots(self, eject_slots):
        run_config(eject_slots=eject_slots)

    def test_kitchen_sink(self):
        """Everything non-default at once."""
        run_config(
            num_vcs=2,
            buffer_depth=4,
            channel_latency=2,
            num_inject=2,
            num_sink=2,
            eject_slots=2,
            message_length=12,
        )

    @pytest.mark.parametrize("routing", ["cr", "fcr", "dor", "duato"])
    def test_schemes_with_deep_channels(self, routing):
        run_config(routing=routing, channel_latency=2)

    def test_single_flit_messages(self):
        run_config(message_length=1)

    def test_message_longer_than_any_padding(self):
        run_config(message_length=64)

    @pytest.mark.parametrize("dims", [1, 3])
    def test_other_dimensionalities(self, dims):
        radix = 8 if dims == 1 else 3
        run_config(radix=radix, dims=dims)
