"""Unit tests for flits and messages."""

import pytest

from repro.core.protocol import MessagePhase
from repro.network.flit import Flit, FlitKind
from repro.network.message import Message, reset_uid_counter


class TestFlit:
    def setup_method(self):
        self.msg = Message(0, 1, 4)

    def test_head_properties(self):
        flit = Flit(self.msg, FlitKind.HEAD, 0)
        assert flit.is_head
        assert flit.is_payload
        assert not flit.is_tail
        assert not flit.corrupted

    def test_pad_is_not_payload(self):
        flit = Flit(self.msg, FlitKind.PAD, 5)
        assert not flit.is_payload
        assert not flit.is_head

    def test_tail_flag(self):
        flit = Flit(self.msg, FlitKind.PAD, 9, is_tail=True)
        assert flit.is_tail


class TestMessage:
    def test_uid_monotonic(self):
        reset_uid_counter()
        a = Message(0, 1, 4)
        b = Message(1, 2, 4)
        assert b.uid == a.uid + 1

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            Message(0, 1, 0)

    def test_self_send_rejected(self):
        with pytest.raises(ValueError):
            Message(3, 3, 4)

    def test_initial_phase(self):
        msg = Message(0, 1, 4)
        assert msg.phase is MessagePhase.QUEUED
        assert not msg.committed
        assert not msg.delivered

    def test_begin_attempt_resets_state(self):
        msg = Message(0, 1, 4, created_at=10)
        msg.begin_attempt(12, now=20)
        assert msg.attempts == 1
        assert msg.wire_length == 12
        assert msg.pad_length == 8
        assert msg.first_inject_at == 20
        assert msg.phase is MessagePhase.INJECTING
        msg.segments.append(object())
        msg.begin_attempt(12, now=50)
        assert msg.attempts == 2
        assert msg.segments == []
        assert msg.first_inject_at == 20  # first attempt time is sticky
        assert msg.inject_start_at == 50

    def test_latencies_none_until_delivered(self):
        msg = Message(0, 1, 4, created_at=5)
        assert msg.total_latency() is None
        assert msg.network_latency() is None
        msg.begin_attempt(4, now=7)
        msg.delivered_at = 30
        assert msg.total_latency() == 25
        assert msg.network_latency() == 23

    def test_active_segments_window(self):
        msg = Message(0, 1, 4)
        msg.begin_attempt(4, now=0)
        msg.segments = ["a", "b", "c"]
        msg.tail_seg = 1
        assert msg.active_segments == ["b", "c"]
