"""WormholeNetwork builder: wiring invariants."""

import pytest

from repro import (
    FirstFree,
    MinimalAdaptive,
    DimensionOrder,
    WormholeNetwork,
    mesh,
    torus,
)


def build(topology=None, **kwargs):
    topology = topology or torus(4, 2)
    defaults = dict(num_vcs=1, buffer_depth=2)
    defaults.update(kwargs)
    return WormholeNetwork(
        topology, MinimalAdaptive(topology), FirstFree(), **defaults
    )


class TestLinkWiring:
    def test_output_ports_match_topology_numbering(self):
        network = build()
        topology = network.topology
        for node in range(topology.num_nodes):
            router = network.routers[node]
            for spec in topology.links(node):
                channel = router.out_channels[spec.port]
                assert channel.dst_node == spec.dst
                assert channel.dim == spec.dim
                assert channel.direction == spec.direction
                assert channel.is_wrap == spec.is_wrap

    def test_every_link_channel_has_sinks(self):
        network = build(num_vcs=2)
        for channel in network.link_channels:
            for vc in range(2):
                sink = channel.sinks[vc]
                assert sink is not None
                assert sink.feeder is channel
                assert sink.router.node_id == channel.dst_node

    def test_channel_count_torus(self):
        network = build()
        # 4-ary 2-torus: 4 unidirectional links per node.
        assert len(network.link_channels) == 16 * 4

    def test_channel_count_mesh_edges(self):
        network = build(topology=mesh(3, 2))
        # 3x3 mesh: 12 bidirectional edges = 24 unidirectional channels.
        assert len(network.link_channels) == 24

    def test_find_link(self):
        network = build()
        channel = network.find_link(0, 1)
        assert channel.src_node == 0 and channel.dst_node == 1
        with pytest.raises(KeyError):
            network.find_link(0, 10)


class TestInterfaceWiring:
    def test_interface_counts(self):
        network = build(num_inject=3, num_sink=2)
        for node in range(16):
            assert len(network.injection_channels[node]) == 3
            assert len(network.ejection_channels[node]) == 2
            assert len(network.routers[node].eject_ports) == 2

    def test_eject_ports_numbered_after_links(self):
        network = build(num_sink=2)
        router = network.routers[0]
        assert router.eject_ports == [4, 5]

    def test_eject_credits_sized(self):
        network = build(eject_slots=3)
        for node in range(16):
            for channel in network.ejection_channels[node]:
                assert channel.credits[0] == 3

    def test_injection_buffers_attached(self):
        network = build(num_vcs=2, num_inject=2)
        for node in range(16):
            for channel in network.injection_channels[node]:
                assert channel.is_injection
                for vc in range(2):
                    assert channel.sinks[vc].router.node_id == node

    def test_total_buffer_flits(self):
        network = build(num_vcs=2, buffer_depth=3)
        # per node: (4 link in-ports + 1 injection) x 2 VCs x depth 3
        assert network.total_buffer_flits() == 16 * 5 * 2 * 3


class TestValidation:
    def test_vcs_below_routing_minimum(self):
        topology = torus(4, 2)
        with pytest.raises(ValueError, match="VCs"):
            WormholeNetwork(
                topology, DimensionOrder(topology), FirstFree(), num_vcs=1
            )

    def test_bad_buffer_depth(self):
        with pytest.raises(ValueError, match="buffer_depth"):
            build(buffer_depth=0)

    def test_need_interfaces(self):
        with pytest.raises(ValueError, match="injection"):
            build(num_inject=0)
