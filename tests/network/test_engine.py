"""Engine-level behaviour: single messages, timing, drains, watchdog."""

import pytest

from repro import (
    Engine,
    FirstFree,
    Message,
    MinimalAdaptive,
    NetworkDeadlockError,
    ProtocolConfig,
    ProtocolMode,
    WormholeNetwork,
    torus,
)


def build_engine(
    radix=4,
    dims=2,
    num_vcs=1,
    buffer_depth=2,
    mode=ProtocolMode.CR,
    **engine_kwargs,
):
    topology = torus(radix, dims)
    network = WormholeNetwork(
        topology,
        MinimalAdaptive(topology),
        FirstFree(),
        num_vcs=num_vcs,
        buffer_depth=buffer_depth,
    )
    protocol = ProtocolConfig(mode=mode)
    return Engine(network, protocol=protocol, seed=1, **engine_kwargs)


def send_one(engine, src, dst, length=4, max_cycles=500):
    msg = Message(src, dst, length, created_at=engine.now,
                  seq=engine.next_seq(src, dst))
    assert engine.admit(msg)
    for _ in range(max_cycles):
        if msg.delivered:
            break
        engine.step()
    return msg


class TestSingleMessage:
    def test_neighbour_delivery(self):
        engine = build_engine()
        msg = send_one(engine, 0, 1)
        assert msg.delivered
        assert msg.header_consumed_at is not None

    def test_delivery_across_diameter(self):
        engine = build_engine()
        topo = engine.topology
        src = topo.node_at((0, 0))
        dst = topo.node_at((2, 2))
        msg = send_one(engine, src, dst)
        assert msg.delivered

    def test_latency_scales_with_wire_length(self):
        # An uncontended worm delivers in O(hops + wire length).
        engine = build_engine()
        msg = send_one(engine, 0, 1, length=4)
        hops = engine.topology.min_distance(0, 1)
        assert msg.delivered_at is not None
        assert msg.delivered_at >= hops + msg.wire_length
        assert msg.delivered_at <= hops * 3 + msg.wire_length + 10

    def test_padding_applied_under_cr(self):
        engine = build_engine(mode=ProtocolMode.CR)
        msg = send_one(engine, 0, 1, length=2)
        assert msg.wire_length > msg.payload_length
        assert msg.pad_flits_sent == msg.wire_length - msg.payload_length

    def test_no_padding_under_plain(self):
        engine = build_engine(mode=ProtocolMode.PLAIN)
        msg = send_one(engine, 0, 1, length=2)
        assert msg.wire_length == 2

    def test_commit_before_delivery(self):
        engine = build_engine()
        msg = send_one(engine, 0, 1)
        assert msg.committed_at is not None
        assert msg.delivered_at is not None
        assert msg.committed_at <= msg.delivered_at

    def test_padding_lemma_header_before_commit(self):
        engine = build_engine()
        topo = engine.topology
        msg = send_one(engine, 0, topo.node_at((2, 1)), length=3)
        assert msg.header_consumed_at is not None
        assert msg.header_consumed_at <= msg.committed_at


class TestNetworkHygiene:
    def test_clean_state_after_drain(self):
        engine = build_engine()
        for dst in (1, 5, 12, 15):
            send_one(engine, 0, dst)
        send_one(engine, 7, 2)
        # All buffers empty, no ownership, full credits everywhere.
        for router in engine.routers:
            assert not router.claims
            assert not router.out_owner
            for port_bufs in router.in_buffers:
                for buf in port_bufs:
                    assert buf.occupancy == 0
                    assert buf.owner is None
        for _ in range(5):
            engine.step()  # let last credits tick home
        for channel in engine.network.all_channels():
            if channel.is_ejection:
                continue
            for vc in range(channel.num_vcs):
                assert channel.credits[vc] == channel.sinks[vc].depth

    def test_run_until_drained(self):
        engine = build_engine()
        msg = Message(0, 5, 4, seq=engine.next_seq(0, 5))
        engine.admit(msg)
        assert engine.run_until_drained(500)
        assert msg.delivered

    def test_admit_respects_queue_cap(self):
        engine = build_engine(queue_cap=2)
        assert engine.admit(Message(0, 1, 4))
        assert engine.admit(Message(0, 2, 4))
        assert not engine.admit(Message(0, 3, 4))
        assert engine.stats.counters["generation_blocked"] == 1


class TestWatchdog:
    @staticmethod
    def _ring_pattern(engine):
        """Messages 0->2, 1->3, 2->0, 3->1 on a 4-ring.

        With tie-breaking toward +1, every worm holds channel i->i+1 and
        waits for (i+1)->(i+2): a textbook channel-dependency cycle.
        """
        messages = []
        for src in range(4):
            msg = Message(src, (src + 2) % 4, 40, seq=src)
            engine.admit(msg)
            messages.append(msg)
        return messages

    def test_fires_on_wedged_plain_adaptive(self):
        engine = build_engine(
            radix=4, dims=1, mode=ProtocolMode.PLAIN, watchdog=300
        )
        self._ring_pattern(engine)
        with pytest.raises(NetworkDeadlockError):
            for _ in range(5000):
                engine.step()

    def test_cr_breaks_the_same_pattern(self):
        engine = build_engine(
            radix=4, dims=1, mode=ProtocolMode.CR, watchdog=5000
        )
        messages = self._ring_pattern(engine)
        assert engine.run_until_drained(20000)
        assert all(m.delivered for m in messages)
        assert engine.stats.counters["kills"] >= 1
