"""Cross-module integration scenarios.

These are the paper's claims stated as executable assertions at small
scale: CR's adaptivity beats deterministic routing on adversarial
traffic, FCR keeps its guarantees while links die mid-flight, CR works
unchanged on irregular topologies, and the CLI glues it all together.
"""

from repro import (
    ChannelFault,
    Engine,
    GraphTopology,
    Message,
    MinimalAdaptive,
    PermanentFaultSchedule,
    ProtocolConfig,
    ProtocolMode,
    RandomFree,
    SimConfig,
    WormholeNetwork,
    run_simulation,
)
from repro.cli import main as cli_main


class TestAdaptivityAdvantage:
    def test_cr_higher_saturation_on_uniform(self):
        """The paper's headline shape: CR pays padding at low load but
        saturates higher and keeps lower latency near saturation."""
        base = SimConfig(
            radix=8, dims=2, load=0.4, num_vcs=2, message_length=16,
            warmup=300, measure=1500, drain=6000, seed=42,
        )
        cr = run_simulation(base.with_(routing="cr"))
        dor = run_simulation(base.with_(routing="dor"))
        assert cr.throughput > dor.throughput
        assert cr.latency < dor.latency

    def test_cr_beats_dor_on_bit_reversal(self):
        """Bit reversal concentrates deterministic routes; adaptivity
        spreads them (the paper: CR 'would likely produce an even
        larger performance difference for non-uniform traffic')."""
        base = SimConfig(
            radix=8, dims=2, pattern="bit_reversal", load=0.3,
            num_vcs=2, message_length=8,
            warmup=200, measure=1200, drain=6000, seed=17,
        )
        cr = run_simulation(base.with_(routing="cr"))
        dor = run_simulation(base.with_(routing="dor"))
        assert cr.throughput > dor.throughput
        assert cr.latency < dor.latency


class TestMidFlightFaults:
    def test_links_dying_during_traffic(self):
        """Nonstop fault tolerance: faults appear while worms are in
        flight; nothing is lost or corrupted."""
        schedule = PermanentFaultSchedule(
            [
                ChannelFault(300, 0, 1),
                ChannelFault(300, 1, 0),
                ChannelFault(500, 5, 6),
                ChannelFault(500, 6, 5),
            ]
        )
        config = SimConfig(
            radix=4, dims=2, routing="fcr", load=0.1,
            message_length=8, fault_rate=1e-3, misrouting=True,
            warmup=100, measure=800, drain=8000, seed=23,
            fault_model=schedule,
        )
        result = run_simulation(config)
        assert result.drained
        assert result.report["undelivered"] == 0
        assert result.ledger.corrupt_deliveries == 0
        result.ledger.validate_fifo()


class TestIrregularTopology:
    def test_cr_on_arbitrary_graph(self):
        """CR needs no topology structure: run it on a random-ish
        irregular graph where no virtual-channel deadlock-avoidance
        scheme is known."""
        edges = [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0),  # ring
            (0, 3), (1, 4),                                   # chords
            (2, 6), (6, 7), (7, 3),                           # appendage
        ]
        topology = GraphTopology.from_edges(8, edges)
        network = WormholeNetwork(
            topology, MinimalAdaptive(topology), RandomFree(), num_vcs=1
        )
        engine = Engine(
            network,
            protocol=ProtocolConfig(mode=ProtocolMode.CR),
            seed=31,
            watchdog=8000,
        )
        messages = []
        for src in range(8):
            for dst in range(8):
                if src != dst:
                    msg = Message(src, dst, 6, seq=engine.next_seq(src, dst))
                    engine.admit(msg)
                    messages.append(msg)
        assert engine.run_until_drained(40000)
        assert all(m.delivered for m in messages)
        engine.ledger.validate_fifo()


class TestInterfaceScaling:
    def test_wider_interface_helps_cr_at_high_load(self):
        base = SimConfig(
            radix=4, dims=2, routing="cr", load=0.6, num_vcs=2,
            message_length=8, warmup=200, measure=1000, drain=4000,
            seed=9,
        )
        narrow = run_simulation(base)
        wide = run_simulation(base.with_(num_inject=2, num_sink=2))
        assert wide.throughput > narrow.throughput


class TestCli:
    def test_cli_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out and "t02" in out

    def test_cli_run(self, capsys):
        code = cli_main(
            [
                "run", "--routing", "cr", "--radix", "4",
                "--load", "0.15", "--warmup", "50", "--measure", "200",
                "--drain", "2000", "--message-length", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "messages_delivered" in out

    def test_cli_experiment_t02(self, capsys):
        assert cli_main(["experiment", "t02"]) == 0
        out = capsys.readouterr().out
        assert "CR" in out and "Duato" in out
