"""End-to-end runs through the public entry point."""

import pytest

from repro import SimConfig, run_simulation
from repro.sim.sweep import (
    load_sweep,
    matrix_sweep,
    param_sweep,
    saturation_load,
)


def tiny(**overrides):
    base = dict(
        radix=4, dims=2, warmup=100, measure=400, drain=3000,
        message_length=8, load=0.15, seed=21,
    )
    base.update(overrides)
    return SimConfig(**base)


class TestRunSimulation:
    @pytest.mark.parametrize("routing", ["cr", "dor", "duato", "fcr",
                                         "dor+cr"])
    def test_all_schemes_deliver(self, routing):
        result = run_simulation(tiny(routing=routing))
        assert result.report["messages_delivered"] > 0
        assert result.latency > 0
        assert result.drained

    def test_turn_model_on_mesh(self):
        result = run_simulation(tiny(routing="turn", topology="mesh"))
        assert result.report["messages_delivered"] > 0

    def test_cr_on_hypercube(self):
        result = run_simulation(tiny(routing="cr", topology="hypercube",
                                     dims=4))
        assert result.report["messages_delivered"] > 0

    def test_deterministic_given_seed(self):
        a = run_simulation(tiny(routing="cr", seed=5))
        b = run_simulation(tiny(routing="cr", seed=5))
        assert a.report["messages_delivered"] == \
            b.report["messages_delivered"]
        assert a.latency == b.latency

    def test_seed_changes_outcome(self):
        a = run_simulation(tiny(routing="cr", seed=5))
        b = run_simulation(tiny(routing="cr", seed=6))
        assert a.report["messages_created"] != \
            b.report["messages_created"]

    def test_keep_engine_flag(self):
        with_engine = run_simulation(tiny(), keep_engine=True)
        without = run_simulation(tiny())
        assert with_engine.engine is not None
        assert without.engine is None

    def test_result_accessors(self):
        result = run_simulation(tiny())
        assert result["messages_delivered"] == \
            result.report["messages_delivered"]
        assert result.throughput == result.report["throughput"]


class TestSweeps:
    def test_load_sweep_rows(self):
        rows = load_sweep(tiny(), [0.1, 0.2], label="cr")
        assert [row["load"] for row in rows] == [0.1, 0.2]
        assert all(row["config"] == "cr" for row in rows)
        assert all("latency_mean" in row for row in rows)

    def test_param_sweep(self):
        rows = param_sweep(tiny(), "buffer_depth", [1, 2])
        assert [row["buffer_depth"] for row in rows] == [1, 2]

    def test_matrix_sweep(self):
        rows = matrix_sweep(
            {"cr": tiny(routing="cr"), "dor": tiny(routing="dor")},
            [0.1],
        )
        assert len(rows) == 2
        assert {row["config"] for row in rows} == {"cr", "dor"}

    def test_saturation_load_monotone_latency(self):
        knee = saturation_load(
            tiny(routing="dor"), [0.1, 0.3, 0.6, 0.9],
            latency_limit_factor=4.0,
        )
        assert 0.1 <= knee < 0.9
