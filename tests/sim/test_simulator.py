"""End-to-end runs through the public entry point."""

import pytest

from repro import SimConfig, run_simulation
from repro.sim.sweep import (
    load_sweep,
    matrix_sweep,
    param_sweep,
    report_row,
    result_row,
    saturation_load,
)


def tiny(**overrides):
    base = dict(
        radix=4, dims=2, warmup=100, measure=400, drain=3000,
        message_length=8, load=0.15, seed=21,
    )
    base.update(overrides)
    return SimConfig(**base)


class TestRunSimulation:
    @pytest.mark.parametrize("routing", ["cr", "dor", "duato", "fcr",
                                         "dor+cr"])
    def test_all_schemes_deliver(self, routing):
        result = run_simulation(tiny(routing=routing))
        assert result.report["messages_delivered"] > 0
        assert result.latency > 0
        assert result.drained

    def test_turn_model_on_mesh(self):
        result = run_simulation(tiny(routing="turn", topology="mesh"))
        assert result.report["messages_delivered"] > 0

    def test_cr_on_hypercube(self):
        result = run_simulation(tiny(routing="cr", topology="hypercube",
                                     dims=4))
        assert result.report["messages_delivered"] > 0

    def test_deterministic_given_seed(self):
        a = run_simulation(tiny(routing="cr", seed=5))
        b = run_simulation(tiny(routing="cr", seed=5))
        assert a.report["messages_delivered"] == \
            b.report["messages_delivered"]
        assert a.latency == b.latency

    def test_seed_changes_outcome(self):
        a = run_simulation(tiny(routing="cr", seed=5))
        b = run_simulation(tiny(routing="cr", seed=6))
        assert a.report["messages_created"] != \
            b.report["messages_created"]

    def test_keep_engine_flag(self):
        with_engine = run_simulation(tiny(), keep_engine=True)
        without = run_simulation(tiny())
        assert with_engine.engine is not None
        assert without.engine is None

    def test_result_accessors(self):
        result = run_simulation(tiny())
        assert result["messages_delivered"] == \
            result.report["messages_delivered"]
        assert result.throughput == result.report["throughput"]


class TestSweeps:
    def test_load_sweep_rows(self):
        rows = load_sweep(tiny(), [0.1, 0.2], label="cr")
        assert [row["load"] for row in rows] == [0.1, 0.2]
        assert all(row["config"] == "cr" for row in rows)
        assert all("latency_mean" in row for row in rows)

    def test_param_sweep(self):
        rows = param_sweep(tiny(), "buffer_depth", [1, 2])
        assert [row["buffer_depth"] for row in rows] == [1, 2]

    def test_matrix_sweep(self):
        rows = matrix_sweep(
            {"cr": tiny(routing="cr"), "dor": tiny(routing="dor")},
            [0.1],
        )
        assert len(rows) == 2
        assert {row["config"] for row in rows} == {"cr", "dor"}

    def test_saturation_load_monotone_latency(self):
        knee = saturation_load(
            tiny(routing="dor"), [0.1, 0.3, 0.6, 0.9],
            latency_limit_factor=4.0,
        )
        assert 0.1 <= knee < 0.9

    def test_result_row_unknown_field_raises(self):
        result = run_simulation(tiny())
        with pytest.raises(KeyError, match="throughputt"):
            result_row(result, fields=["latency_mean", "throughputt"])

    def test_report_row_known_fields(self):
        result = run_simulation(tiny())
        row = report_row(result.report, fields=["latency_mean"])
        assert row == {"latency_mean": result.report["latency_mean"]}


def _fake_reports(latencies):
    """Stand-in for run_reports: one canned report per load point."""
    queue = list(latencies)

    def fake(configs, workers=1, cache=None, progress=None):
        return [{"latency_mean": queue.pop(0)} for _ in list(configs)]

    return fake


class TestSaturationKnee:
    """Knee logic against canned latency ladders (no simulation)."""

    def _knee(self, monkeypatch, latencies, loads=None, **kwargs):
        import repro.sim.sweep as sweep_mod

        loads = loads or [0.1 * (i + 1) for i in range(len(latencies))]
        monkeypatch.setattr(sweep_mod, "run_reports",
                            _fake_reports(latencies))
        return saturation_load(tiny(), loads, **kwargs)

    def test_genuine_knee(self, monkeypatch):
        knee = self._knee(monkeypatch, [10.0, 12.0, 200.0],
                          latency_limit_factor=5.0)
        assert knee == 0.2

    def test_no_knee_returns_top_load(self, monkeypatch):
        knee = self._knee(monkeypatch, [10.0, 11.0, 12.0])
        assert knee == pytest.approx(0.3)

    def test_zero_delivery_floor_returns_zero(self, monkeypatch):
        # Saturated below the sweep floor: nothing delivered at the
        # lowest load.  The old code returned the lowest load, which is
        # indistinguishable from "fine up to the floor".
        assert self._knee(monkeypatch, [0.0, 0.0, 0.0]) == 0.0

    def test_floor_past_external_baseline_returns_zero(self, monkeypatch):
        knee = self._knee(monkeypatch, [100.0, 120.0],
                          latency_limit_factor=5.0, baseline=10.0)
        assert knee == 0.0

    def test_zero_delivery_mid_sweep_is_the_knee(self, monkeypatch):
        knee = self._knee(monkeypatch, [10.0, 11.0, 0.0, 0.0])
        assert knee == pytest.approx(0.2)

    def test_speculative_parallel_same_answer(self, monkeypatch):
        serial = self._knee(monkeypatch, [10.0, 12.0, 200.0],
                            latency_limit_factor=5.0, workers=1)
        fanned = self._knee(monkeypatch, [10.0, 12.0, 200.0],
                            latency_limit_factor=5.0, workers=4)
        assert serial == fanned == 0.2

    def test_empty_loads_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            self._knee(monkeypatch, [], loads=[])
