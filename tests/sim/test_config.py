"""SimConfig construction and validation."""

import pytest

from repro import (
    DimensionOrder,
    Duato,
    MinimalAdaptive,
    NegativeFirst,
    ProtocolMode,
    SimConfig,
)
from repro.faults.model import CompositeFaultModel
from repro.faults.transient import TransientFaults


class TestSchemes:
    @pytest.mark.parametrize(
        "scheme,routing_cls,mode",
        [
            ("cr", MinimalAdaptive, ProtocolMode.CR),
            ("fcr", MinimalAdaptive, ProtocolMode.FCR),
            ("dor", DimensionOrder, ProtocolMode.PLAIN),
            ("duato", Duato, ProtocolMode.PLAIN),
            ("dor+cr", DimensionOrder, ProtocolMode.CR),
        ],
    )
    def test_scheme_mapping(self, scheme, routing_cls, mode):
        config = SimConfig(routing=scheme)
        routing, proto_mode = config.make_routing(config.make_topology())
        assert isinstance(routing, routing_cls)
        assert proto_mode is mode

    def test_turn_scheme_needs_mesh(self):
        config = SimConfig(routing="turn", topology="mesh")
        routing, _ = config.make_routing(config.make_topology())
        assert isinstance(routing, NegativeFirst)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown routing"):
            SimConfig(routing="bogus").make_routing(
                SimConfig().make_topology()
            )

    def test_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topology"):
            SimConfig(topology="donut").make_topology()


class TestDefaults:
    def test_vcs_default_to_scheme_minimum(self):
        config = SimConfig(routing="duato")
        topology = config.make_topology()
        routing, _ = config.make_routing(topology)
        assert config.resolved_num_vcs(routing) == 3

    def test_vcs_override(self):
        config = SimConfig(routing="cr", num_vcs=4)
        topology = config.make_topology()
        routing, _ = config.make_routing(topology)
        assert config.resolved_num_vcs(routing) == 4

    def test_with_copies(self):
        base = SimConfig(load=0.1)
        other = base.with_(load=0.5)
        assert base.load == 0.1
        assert other.load == 0.5


class TestBuild:
    def test_build_wires_everything(self):
        engine = SimConfig(radix=4, dims=2, routing="cr").build()
        assert engine.topology.num_nodes == 16
        assert len(engine.nodes) == 16
        assert engine.generator is not None
        assert engine.stats.measure_end == 5000  # warmup + measure defaults

    def test_fault_model_composition(self):
        config = SimConfig(
            radix=4, dims=2, fault_rate=0.01, permanent_faults=1
        )
        engine = config.build()
        assert isinstance(engine.fault_model, CompositeFaultModel)

    def test_single_fault_model_not_wrapped(self):
        engine = SimConfig(radix=4, dims=2, fault_rate=0.01).build()
        assert isinstance(engine.fault_model, TransientFaults)

    def test_no_fault_model_by_default(self):
        assert SimConfig(radix=4, dims=2).build().fault_model is None

    def test_padding_params_follow_network(self):
        engine = SimConfig(radix=4, dims=2, buffer_depth=4).build()
        assert engine.protocol.padding.buffer_depth == 4

    def test_path_wide_wiring(self):
        engine = SimConfig(radix=4, dims=2, path_wide_cycles=32).build()
        assert engine.protocol.path_wide is not None
        assert engine.protocol.path_wide.cycles == 32
