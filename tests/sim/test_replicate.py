"""Seed replication utilities."""

import pytest

from repro import SimConfig
from repro.sim.replicate import (
    intervals_separated,
    replicate,
    significantly_better,
    summarize_samples,
)


def tiny(**overrides):
    base = dict(
        radix=4, dims=2, routing="cr", load=0.2, message_length=8,
        warmup=100, measure=400, drain=3000,
    )
    base.update(overrides)
    return SimConfig(**base)


class TestSummarizeSamples:
    """The shared aggregation behind replicate and campaign reports."""

    def test_matches_replicate_contract(self):
        summary = summarize_samples([1.0, 2.0, 3.0])
        assert summary["mean"] == 2.0
        assert summary["std"] == pytest.approx(1.0)  # n-1 denominator
        assert summary["n"] == 3
        assert (summary["min"], summary["max"]) == (1.0, 3.0)

    def test_single_sample(self):
        summary = summarize_samples([5.0])
        assert summary["std"] == 0.0
        assert summary["rel_halfwidth"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_samples([])


class TestIntervalsSeparated:
    def test_separated_means_win(self):
        a = summarize_samples([10.0, 10.1, 9.9])
        b = summarize_samples([5.0, 5.1, 4.9])
        assert intervals_separated(a, b, higher_is_better=True)
        assert not intervals_separated(b, a, higher_is_better=True)
        assert intervals_separated(b, a, higher_is_better=False)

    def test_overlap_is_conservative(self):
        a = summarize_samples([10.0, 20.0, 30.0])
        b = summarize_samples([12.0, 22.0, 32.0])
        assert not intervals_separated(b, a, higher_is_better=True)


class TestReplicate:
    def test_summary_shape(self):
        summary = replicate(tiny(), seeds=[1, 2, 3])
        assert set(summary) == {"latency_mean", "throughput", "kill_rate"}
        for stats in summary.values():
            assert stats["n"] == 3
            assert stats["min"] <= stats["mean"] <= stats["max"]
            assert stats["std"] >= 0

    def test_seeds_actually_vary(self):
        summary = replicate(tiny(), seeds=[1, 2, 3, 4])
        assert summary["latency_mean"]["std"] > 0

    def test_single_seed_halfwidth_zero(self):
        summary = replicate(tiny(), seeds=[5], metrics=["latency_mean"])
        assert summary["latency_mean"]["rel_halfwidth"] == 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(tiny(), seeds=[])

    def test_sample_variance_denominator(self, monkeypatch):
        # Canned samples 1, 2, 3: sample variance is 1.0 (n-1 = 2
        # denominator), not 2/3 (population).  The population estimate
        # made the confidence half-width systematically overconfident
        # at small n.
        import math

        import repro.sim.replicate as rep_mod

        monkeypatch.setattr(
            rep_mod, "run_reports",
            lambda configs, workers=1, cache=None, progress=None: [
                {"latency_mean": v} for v in (1.0, 2.0, 3.0)
            ],
        )
        summary = replicate(tiny(), seeds=[1, 2, 3],
                            metrics=["latency_mean"])["latency_mean"]
        assert summary["std"] == pytest.approx(1.0)
        expected_half = 1.96 * 1.0 / math.sqrt(3)
        assert summary["rel_halfwidth"] == \
            pytest.approx(expected_half / 2.0)

    def test_parallel_matches_serial(self):
        serial = replicate(tiny(), seeds=[1, 2, 3], workers=1)
        fanned = replicate(tiny(), seeds=[1, 2, 3], workers=3)
        assert serial == fanned


class TestComparison:
    def test_clear_gap_detected(self):
        # Load 0.1 vs 0.45 latency: unambiguously different.
        low = tiny(load=0.1)
        high = tiny(load=0.45, drain=6000)
        assert significantly_better(
            low, high, "latency_mean", seeds=[1, 2, 3],
            higher_is_better=False,
        )

    def test_identical_configs_not_different(self):
        config = tiny()
        assert not significantly_better(
            config, config, "latency_mean", seeds=[1, 2, 3],
            higher_is_better=False,
        )
