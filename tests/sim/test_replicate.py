"""Seed replication utilities."""

import pytest

from repro import SimConfig
from repro.sim.replicate import replicate, significantly_better


def tiny(**overrides):
    base = dict(
        radix=4, dims=2, routing="cr", load=0.2, message_length=8,
        warmup=100, measure=400, drain=3000,
    )
    base.update(overrides)
    return SimConfig(**base)


class TestReplicate:
    def test_summary_shape(self):
        summary = replicate(tiny(), seeds=[1, 2, 3])
        assert set(summary) == {"latency_mean", "throughput", "kill_rate"}
        for stats in summary.values():
            assert stats["n"] == 3
            assert stats["min"] <= stats["mean"] <= stats["max"]
            assert stats["std"] >= 0

    def test_seeds_actually_vary(self):
        summary = replicate(tiny(), seeds=[1, 2, 3, 4])
        assert summary["latency_mean"]["std"] > 0

    def test_single_seed_halfwidth_zero(self):
        summary = replicate(tiny(), seeds=[5], metrics=["latency_mean"])
        assert summary["latency_mean"]["rel_halfwidth"] == 0.0

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(tiny(), seeds=[])


class TestComparison:
    def test_clear_gap_detected(self):
        # Load 0.1 vs 0.45 latency: unambiguously different.
        low = tiny(load=0.1)
        high = tiny(load=0.45, drain=6000)
        assert significantly_better(
            low, high, "latency_mean", seeds=[1, 2, 3],
            higher_is_better=False,
        )

    def test_identical_configs_not_different(self):
        config = tiny()
        assert not significantly_better(
            config, config, "latency_mean", seeds=[1, 2, 3],
            higher_is_better=False,
        )
