"""Parallel sweep executor and the deterministic result cache."""

import json
import os

import pytest

from repro import SimConfig
from repro.sim import parallel
from repro.sim.parallel import (
    PointStatus,
    SweepCache,
    config_cache_key,
    resolve_cache,
    run_reports,
)
from repro.sim.sweep import load_sweep, matrix_sweep


def tiny(**overrides):
    base = dict(
        radix=4, dims=2, warmup=100, measure=400, drain=3000,
        message_length=8, load=0.15, seed=21,
    )
    base.update(overrides)
    return SimConfig(**base)


class _NoRepr:
    """Default object repr: contains a memory address."""


class TestCacheKey:
    def test_stable_across_instances(self):
        assert config_cache_key(tiny()) == config_cache_key(tiny())

    def test_every_field_matters(self):
        base = config_cache_key(tiny())
        assert config_cache_key(tiny(seed=22)) != base
        assert config_cache_key(tiny(load=0.2)) != base
        assert config_cache_key(tiny(routing="dor")) != base

    def test_pattern_kwargs_participate(self):
        a = tiny(pattern="hotspot", pattern_kwargs={"fraction": 0.1})
        b = tiny(pattern="hotspot", pattern_kwargs={"fraction": 0.2})
        assert config_cache_key(a) != config_cache_key(b)

    def test_unstable_repr_is_uncacheable(self):
        config = tiny(fault_model=_NoRepr())
        assert config_cache_key(config) is None


class TestRunReports:
    def test_serial_matches_direct_run(self):
        from repro import run_simulation

        configs = [tiny(load=0.1), tiny(load=0.2)]
        reports = run_reports(configs, workers=1)
        assert reports == [run_simulation(c).report for c in configs]

    def test_parallel_rows_identical_to_serial(self):
        configs = [tiny(load=load) for load in (0.1, 0.15, 0.2)]
        assert run_reports(configs, workers=4) == \
            run_reports(configs, workers=1)

    def test_progress_callback(self):
        seen = []
        run_reports([tiny(load=0.1), tiny(load=0.2)], workers=1,
                    progress=seen.append)
        assert [status.index for status in seen] == [0, 1]
        assert all(status.total == 2 for status in seen)
        assert all(not status.cached for status in seen)
        assert all(status.elapsed > 0 for status in seen)

    def test_empty_input(self):
        assert run_reports([], workers=4) == []

    def test_on_result_journal_hook(self):
        landed = []
        reports = run_reports(
            [tiny(load=0.1), tiny(load=0.2)],
            workers=1,
            on_result=lambda i, r, e, c: landed.append((i, r, e, c)),
        )
        assert [entry[0] for entry in landed] == [0, 1]
        assert [entry[1] for entry in landed] == reports
        assert all(not entry[3] for entry in landed)

    def test_on_result_fires_on_cache_hits(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        run_reports([tiny(load=0.1)], cache=cache)
        landed = []
        run_reports(
            [tiny(load=0.1)], cache=cache,
            on_result=lambda i, r, e, c: landed.append((i, c)),
        )
        assert landed == [(0, True)]

    def test_on_result_under_pool(self):
        landed = []
        configs = [tiny(load=load) for load in (0.1, 0.15, 0.2)]
        reports = run_reports(
            configs, workers=3,
            on_result=lambda i, r, e, c: landed.append((i, r)),
        )
        # completion order may differ; every point lands exactly once
        assert sorted(i for i, _ in landed) == [0, 1, 2]
        for index, report in landed:
            assert reports[index] == report


class TestFailureCapture:
    def test_default_raises(self):
        with pytest.raises(ValueError, match="unknown routing"):
            run_reports([tiny(routing="nope")])

    def test_failures_return_yields_pointfailure(self):
        from repro.sim.parallel import PointFailure

        reports = run_reports(
            [tiny(load=0.1), tiny(routing="nope")], failures="return"
        )
        assert isinstance(reports[0], dict)
        assert isinstance(reports[1], PointFailure)
        assert "nope" in reports[1].error

    def test_failures_return_under_pool(self):
        from repro.sim.parallel import PointFailure

        reports = run_reports(
            [tiny(load=0.1), tiny(routing="nope"), tiny(load=0.15)],
            workers=3, failures="return",
        )
        assert isinstance(reports[1], PointFailure)
        assert isinstance(reports[0], dict)
        assert isinstance(reports[2], dict)

    def test_failures_never_cached(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        run_reports([tiny(routing="nope")], cache=cache,
                    failures="return")
        assert list(tmp_path.glob("*.json")) == []

    def test_bad_failures_value_rejected(self):
        with pytest.raises(ValueError, match="failures"):
            run_reports([tiny()], failures="ignore")


class TestSweepDeterminism:
    def test_load_sweep_workers4_equals_workers1(self):
        base = tiny()
        loads = [0.1, 0.15, 0.2]
        serial = load_sweep(base, loads, label="cr", workers=1)
        fanned = load_sweep(base, loads, label="cr", workers=4)
        assert fanned == serial

    def test_matrix_sweep_workers_equal(self):
        configs = {"cr": tiny(routing="cr"), "dor": tiny(routing="dor")}
        serial = matrix_sweep(configs, [0.1, 0.2], workers=1)
        fanned = matrix_sweep(configs, [0.1, 0.2], workers=3)
        assert fanned == serial


class TestSweepCache:
    def test_second_call_hits_cache(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        first = load_sweep(tiny(), [0.1, 0.2], cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        second = load_sweep(tiny(), [0.1, 0.2], cache=cache)
        assert second == first
        assert cache.hits == 2

    def test_cached_rows_identical_without_rerun(self, tmp_path, monkeypatch):
        cache = SweepCache(str(tmp_path))
        first = load_sweep(tiny(), [0.1], cache=cache)

        def boom(config):
            raise AssertionError("cache should have been hit")

        monkeypatch.setattr(parallel, "_run_point", boom)
        assert load_sweep(tiny(), [0.1], cache=cache) == first

    def test_stale_version_ignored(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        load_sweep(tiny(), [0.1], cache=cache)
        (entry_file,) = tmp_path.glob("*.json")
        entry = json.loads(entry_file.read_text())
        entry["version"] = "0.0.0-stale"
        entry_file.write_text(json.dumps(entry))
        cache.hits = cache.misses = 0
        load_sweep(tiny(), [0.1], cache=cache)
        assert cache.hits == 0 and cache.misses == 1
        # and the entry was rewritten at the current version
        entry = json.loads(entry_file.read_text())
        import repro

        assert entry["version"] == repro.__version__

    def test_stale_schema_ignored(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        load_sweep(tiny(), [0.1], cache=cache)
        (entry_file,) = tmp_path.glob("*.json")
        entry = json.loads(entry_file.read_text())
        entry["schema"] = parallel.SCHEMA_VERSION + 1
        entry_file.write_text(json.dumps(entry))
        assert cache.get(entry_file.stem) is None

    def test_corrupt_entry_ignored(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        load_sweep(tiny(), [0.1], cache=cache)
        (entry_file,) = tmp_path.glob("*.json")
        entry_file.write_text("{not json")
        assert cache.get(entry_file.stem) is None

    def test_progress_reports_cache_hits(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        load_sweep(tiny(), [0.1], cache=cache)
        seen = []
        load_sweep(tiny(), [0.1], cache=cache, progress=seen.append)
        assert seen == [PointStatus(index=0, total=1, elapsed=0.0,
                                    cached=True)]

    def test_uncacheable_config_runs_without_cache_entry(
        self, tmp_path, monkeypatch
    ):
        cache = SweepCache(str(tmp_path))
        config = tiny(fault_model=_NoRepr())
        # _NoRepr is not a working FaultModel; fake the run itself and
        # check the cache layer neither stores nor serves the point.
        monkeypatch.setattr(
            parallel, "_run_point", lambda c: ({"latency_mean": 1.0}, 0.01)
        )
        reports = run_reports([config], cache=cache)
        assert reports == [{"latency_mean": 1.0}]
        assert list(tmp_path.glob("*.json")) == []

    def test_clear(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        load_sweep(tiny(), [0.1, 0.2], cache=cache)
        assert cache.clear() == 2
        assert list(tmp_path.glob("*.json")) == []


class TestResolveCache:
    def test_disabled(self):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None

    def test_default_dir(self):
        cache = resolve_cache(True)
        assert isinstance(cache, SweepCache)
        assert cache.path == parallel.DEFAULT_CACHE_DIR

    def test_path_and_passthrough(self, tmp_path):
        cache = resolve_cache(str(tmp_path))
        assert cache.path == str(tmp_path)
        assert resolve_cache(cache) is cache
