"""CSV export round-trips and the CLI sweep command."""

from repro.cli import main as cli_main
from repro.sim.export import read_csv, rows_to_csv


class TestCsv:
    def test_roundtrip(self, tmp_path):
        rows = [
            {"load": 0.1, "latency": 42.5},
            {"load": 0.2, "latency": 99.0},
        ]
        path = tmp_path / "sweep.csv"
        assert rows_to_csv(rows, str(path)) == 2
        back = read_csv(str(path))
        assert back[0]["load"] == "0.1"
        assert back[1]["latency"] == "99.0"

    def test_union_of_columns(self, tmp_path):
        rows = [{"a": 1}, {"b": 2}]
        path = tmp_path / "union.csv"
        rows_to_csv(rows, str(path))
        back = read_csv(str(path))
        assert set(back[0]) == {"a", "b"}
        assert back[0]["b"] == ""

    def test_explicit_columns_filter(self, tmp_path):
        rows = [{"a": 1, "b": 2}]
        path = tmp_path / "cols.csv"
        rows_to_csv(rows, str(path), columns=["a"])
        back = read_csv(str(path))
        assert set(back[0]) == {"a"}

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "new" / "nested" / "out.csv"
        assert rows_to_csv([{"a": 1}], str(path)) == 1
        assert read_csv(str(path)) == [{"a": "1"}]

    def test_bare_filename_needs_no_directory(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert rows_to_csv([{"a": 1}], "bare.csv") == 1
        assert (tmp_path / "bare.csv").exists()

    def test_heterogeneous_rows_round_trip(self, tmp_path):
        rows = [
            {"load": 0.1, "latency": 12.0},
            {"load": 0.2, "latency": 15.0, "kills": 3},
            {"load": 0.3},
        ]
        path = tmp_path / "hetero.csv"
        assert rows_to_csv(rows, str(path)) == 3
        back = read_csv(str(path))
        # union of columns in first-seen order
        assert list(back[0]) == ["load", "latency", "kills"]
        assert back[1]["kills"] == "3"

    def test_missing_columns_get_restval(self, tmp_path):
        rows = [{"a": 1}, {"b": 2}]
        path = tmp_path / "restval.csv"
        rows_to_csv(rows, str(path))
        back = read_csv(str(path))
        # absent cells are written as the empty-string restval
        assert back[0]["b"] == "" and back[1]["a"] == ""

    def test_explicit_columns_missing_everywhere(self, tmp_path):
        rows = [{"a": 1}]
        path = tmp_path / "missing.csv"
        rows_to_csv(rows, str(path), columns=["a", "ghost"])
        back = read_csv(str(path))
        assert back[0]["ghost"] == ""


class TestCliSweep:
    def test_sweep_prints_and_writes(self, tmp_path, capsys):
        out = tmp_path / "cr.csv"
        code = cli_main(
            [
                "sweep", "--routing", "cr", "--radix", "4",
                "--loads", "0.1,0.2", "--message-length", "8",
                "--warmup", "50", "--measure", "200", "--drain", "2000",
                "--out", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "load sweep" in text
        assert out.exists()
        back = read_csv(str(out))
        assert len(back) == 2
        assert float(back[0]["latency_mean"]) > 0
