"""Property-based tests of the padding arithmetic (the Imin lemma's
static half: the formulas themselves)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.padding import (
    PaddingParams,
    cr_min_injection_length,
    cr_wire_length,
    fcr_wire_length,
    padding_overhead,
    path_capacity,
)

params_st = st.builds(
    PaddingParams,
    buffer_depth=st.integers(1, 16),
    channel_latency=st.integers(1, 4),
    eject_slots=st.integers(1, 4),
    slack=st.integers(1, 8),
)

hops_st = st.integers(0, 32)
payload_st = st.integers(1, 512)


class TestCapacity:
    @given(hops=hops_st, params=params_st)
    def test_capacity_positive_and_monotone_in_hops(self, hops, params):
        here = path_capacity(hops, params)
        assert here > 0
        assert path_capacity(hops + 1, params) > here

    @given(hops=hops_st, params=params_st)
    def test_imin_exceeds_capacity(self, hops, params):
        """Injecting Imin flits forces at least one consumption."""
        assert cr_min_injection_length(hops, params) == \
            path_capacity(hops, params) + 1


class TestCrWire:
    @given(payload=payload_st, hops=hops_st, params=params_st)
    def test_wire_at_least_payload(self, payload, hops, params):
        assert cr_wire_length(payload, hops, params) >= payload

    @given(payload=payload_st, hops=hops_st, params=params_st)
    def test_wire_at_least_imin(self, payload, hops, params):
        assert cr_wire_length(payload, hops, params) >= \
            cr_min_injection_length(hops, params)

    @given(payload=payload_st, hops=hops_st, params=params_st)
    def test_wire_is_tight(self, payload, hops, params):
        """No padding beyond what the lemma needs."""
        wire = cr_wire_length(payload, hops, params)
        assert wire == max(payload, cr_min_injection_length(hops, params))

    @given(payload=payload_st, hops=hops_st, params=params_st)
    def test_overhead_in_unit_interval(self, payload, hops, params):
        wire = cr_wire_length(payload, hops, params)
        assert 0.0 <= padding_overhead(payload, wire) < 1.0


class TestFcrWire:
    @given(payload=payload_st, hops=hops_st, params=params_st)
    def test_fcr_dominates_cr(self, payload, hops, params):
        assert fcr_wire_length(payload, hops, params) >= \
            cr_wire_length(payload, hops, params)

    @given(payload=payload_st, hops=hops_st, params=params_st)
    def test_fkill_window_is_open(self, payload, hops, params):
        """After the last payload flit is consumed at the receiver, the
        source still holds more flits than the path can absorb plus the
        FKILL return latency -- so the FKILL always arrives in time.

        Worst case: the source has injected ``payload + capacity`` flits
        when the last payload flit is consumed; the FKILL takes
        ``hops * channel_latency`` cycles during which at most that many
        more flits are injected.  The remaining wire must exceed both.
        """
        wire = fcr_wire_length(payload, hops, params)
        worst_injected = payload + path_capacity(hops, params)
        fkill_return = hops * params.channel_latency
        assert wire > worst_injected + fkill_return

    @given(payload=payload_st, hops=hops_st, params=params_st)
    def test_fcr_monotone_in_payload(self, payload, hops, params):
        assert fcr_wire_length(payload + 1, hops, params) > \
            fcr_wire_length(payload, hops, params)
