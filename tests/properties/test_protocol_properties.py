"""Property-based end-to-end tests of the CR/FCR guarantees.

Each property runs a full (small) simulation drawn from a randomised
configuration and checks the protocol invariants of DESIGN.md:

1. padding lemma: header consumed before commit,
2. deadlock recovery: CR never wedges and always drains,
3. exactly-once delivery (the ledger raises on duplicates),
4. per-pair FIFO order,
5. FCR integrity: no corrupt payload delivered, and the FKILL window
   (late_corruption counter) never misses.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimConfig, run_simulation

slow = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

cr_config_st = st.builds(
    SimConfig,
    routing=st.just("cr"),
    radix=st.sampled_from([4, 5]),
    dims=st.just(2),
    num_vcs=st.sampled_from([1, 2]),
    buffer_depth=st.sampled_from([1, 2, 4]),
    message_length=st.sampled_from([2, 8, 24]),
    load=st.sampled_from([0.1, 0.3, 0.5]),
    seed=st.integers(0, 2**16),
    warmup=st.just(50),
    measure=st.just(300),
    drain=st.just(6000),
    watchdog=st.just(8000),
)

fcr_config_st = st.builds(
    SimConfig,
    routing=st.just("fcr"),
    radix=st.just(4),
    dims=st.just(2),
    num_vcs=st.sampled_from([1, 2]),
    buffer_depth=st.sampled_from([1, 2]),
    message_length=st.sampled_from([2, 8]),
    load=st.sampled_from([0.05, 0.1]),
    fault_rate=st.sampled_from([0.0, 1e-3, 5e-3]),
    seed=st.integers(0, 2**16),
    warmup=st.just(50),
    measure=st.just(250),
    drain=st.just(8000),
    watchdog=st.just(10000),
)


class TestCrProperties:
    @slow
    @given(config=cr_config_st)
    def test_cr_never_wedges_and_drains(self, config):
        """Deadlock recovery: any CR run completes and drains."""
        result = run_simulation(config)  # watchdog raises on a wedge
        assert result.drained
        assert result.report["undelivered"] == 0

    @slow
    @given(config=cr_config_st)
    def test_padding_lemma_header_before_commit(self, config):
        """When the tail leaves the source the header has already been
        consumed at the destination."""
        result = run_simulation(config)
        for msg in result.ledger.deliveries:
            assert msg.header_consumed_at is not None
            assert msg.committed_at is not None
            assert msg.header_consumed_at <= msg.committed_at

    @slow
    @given(config=cr_config_st)
    def test_exactly_once_and_fifo(self, config):
        """The ledger raised on any duplicate during the run; FIFO is
        validated per pair afterwards."""
        result = run_simulation(config)
        delivered = result.report["messages_delivered"]
        assert len(result.ledger.delivered_uids) == delivered
        result.ledger.validate_fifo()

    @slow
    @given(config=cr_config_st)
    def test_network_clean_after_drain(self, config):
        """No leaked buffers, claims, or worm ownership after draining."""
        result = run_simulation(config, keep_engine=True)
        engine = result.engine
        for router in engine.routers:
            assert not router.claims
            assert not router.out_owner
            for port_bufs in router.in_buffers:
                for buf in port_bufs:
                    assert buf.occupancy == 0
                    assert buf.owner is None


class TestFcrProperties:
    @slow
    @given(config=fcr_config_st)
    def test_integrity_and_completeness(self, config):
        """FCR delivers every message, never a corrupt one, and the
        FKILL window never closes too late."""
        result = run_simulation(config)
        assert result.ledger.corrupt_deliveries == 0
        assert result.report.get("late_corruption", 0) == 0
        assert result.drained
        assert result.report["undelivered"] == 0
