"""Property: CR's guarantees hold on *random* connected graphs.

The paper claims "applicability to a wide variety of network
topologies"; the strongest executable form is a fuzzer: generate random
connected bidirectional graphs, run CR all-pairs traffic over them with
one virtual channel, and require the full guarantee set — no wedge,
complete delivery, exactly-once, FIFO, clean teardown.  No
per-topology deadlock analysis exists for these graphs; recovery alone
carries the burden.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    Engine,
    GraphTopology,
    Message,
    MinimalAdaptive,
    ProtocolConfig,
    ProtocolMode,
    RandomFree,
    WormholeNetwork,
)


@st.composite
def random_connected_graph(draw):
    """A random connected graph: spanning tree + extra chords."""
    n = draw(st.integers(5, 12))
    rng_seed = draw(st.integers(0, 2**16))
    import random as _random

    rng = _random.Random(rng_seed)
    edges = set()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(1, n):
        a = order[i]
        b = order[rng.randrange(i)]
        edges.add((min(a, b), max(a, b)))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return n, sorted(edges), draw(st.integers(0, 2**16))


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=random_connected_graph())
def test_cr_guarantees_on_random_graphs(case):
    n, edges, seed = case
    topology = GraphTopology.from_edges(n, edges)
    network = WormholeNetwork(
        topology, MinimalAdaptive(topology), RandomFree(), num_vcs=1
    )
    engine = Engine(
        network,
        protocol=ProtocolConfig(mode=ProtocolMode.CR),
        seed=seed,
        watchdog=15000,
    )
    messages = []
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            msg = Message(src, dst, 6, seq=engine.next_seq(src, dst))
            engine.admit(msg)
            messages.append(msg)
    assert engine.run_until_drained(80000), (
        f"failed to drain on graph n={n} edges={edges}"
    )
    assert all(m.delivered for m in messages)
    assert len(engine.ledger.delivered_uids) == len(messages)
    engine.ledger.validate_fifo()
    for router in engine.routers:
        assert not router.claims and not router.out_owner
        for port_bufs in router.in_buffers:
            for buf in port_bufs:
                assert buf.occupancy == 0 and buf.owner is None
