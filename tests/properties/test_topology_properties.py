"""Property-based tests of topology metric invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.hypercube import Hypercube
from repro.topology.torus import KAryNCube


@st.composite
def cube_and_pair(draw):
    radix = draw(st.integers(3, 6))
    dims = draw(st.integers(1, 3))
    wrap = draw(st.booleans())
    topo = KAryNCube(radix, dims, wrap=wrap)
    a = draw(st.integers(0, topo.num_nodes - 1))
    b = draw(st.integers(0, topo.num_nodes - 1))
    return topo, a, b


@st.composite
def cube_and_triple(draw):
    topo, a, b = draw(cube_and_pair())
    c = draw(st.integers(0, topo.num_nodes - 1))
    return topo, a, b, c


class TestMetricProperties:
    @given(cube_and_pair())
    @settings(max_examples=200)
    def test_symmetry(self, case):
        topo, a, b = case
        assert topo.min_distance(a, b) == topo.min_distance(b, a)

    @given(cube_and_pair())
    @settings(max_examples=200)
    def test_identity(self, case):
        topo, a, b = case
        assert (topo.min_distance(a, b) == 0) == (a == b)

    @given(cube_and_triple())
    @settings(max_examples=200)
    def test_triangle_inequality(self, case):
        topo, a, b, c = case
        assert topo.min_distance(a, c) <= (
            topo.min_distance(a, b) + topo.min_distance(b, c)
        )

    @given(cube_and_pair())
    @settings(max_examples=200)
    def test_productive_links_exist_and_reduce(self, case):
        topo, a, b = case
        if a == b:
            assert topo.productive_links(a, b) == []
            return
        links = topo.productive_links(a, b)
        assert links
        d = topo.min_distance(a, b)
        for link in links:
            assert topo.min_distance(link.dst, b) == d - 1

    @given(cube_and_pair())
    @settings(max_examples=100)
    def test_dor_walk_is_minimal(self, case):
        topo, a, b = case
        if a == b:
            return
        node, hops = a, 0
        while node != b:
            node = topo.dor_link(node, b).dst
            hops += 1
        assert hops == topo.min_distance(a, b)

    @given(st.integers(1, 6), st.data())
    @settings(max_examples=100)
    def test_hypercube_distance_is_hamming(self, dims, data):
        topo = Hypercube(dims)
        a = data.draw(st.integers(0, topo.num_nodes - 1))
        b = data.draw(st.integers(0, topo.num_nodes - 1))
        assert topo.min_distance(a, b) == bin(a ^ b).count("1")

    @given(cube_and_pair())
    @settings(max_examples=100)
    def test_coords_roundtrip(self, case):
        topo, a, _ = case
        assert topo.node_at(topo.coords(a)) == a
