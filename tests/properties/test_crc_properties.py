"""Property-based tests of the CRC check-code model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.crc import check_flit, flip_bits, flit_with_crc

payload_st = st.binary(min_size=1, max_size=32)


class TestCrcProperties:
    @given(payload=payload_st)
    def test_clean_flits_check(self, payload):
        assert check_flit(flit_with_crc(payload))

    @given(payload=payload_st, data=st.data())
    def test_single_bit_errors_detected(self, payload, data):
        flit = flit_with_crc(payload)
        bit = data.draw(st.integers(0, len(flit) * 8 - 1))
        assert not check_flit(flip_bits(flit, [bit]))

    @given(payload=payload_st, data=st.data())
    def test_double_bit_errors_detected(self, payload, data):
        flit = flit_with_crc(payload)
        total = len(flit) * 8
        a = data.draw(st.integers(0, total - 1))
        b = data.draw(st.integers(0, total - 1).filter(lambda x: x != a))
        assert not check_flit(flip_bits(flit, [a, b]))

    @given(payload=payload_st, data=st.data())
    @settings(max_examples=50)
    def test_flip_is_involutive(self, payload, data):
        flit = flit_with_crc(payload)
        bits = data.draw(
            st.lists(st.integers(0, len(flit) * 8 - 1), max_size=8)
        )
        twice = flip_bits(flip_bits(flit, bits), bits)
        assert twice == flit
