"""Property-based tests for the baseline protocols (drop-at-block and
the software retry layer): their safety guarantees must hold over
randomised configurations just like CR's."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimConfig, run_simulation

slow = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

drop_config_st = st.builds(
    SimConfig,
    routing=st.just("drop"),
    radix=st.just(4),
    dims=st.just(2),
    num_vcs=st.sampled_from([1, 2]),
    buffer_depth=st.sampled_from([1, 2]),
    message_length=st.sampled_from([4, 12]),
    load=st.sampled_from([0.1, 0.3]),
    drop_at_block_cycles=st.sampled_from([1, 2, 8]),
    order_preserving=st.just(False),
    seed=st.integers(0, 2**16),
    warmup=st.just(50),
    measure=st.just(250),
    drain=st.just(8000),
    watchdog=st.just(10000),
)

swr_config_st = st.builds(
    SimConfig,
    routing=st.just("dor"),
    software_retry=st.just(True),
    order_preserving=st.just(False),
    radix=st.just(4),
    dims=st.just(2),
    message_length=st.sampled_from([4, 8]),
    load=st.sampled_from([0.05, 0.15]),
    fault_rate=st.sampled_from([0.0, 2e-3]),
    swr_timeout=st.sampled_from([128, 512]),
    seed=st.integers(0, 2**16),
    warmup=st.just(50),
    measure=st.just(250),
    drain=st.just(10000),
    watchdog=st.just(12000),
)


class TestDropAtBlockProperties:
    @slow
    @given(config=drop_config_st)
    def test_drains_and_delivers_exactly_once(self, config):
        result = run_simulation(config)
        assert result.drained
        assert result.report["undelivered"] == 0
        assert (
            len(result.ledger.delivered_uids)
            == result.report["messages_delivered"]
        )

    @slow
    @given(config=drop_config_st)
    def test_network_clean_after_drain(self, config):
        result = run_simulation(config, keep_engine=True)
        for router in result.engine.routers:
            assert not router.claims
            assert not router.out_owner
            for port_bufs in router.in_buffers:
                for buf in port_bufs:
                    assert buf.occupancy == 0 and buf.owner is None


pcs_config_st = st.builds(
    SimConfig,
    routing=st.just("pcs"),
    radix=st.just(4),
    dims=st.just(2),
    num_vcs=st.sampled_from([1, 2]),
    buffer_depth=st.sampled_from([1, 2]),
    message_length=st.sampled_from([4, 12]),
    load=st.sampled_from([0.05, 0.2]),
    pcs_wait=st.sampled_from([1, 4, 8]),
    seed=st.integers(0, 2**16),
    warmup=st.just(50),
    measure=st.just(250),
    drain=st.just(8000),
    watchdog=st.just(10000),
)


class TestPCSProperties:
    @slow
    @given(config=pcs_config_st)
    def test_circuits_deliver_everything_exactly_once(self, config):
        result = run_simulation(config, keep_engine=True)
        assert result.drained
        assert result.report["undelivered"] == 0
        assert (
            len(result.ledger.delivered_uids)
            == result.report["messages_delivered"]
        )
        for router in result.engine.routers:
            assert not router.out_owner
            for port_bufs in router.in_buffers:
                for buf in port_bufs:
                    assert buf.occupancy == 0 and buf.owner is None


class TestSoftwareRetryProperties:
    @slow
    @given(config=swr_config_st)
    def test_host_sees_each_logical_message_at_most_once(self, config):
        result = run_simulation(config, keep_engine=True)
        layer = result.engine.reliability
        report = layer.report()
        assert report["host_deliveries"] == len(layer.delivered_logical)
        # Conservation: every data message is delivered, failed, or
        # still pending at cutoff.
        tracked = (
            report["host_deliveries"]
            + report["failures"]
            + report["pending"]
        )
        assert tracked >= len(layer.delivered_logical)

    @slow
    @given(config=swr_config_st)
    def test_fault_free_accounting(self, config):
        if config.fault_rate > 0:
            return
        result = run_simulation(config, keep_engine=True)
        report = result.engine.reliability.report()
        # Without faults nothing is ever discarded for corruption...
        assert report["corrupt_discards"] == 0
        # ...and every duplicate the host side deduplicated must stem
        # from a spurious timer retransmission (the timer racing a slow
        # ack), never from thin air.
        assert report["duplicates"] <= report["retransmissions"]
        assert report["failures"] == 0
