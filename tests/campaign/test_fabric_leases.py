"""Property tests for the fabric lease state machine.

Hypothesis drives random interleavings of the operations the fabric
performs against the store — lease acquisition, heartbeat renewal,
clock advance past expiry (which makes reclaim possible), fenced
completion and failure — with an injected clock, and checks the
invariants the fabric's crash-safety argument rests on:

* **single ownership** — acquiring never grants a point whose lease is
  still live under another worker; at most one lease row per point;
* **journal-or-nothing** — a fenced write lands exactly when the writer
  still owns the lease at that attempt; a stale (reclaimed) writer's
  result is discarded and the current state is untouched;
* **attempt monotonicity** — every grant's attempt number strictly
  exceeds any attempt previously granted or journaled for that point,
  so attempt numbers work as fencing tokens across worker deaths.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
)

from repro.campaign import CampaignSpec, CampaignStore
from repro.campaign.runner import point_candidates

TTL = 10.0
MAX_ATTEMPTS = 3
WORKERS = ("alice", "bob", "carol")

SPEC = CampaignSpec.from_dict({
    "name": "leases",
    "base": {"radix": 4, "warmup": 10, "measure": 10,
             "drain": 100, "message_length": 8},
    "axes": {"load": [0.1, 0.2], "routing": ["cr", "dor"]},
    "replications": 1,
})


class LeaseMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.store = CampaignStore(":memory:")
        self.points = list(SPEC.points())
        self.by_id = {p.point_id: p for p in self.points}
        self.candidates = point_candidates(self.points)
        self.clock = 1000.0
        #: every Lease ever granted (live, expired, or long settled) —
        #: completion rules draw from it so stale writers get exercised.
        self.grants = []
        #: point_id -> highest attempt ever granted or journaled.
        self.high_water = {}

    def teardown(self):
        self.store.close()

    # -- helpers --------------------------------------------------------

    def live_leases(self):
        return {
            row["point_id"]: row
            for row in self.store.leases("leases", now=self.clock)
            if row["live"]
        }

    def lease_row(self, point_id):
        for row in self.store.leases("leases", now=self.clock):
            if row["point_id"] == point_id:
                return row
        return None

    # -- rules ----------------------------------------------------------

    @rule(worker=st.sampled_from(WORKERS),
          limit=st.integers(min_value=1, max_value=4))
    def acquire(self, worker, limit):
        live_before = self.live_leases()
        granted = self.store.acquire_leases(
            "leases", worker, self.candidates, limit=limit, ttl=TTL,
            max_attempts=MAX_ATTEMPTS, now=self.clock,
        )
        states = self.store.result_states("leases")
        for lease in granted:
            # Single ownership: never poach a live lease.
            assert lease.point_id not in live_before, (
                f"{worker} was granted {lease.point_id} over a live "
                f"lease held by "
                f"{live_before[lease.point_id]['worker_id']}"
            )
            # Monotonic attempts: the fencing token only advances.
            assert lease.attempt > self.high_water.get(lease.point_id, 0)
            self.high_water[lease.point_id] = lease.attempt
            # Settled points are never re-leased.
            stored = states.get(lease.point_id)
            if stored is not None:
                assert not (stored["status"] == "ok"
                            and stored["config_hash"] == dict(
                                self.candidates)[lease.point_id])
                assert not (stored["status"] == "failed"
                            and stored["attempts"] >= MAX_ATTEMPTS)
            self.grants.append((worker, lease))

    @rule(worker=st.sampled_from(WORKERS))
    def renew(self, worker):
        owned = [pid for pid, row in self.live_leases().items()
                 if row["worker_id"] == worker]
        renewed = self.store.renew_leases(
            "leases", worker, [p[0] for p in self.candidates],
            ttl=TTL, now=self.clock,
        )
        # Renewal is fenced on ownership: it never touches other
        # workers' leases (expired-but-unclaimed own leases may also
        # renew, hence >=).
        assert renewed >= len(owned)
        for pid, row in self.live_leases().items():
            if row["worker_id"] != worker:
                assert row == self.lease_row(pid)

    @rule(dt=st.floats(min_value=0.5, max_value=TTL * 1.5))
    def advance_clock(self, dt):
        self.clock += dt

    @precondition(lambda self: self.grants)
    @rule(data=st.data(), succeed=st.booleans())
    def complete(self, data, succeed):
        """A (possibly long-dead) worker reports a leased point's result."""
        worker, lease = data.draw(st.sampled_from(self.grants))
        before = self.store.result_states("leases").get(lease.point_id)
        row = self.lease_row(lease.point_id)
        owns = (row is not None and row["worker_id"] == worker
                and row["attempt"] == lease.attempt)
        point = self.by_id[lease.point_id]
        if succeed:
            wrote = self.store.record_success(
                "leases", point, {"latency_mean": 1.0}, 0.01,
                attempts=lease.attempt, fence=(worker, lease.attempt),
            )
        else:
            wrote = self.store.record_failure(
                "leases", point, "boom", 0.01,
                attempts=lease.attempt, fence=(worker, lease.attempt),
            )
        # Journal-or-nothing: the fenced write lands iff the writer
        # still owns the lease at that exact attempt.
        assert wrote == owns
        after = self.store.result_states("leases").get(lease.point_id)
        if wrote:
            # ...and the lease is consumed atomically with the row.
            assert self.lease_row(lease.point_id) is None
            assert after["attempts"] == lease.attempt
            assert after["status"] == ("ok" if succeed else "failed")
            self.high_water[lease.point_id] = max(
                self.high_water.get(lease.point_id, 0), lease.attempt)
        else:
            # A stale writer changes nothing.
            assert after == before
            assert self.lease_row(lease.point_id) == row

    @rule()
    def one_lease_row_per_point(self):
        rows = self.store.leases("leases", now=self.clock)
        ids = [row["point_id"] for row in rows]
        assert len(ids) == len(set(ids))
        # A leased point is never already settled ok under its hash.
        states = self.store.result_states("leases")
        expected = dict(self.candidates)
        for row in rows:
            stored = states.get(row["point_id"])
            if stored is not None and stored["status"] == "ok":
                assert stored["config_hash"] != expected[row["point_id"]]


LeaseMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None,
)
TestLeaseStateMachine = LeaseMachine.TestCase


def test_completed_grid_stops_granting():
    """Once every point is settled, acquire returns nothing forever."""
    with CampaignStore(":memory:") as store:
        points = list(SPEC.points())
        candidates = point_candidates(points)
        clock = 50.0
        for point in points:
            (lease,) = store.acquire_leases(
                "leases", "w", [
                    (point.point_id,
                     dict(candidates)[point.point_id])],
                limit=1, ttl=TTL, now=clock,
            )
            assert store.record_success(
                "leases", point, {}, 0.0, attempts=lease.attempt,
                fence=("w", lease.attempt),
            )
        assert store.acquire_leases(
            "leases", "w2", candidates, limit=10, ttl=TTL, now=clock,
        ) == []
        assert store.leases("leases") == []


def test_terminal_failure_stops_granting():
    with CampaignStore(":memory:") as store:
        points = list(SPEC.points())
        candidates = point_candidates(points)[:1]
        point = points[0]
        clock = 50.0
        for _ in range(MAX_ATTEMPTS):
            (lease,) = store.acquire_leases(
                "leases", "w", candidates, limit=1, ttl=TTL,
                max_attempts=MAX_ATTEMPTS, now=clock,
            )
            assert store.record_failure(
                "leases", point, "boom", 0.0, attempts=lease.attempt,
                fence=("w", lease.attempt),
            )
        assert store.acquire_leases(
            "leases", "w", candidates, limit=1, ttl=TTL,
            max_attempts=MAX_ATTEMPTS, now=clock,
        ) == []


def test_reclaim_is_flagged_and_advances_attempt():
    with CampaignStore(":memory:") as store:
        points = list(SPEC.points())
        candidates = point_candidates(points)[:1]
        (first,) = store.acquire_leases(
            "leases", "w1", candidates, limit=1, ttl=TTL, now=100.0)
        assert (first.attempt, first.reclaimed) == (1, False)
        # Not expired yet: nobody else can have it.
        assert store.acquire_leases(
            "leases", "w2", candidates, limit=1, ttl=TTL,
            now=100.0 + TTL - 0.1) == []
        (second,) = store.acquire_leases(
            "leases", "w2", candidates, limit=1, ttl=TTL,
            now=100.0 + TTL + 0.1)
        assert (second.attempt, second.reclaimed) == (2, True)
        # The dead worker's late write is fenced out...
        assert not store.record_success(
            "leases", points[0], {}, 0.0, attempts=first.attempt,
            fence=("w1", first.attempt))
        # ...while the reclaimer's lands.
        assert store.record_success(
            "leases", points[0], {}, 0.0, attempts=second.attempt,
            fence=("w2", second.attempt))


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
