"""Alert episodes through the campaign layer: store, runner, watch."""

import pytest

from repro.campaign import CampaignSpec, CampaignStore, run_campaign
from repro.campaign.monitor import (
    STALE_AFTER,
    CampaignMonitor,
    heartbeat_age,
    read_status,
    render_alerts,
    render_status,
)
from repro.campaign.report import campaign_markdown
from repro.campaign.spec import CampaignPoint
from repro.sim.config import SimConfig


def episode(rule="kill-storm", severity="critical", state="resolved",
            fired_at=200, resolved_at=400, value=2.0):
    return {
        "rule": rule, "severity": severity, "state": state,
        "fired_at": fired_at, "resolved_at": resolved_at,
        "value": value, "message": f"{rule} test episode",
    }


#: a rule that holds in every window, so campaigns journal an episode
#: per point deterministically.
ALWAYS = [{"name": "heartbeat", "metric": "delivery_ratio",
           "op": "<=", "value": 1.0, "severity": "info"}]


def alerting_spec(name="al", alerts=ALWAYS, loads=(0.1, 0.2)):
    return CampaignSpec.from_dict({
        "name": name,
        "base": {"radix": 4, "warmup": 50, "measure": 200,
                 "drain": 2000, "message_length": 8,
                 "sample_interval": 100, "alerts": alerts},
        "axes": {"routing": ["cr"], "load": list(loads)},
    })


def make_point(point_id="load=0.1/rep=0"):
    return CampaignPoint(
        point_id=point_id, grid="", scenario={"load": 0.1},
        replication=0,
        config=SimConfig(radix=4, dims=2, message_length=8),
    )


@pytest.fixture
def store(tmp_path):
    with CampaignStore(str(tmp_path / "c.sqlite")) as s:
        yield s


class TestStoreRoundTrip:
    def test_record_and_read_back_in_order(self, store):
        spec = alerting_spec()
        store.register(spec)
        point = next(iter(spec.points()))
        rows = [episode(), episode(rule="delivery-slo",
                                   severity="warning", state="firing",
                                   resolved_at=None)]
        assert store.record_alerts("al", point, rows) == 2
        assert store.alerts("al") == {point.point_id: rows}

    def test_rerecord_replaces(self, store):
        spec = alerting_spec()
        point = next(iter(spec.points()))
        store.record_alerts("al", point, [episode(), episode()])
        store.record_alerts("al", point, [episode(fired_at=999)])
        (rows,) = store.alerts("al").values()
        assert [row["fired_at"] for row in rows] == [999]

    def test_alert_counts_roll_up_by_rule(self, store):
        spec = alerting_spec()
        point = next(iter(spec.points()))
        store.record_alerts("al", point, [
            episode(), episode(), episode(rule="delivery-slo"),
        ])
        assert store.alert_counts("al") == {
            point.point_id: {"kill-storm": 2, "delivery-slo": 1},
        }

    def test_empty_campaign_reads_empty(self, store):
        assert store.alerts("nothing") == {}
        assert store.alert_counts("nothing") == {}

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        point = make_point()
        with CampaignStore(path) as store:
            store.record_alerts("al", point, [episode()])
        with CampaignStore(path) as store:
            assert len(store.alerts("al")[point.point_id]) == 1


class TestRunnerJournaling:
    def test_alerting_campaign_lands_episodes_in_the_store(
            self, store):
        spec = alerting_spec()
        stats = run_campaign(spec, store, workers=1, cache=None)
        assert stats.complete
        journaled = store.alerts("al")
        assert len(journaled) == spec.size
        for rows in journaled.values():
            assert [row["rule"] for row in rows] == ["heartbeat"]
            assert rows[0]["state"] == "firing"

    def test_unarmed_campaign_stores_no_alerts(self, store):
        spec = CampaignSpec.from_dict({
            "name": "flat",
            "base": {"radix": 4, "warmup": 50, "measure": 200,
                     "drain": 2000, "message_length": 8},
            "axes": {"routing": ["cr"], "load": [0.1]},
        })
        run_campaign(spec, store, workers=1, cache=None)
        assert store.alerts("flat") == {}

    def test_cascade_stress_arms_the_builtin_rules(self):
        from repro.campaign.library import get_campaign

        spec = get_campaign("cascade-stress")
        point = next(iter(spec.points()))
        assert point.config.alerts is True
        assert point.config.sample_interval == 200


class TestLiveServing:
    def test_metrics_round_trip_while_the_campaign_runs(
            self, store):
        # The progress callback fires between points, i.e. while the
        # campaign is genuinely mid-flight: scraping there proves the
        # endpoints are live during execution, not just at the end.
        import urllib.request

        from repro.obs.metrics import parse_prometheus_text
        from repro.obs.server import TelemetryServer

        server = TelemetryServer()
        scrapes = []

        def scrape(_status):
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=5
            ) as response:
                scrapes.append(
                    parse_prometheus_text(
                        response.read().decode("utf-8")))

        spec = alerting_spec(loads=(0.1,))
        try:
            stats = run_campaign(
                spec, store, workers=1, cache=None,
                heartbeat=0.0, serve=server, progress=scrape,
            )
        finally:
            server.stop()
        assert stats.complete
        assert scrapes, "progress callback never scraped"
        parsed = scrapes[-1]
        counters = parsed["cr_campaign_points_total"]["samples"]
        assert counters[
            'cr_campaign_points_total{outcome="ok"}'
        ] == spec.size
        assert parsed["cr_campaign_alerts_total"]["samples"][
            "cr_campaign_alerts_total"
        ] >= 1.0

    def test_runner_stops_an_owned_server(self, store):
        from repro.obs.server import TelemetryServer

        spec = alerting_spec(name="al2", loads=(0.1,))
        # A spec (True) makes the runner build and own the server; we
        # can't reach it afterwards, so just assert clean completion.
        stats = run_campaign(spec, store, workers=1, cache=None,
                             heartbeat=0.0, serve=True)
        assert stats.complete
        # An instance stays caller-owned: still running afterwards.
        server = TelemetryServer()
        try:
            run_campaign(spec, store, workers=1, cache=None,
                         heartbeat=0.0, serve=server)
            assert server.running
            assert server.status()["state"] == "finished"
        finally:
            server.stop()


class TestMonitorAlerts:
    def make_monitor(self, tmp_path, total=4):
        ticks = iter(range(1000))
        path = str(tmp_path / "m.status.json")
        return CampaignMonitor(
            "m", total, path, interval=0.0,
            clock=lambda: float(next(ticks)),
        ), path

    def test_episodes_land_in_heartbeat_and_registry(self, tmp_path):
        monitor, path = self.make_monitor(tmp_path)
        report = {"alerts": [episode(), episode(rule="delivery-slo",
                                                severity="warning")]}
        monitor.on_point(make_point(), "ok", 0.5, report)
        status = read_status(path)
        assert status["alerts"]["total"] == 2
        assert status["alerts"]["by_rule"] == {
            "kill-storm": 1, "delivery-slo": 1,
        }
        assert [a["point_id"] for a in status["alerts"]["recent"]] == [
            "load=0.1/rep=0", "load=0.1/rep=0",
        ]
        by_rule = status["metrics"][
            "cr_campaign_alerts_by_rule_total"]["values"]
        assert by_rule['{rule="kill-storm",severity="critical"}'] == 1.0

    def test_build_info_gauge_in_heartbeat_metrics(self, tmp_path):
        from repro import __version__

        monitor, path = self.make_monitor(tmp_path)
        monitor.on_point(make_point(), "ok", 0.5, {})
        values = read_status(path)["metrics"][
            "cr_campaign_build_info"]["values"]
        (key,) = values
        assert f'version="{__version__}"' in key
        assert values[key] == 1.0

    def test_monitor_republishes_to_a_server(self, tmp_path):
        from repro.obs.server import TelemetryServer

        server = TelemetryServer()
        try:
            monitor = CampaignMonitor(
                "m", 2, None, interval=0.0, server=server,
            )
            monitor.on_point(make_point(), "ok", 0.5,
                             {"alerts": [episode()]})
            monitor.finalize()
            assert server.publishes >= 2
            health = server.health()
            assert health["campaign"] == "m"
            assert health["status"] == "finished"
            assert health["alerts"] == {"kill-storm": 1}
            assert "cr_campaign_points_total" in server.metrics_text()
            assert server.status()["state"] == "finished"
        finally:
            server.stop()


class TestWatchRendering:
    def status_with_alerts(self, state="running", updated_at=None):
        status = {
            "name": "al", "state": state,
            "done": 1, "total": 4,
            "alerts": {
                "total": 2,
                "by_rule": {"kill-storm": 1, "delivery-slo": 1},
                "recent": [
                    dict(episode(), point_id="p0"),
                    dict(episode(rule="delivery-slo", state="firing",
                                 resolved_at=None), point_id="p1"),
                ],
            },
        }
        if updated_at is not None:
            status["updated_at"] = updated_at
        return status

    def test_render_alerts_marks_firing_episodes(self):
        lines = render_alerts(self.status_with_alerts())
        assert lines[0].startswith("  alerts: 2 episode(s)")
        assert "delivery-slox1" in lines[0]
        firing = [line for line in lines if line.lstrip().startswith("!")]
        assert len(firing) == 1
        assert "delivery-slo" in firing[0]

    def test_render_alerts_empty(self):
        assert render_alerts({}) == ["  alerts: none"]

    def test_alerts_only_filter_drops_progress(self):
        text = render_status(self.status_with_alerts(),
                             alerts_only=True)
        assert "— alerts" in text
        assert "kill-storm" in text
        assert "elapsed" not in text  # progress block dropped

    def test_stale_heartbeat_banner_keeps_alerts_visible(self):
        now = 1000.0
        status = self.status_with_alerts(
            updated_at=now - STALE_AFTER - 5.0)
        assert heartbeat_age(status, now=now) == pytest.approx(
            STALE_AFTER + 5.0)
        text = render_status(status, now=now)
        assert text.startswith("!! STALE heartbeat")
        assert "last-known" in text
        assert "kill-storm" in text  # alerts still render after banner

    def test_fresh_or_finished_heartbeat_has_no_banner(self):
        now = 1000.0
        fresh = self.status_with_alerts(updated_at=now - 1.0)
        assert "STALE" not in render_status(fresh, now=now)
        finished = self.status_with_alerts(
            state="finished", updated_at=now - 500.0)
        assert "STALE" not in render_status(finished, now=now)

    def test_stale_threshold_is_strictly_past(self):
        # The banner triggers strictly *past* the threshold: an age of
        # exactly stale_after is still fresh, one tick later is stale.
        now = 1000.0
        at_threshold = self.status_with_alerts(
            updated_at=now - STALE_AFTER)
        assert "STALE" not in render_status(at_threshold, now=now)
        just_past = self.status_with_alerts(
            updated_at=now - STALE_AFTER - 1e-3)
        assert "STALE" in render_status(just_past, now=now)

    def test_stale_threshold_is_configurable(self):
        # `campaign watch --stale-after` tightens or relaxes the
        # banner; the same edge semantics hold at the custom value.
        now = 1000.0
        status = self.status_with_alerts(updated_at=now - 5.0)
        assert "STALE" not in render_status(status, now=now)  # default 15
        assert "STALE" in render_status(status, now=now,
                                        stale_after=4.0)
        assert "STALE" not in render_status(status, now=now,
                                            stale_after=5.0)  # exact age
        assert "STALE" not in render_status(status, now=now,
                                            stale_after=60.0)


class TestCampaignMarkdownAlerts:
    def test_report_counts_and_lists_episodes(self, store):
        spec = alerting_spec()
        run_campaign(spec, store, workers=1, cache=None)
        text = campaign_markdown(store, "al")
        assert "| alerts |" in text  # scenario table column
        assert "## Alerts" in text
        assert "heartbeat" in text
        assert "firing" in text

    def test_report_omits_alert_section_without_episodes(self, store):
        spec = CampaignSpec.from_dict({
            "name": "flat",
            "base": {"radix": 4, "warmup": 50, "measure": 200,
                     "drain": 2000, "message_length": 8},
            "axes": {"routing": ["cr"], "load": [0.1]},
        })
        run_campaign(spec, store, workers=1, cache=None)
        text = campaign_markdown(store, "flat")
        assert "## Alerts" not in text
        assert "| — |" in text or "| alerts |" in text
