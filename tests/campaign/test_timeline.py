"""The merged campaign timeline: spans -> one Perfetto document."""

import json

import pytest

from repro.campaign import CampaignSpec, CampaignStore
from repro.campaign.timeline import (
    COORDINATOR_PID,
    campaign_timeline,
    default_timeline_path,
    timeline_events,
    timeline_summary,
    write_campaign_timeline,
)


@pytest.fixture
def spec():
    return CampaignSpec.from_dict({
        "name": "s",
        "base": {"radix": 4, "warmup": 50, "measure": 200,
                 "message_length": 8},
        "axes": {"routing": ["cr"], "load": [0.1]},
    })


@pytest.fixture
def store(tmp_path):
    with CampaignStore(str(tmp_path / "c.sqlite")) as s:
        yield s


def span_row(span_id, kind="run", status="ok", worker_id="w1",
             point_id=None, parent_id=None, start_ts=1.0, end_ts=2.0,
             **attrs):
    return {
        "trace_id": "t" * 32, "span_id": span_id,
        "parent_id": parent_id, "name": f"{kind} {span_id[:4]}",
        "kind": kind, "worker_id": worker_id, "point_id": point_id,
        "start_ts": start_ts,
        "end_ts": None if status == "open" else end_ts,
        "status": status, "attrs": attrs,
    }


def fabric_spans(point_id):
    """A minimal two-worker traced fabric: root + sessions + leases + runs."""
    return [
        span_row("r" * 16, kind="root", worker_id="coordinator",
                 start_ts=0.0, end_ts=10.0),
        span_row("1a" * 8, kind="worker", worker_id="w1",
                 parent_id="r" * 16, start_ts=1.0, end_ts=9.0),
        span_row("2a" * 8, kind="worker", worker_id="w2",
                 parent_id="r" * 16, start_ts=1.5, end_ts=9.5),
        span_row("1b" * 8, kind="lease", worker_id="w1",
                 parent_id="1a" * 8, point_id=point_id, start_ts=2.0,
                 end_ts=8.0),
        span_row("1c" * 8, kind="run", worker_id="w1",
                 parent_id="1b" * 8, point_id=point_id, start_ts=3.0,
                 end_ts=7.0),
    ]


class TestProcessTracks:
    def test_one_track_per_process_coordinator_first(self, store, spec):
        store.register(spec)
        point_id = next(iter(spec.points())).point_id
        store.record_spans("s", fabric_spans(point_id))
        events = timeline_events(store, "s")
        names = {
            event["pid"]: event["args"]["name"]
            for event in events if event["ph"] == "M"
        }
        assert names[COORDINATOR_PID] == "coordinator"
        # workers numbered by first-span order
        assert names[COORDINATOR_PID + 1] == "w1"
        assert names[COORDINATOR_PID + 2] == "w2"

    def test_every_span_becomes_a_duration_event(self, store, spec):
        store.register(spec)
        point_id = next(iter(spec.points())).point_id
        store.record_spans("s", fabric_spans(point_id))
        events = timeline_events(store, "s")
        durations = [e for e in events if e["ph"] == "X"]
        assert len(durations) == 5
        by_cat = {e["cat"]: e for e in durations}
        root = by_cat["root"]
        assert root["pid"] == COORDINATOR_PID
        assert root["ts"] == 0 and root["dur"] == 10_000_000  # us
        run = by_cat["run"]
        assert run["pid"] == COORDINATOR_PID + 1
        assert run["args"]["point_id"] == point_id
        assert run["args"]["parent_id"] == "1b" * 8
        # ids in args make parenting checkable inside Perfetto
        assert all(e["args"]["trace_id"] == "t" * 32 for e in durations)

    def test_open_span_is_drawn_to_the_horizon(self, store, spec):
        store.register(spec)
        store.record_spans("s", [
            span_row("r" * 16, kind="root", worker_id="coordinator",
                     status="open", start_ts=0.0),
            span_row("a" * 16, kind="run", worker_id="w1",
                     start_ts=1.0, end_ts=5.0),
        ])
        events = timeline_events(store, "s")
        root = [e for e in events if e["ph"] == "X"
                and e["cat"] == "root"][0]
        assert root["dur"] == 5_000_000  # horizon = latest end_ts


class TestCounterAndAlertMapping:
    def _landed_point(self, store, spec):
        point = next(iter(spec.points()))
        store.register(spec)
        store.record_success("s", point, {"latency_mean": 1.0}, 0.1)
        store.record_spans("s", fabric_spans(point.point_id))
        return point

    def test_samples_map_cycles_onto_the_run_span(self, store, spec):
        point = self._landed_point(store, spec)
        store.record_timeseries("s", point, [
            {"index": 0, "start": 0, "end": 100, "latency_mean": 5.0},
            {"index": 1, "start": 100, "end": 200, "latency_mean": 9.0},
        ])
        events = timeline_events(store, "s")
        counters = [e for e in events if e["ph"] == "C"
                    and e["name"] == "point latency_mean"]
        assert len(counters) == 2
        # run span covers wall 3.0..7.0; final cycle 200 maps to 7.0,
        # cycle 100 to the midpoint 5.0
        assert counters[0]["ts"] == 5_000_000
        assert counters[1]["ts"] == 7_000_000
        assert counters[0]["args"] == {"latency_mean": 5.0}
        # counters land on the worker that ran the point
        assert all(c["pid"] == COORDINATOR_PID + 1 for c in counters)

    def test_alert_instants_ride_the_same_mapping(self, store, spec):
        point = self._landed_point(store, spec)
        store.record_timeseries("s", point, [
            {"index": 0, "start": 0, "end": 200, "latency_mean": 5.0},
        ])
        store.record_alerts("s", point, [{
            "rule": "hot", "severity": "warning", "state": "firing",
            "fired_at": 100, "resolved_at": None, "value": 9.0,
            "message": "latency high",
        }])
        events = timeline_events(store, "s")
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["name"] == "alert hot"
        assert instant["s"] == "g"
        assert instant["ts"] == 5_000_000  # cycle 100/200 -> wall 5.0
        assert instant["args"]["severity"] == "warning"

    def test_points_done_counter_steps_on_the_coordinator(self, store,
                                                          spec):
        self._landed_point(store, spec)
        events = timeline_events(store, "s")
        (done,) = [e for e in events if e["name"] == "points_done"]
        assert done["pid"] == COORDINATOR_PID
        assert done["args"] == {"done": 1}
        assert done["ts"] == 7_000_000  # the run span's end


class TestDocument:
    def test_document_shape_and_write(self, store, spec, tmp_path):
        store.register(spec)
        point_id = next(iter(spec.points())).point_id
        store.record_spans("s", fabric_spans(point_id))
        document = campaign_timeline(store, "s")
        assert set(document) == {"traceEvents", "displayTimeUnit",
                                 "otherData"}
        path = write_campaign_timeline(store, "s")
        assert path == default_timeline_path(store.path, "s")
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == json.loads(
                json.dumps(document))

    def test_write_without_spans_raises(self, store, spec):
        store.register(spec)
        with pytest.raises(LookupError, match="no journaled spans"):
            write_campaign_timeline(store, "s")

    def test_memory_store_needs_an_explicit_path(self, spec, tmp_path):
        with CampaignStore(":memory:") as store:
            store.register(spec)
            store.record_spans("s", [span_row("a" * 16)])
            with pytest.raises(ValueError, match="in-memory"):
                write_campaign_timeline(store, "s")
            target = str(tmp_path / "out.json")
            assert write_campaign_timeline(store, "s",
                                           target) == target

    def test_summary(self, store, spec):
        store.register(spec)
        point_id = next(iter(spec.points())).point_id
        spans = fabric_spans(point_id)
        spans[0]["status"] = "open"
        spans[0]["end_ts"] = None
        store.record_spans("s", spans)
        summary = timeline_summary(store, "s")
        assert summary["spans"] == 5 and summary["open"] == 1
        assert summary["by_kind"] == {"root": 1, "worker": 2,
                                      "lease": 1, "run": 1}
        assert summary["workers"] == ["coordinator", "w1", "w2"]
        assert summary["traces"] == ["t" * 32]
