"""Chaos harness: SIGKILL a fabric worker mid-lease; the campaign heals.

The fabric's crash-safety claims, tested against real worker
subprocesses rather than asserted in docstrings: a worker killed with
SIGKILL (no cleanup, no atexit, heartbeat thread dies with it) at a
seeded-random point of progress must cost only its in-flight points.
Survivors reclaim the expired leases and finish the grid with exactly
one ``ok`` row per point — nothing lost, nothing double-journaled.
"""

import os
import random
import signal
import time

import pytest

from repro.campaign import CampaignSpec, CampaignStore, Coordinator
from repro.campaign.fabric import spawn_worker

#: fixed chaos seed: the kill point is randomized but reproducible.
CHAOS_SEED = 0xC0FFEE

#: short lease TTL so the test reclaims quickly; heartbeats at ttl/3.
TTL = 1.2

SPEC_DICT = {
    "name": "chaos",
    "base": {"radix": 4, "warmup": 100, "measure": 600,
             "drain": 3000, "message_length": 8},
    "axes": {"load": [0.1, 0.15, 0.2, 0.25, 0.3],
             "routing": ["cr", "dor"]},
    "replications": 1,
}


@pytest.fixture
def spec():
    return CampaignSpec.from_dict(SPEC_DICT)


def wait_for(predicate, timeout, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def test_sigkilled_worker_points_are_reclaimed_and_completed(
    spec, tmp_path
):
    rng = random.Random(CHAOS_SEED)
    # Kill once the victim has journaled this many points (and still
    # holds live leases) — a seeded-random moment mid-campaign.
    kill_after = rng.randrange(0, 3)

    db = str(tmp_path / "chaos.sqlite")
    with CampaignStore(db) as store:
        store.register(spec)
    total = len(list(spec.points()))

    victim = spawn_worker(
        spec.name, db, worker_id="victim",
        batch=4, ttl=TTL, poll=0.05,
    )
    survivors = []
    watcher = CampaignStore(db)
    try:
        def mid_lease():
            held = [row for row in watcher.leases(spec.name)
                    if row["worker_id"] == "victim" and row["live"]]
            states = watcher.result_states(spec.name)
            done = sum(1 for s in states.values() if s["status"] == "ok")
            return len(held) >= 2 and done >= kill_after

        wait_for(mid_lease, timeout=60,
                 message="victim to hold >= 2 live leases")
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)

        # SIGKILL means no cleanup: the victim's leases must still be
        # on the table, doomed to expire rather than released.
        orphaned = [row for row in watcher.leases(spec.name)
                    if row["worker_id"] == "victim"]
        assert orphaned, "victim died without in-flight leases"

        survivors = [
            spawn_worker(spec.name, db, worker_id=f"survivor-{i}",
                         batch=2, ttl=TTL, poll=0.05)
            for i in (1, 2)
        ]
        coordinator = Coordinator(
            spec, watcher, heartbeat_path=None, interval=0.1, ttl=TTL,
        )
        stats = coordinator.run(
            timeout=180,
            stop=lambda: all(p.poll() is not None for p in survivors),
        )
    finally:
        for proc in [victim, *survivors]:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    assert stats.complete, (
        f"campaign did not heal after SIGKILL: {stats}"
    )

    with CampaignStore(db) as store:
        rows = store.rows(spec.name)
        # Exactly one ok row per point: none lost, none duplicated.
        assert len(rows) == total
        assert {row["status"] for row in rows} == {"ok"}
        assert len({row["point_id"] for row in rows}) == total
        assert {row["point_id"] for row in rows} == {
            point.point_id for point in spec.points()
        }
        # Recovery, not luck: survivors took over expired leases...
        reclaims = sum(row["reclaims"]
                       for row in store.workers(spec.name))
        assert reclaims > 0
        assert stats.reclaims == reclaims
        # ...and the reclaimed points carry fenced attempt numbers
        # past the victim's (attempt monotonicity across the kill).
        orphan_ids = {row["point_id"] for row in orphaned}
        finished_by = {row["point_id"]: row for row in rows}
        retried = [finished_by[pid] for pid in orphan_ids
                   if finished_by[pid]["attempts"] >= 2]
        assert retried, "no orphaned point shows a takeover attempt"
        # No leases left behind once the campaign settled.
        assert store.leases(spec.name) == []
