"""Chaos harness: SIGKILL a fabric worker mid-lease; the campaign heals.

The fabric's crash-safety claims, tested against real worker
subprocesses rather than asserted in docstrings: a worker killed with
SIGKILL (no cleanup, no atexit, heartbeat thread dies with it) at a
seeded-random point of progress must cost only its in-flight points.
Survivors reclaim the expired leases and finish the grid with exactly
one ``ok`` row per point — nothing lost, nothing double-journaled.
"""

import os
import random
import signal
import time

import pytest

from repro.campaign import CampaignSpec, CampaignStore, Coordinator
from repro.campaign.fabric import spawn_worker

#: fixed chaos seed: the kill point is randomized but reproducible.
CHAOS_SEED = 0xC0FFEE

#: short lease TTL so the test reclaims quickly; heartbeats at ttl/3.
TTL = 1.2

SPEC_DICT = {
    "name": "chaos",
    "base": {"radix": 4, "warmup": 100, "measure": 600,
             "drain": 3000, "message_length": 8},
    "axes": {"load": [0.1, 0.15, 0.2, 0.25, 0.3],
             "routing": ["cr", "dor"]},
    "replications": 1,
}


@pytest.fixture
def spec():
    return CampaignSpec.from_dict(SPEC_DICT)


def wait_for(predicate, timeout, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def test_sigkilled_worker_points_are_reclaimed_and_completed(
    spec, tmp_path
):
    rng = random.Random(CHAOS_SEED)
    # Kill once the victim has journaled this many points (and still
    # holds live leases) — a seeded-random moment mid-campaign.
    kill_after = rng.randrange(0, 3)

    db = str(tmp_path / "chaos.sqlite")
    with CampaignStore(db) as store:
        store.register(spec)
    total = len(list(spec.points()))

    victim = spawn_worker(
        spec.name, db, worker_id="victim",
        batch=4, ttl=TTL, poll=0.05,
    )
    survivors = []
    watcher = CampaignStore(db)
    try:
        def mid_lease():
            held = [row for row in watcher.leases(spec.name)
                    if row["worker_id"] == "victim" and row["live"]]
            states = watcher.result_states(spec.name)
            done = sum(1 for s in states.values() if s["status"] == "ok")
            return len(held) >= 2 and done >= kill_after

        wait_for(mid_lease, timeout=60,
                 message="victim to hold >= 2 live leases")
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)

        # SIGKILL means no cleanup: the victim's leases must still be
        # on the table, doomed to expire rather than released.
        orphaned = [row for row in watcher.leases(spec.name)
                    if row["worker_id"] == "victim"]
        assert orphaned, "victim died without in-flight leases"

        survivors = [
            spawn_worker(spec.name, db, worker_id=f"survivor-{i}",
                         batch=2, ttl=TTL, poll=0.05)
            for i in (1, 2)
        ]
        coordinator = Coordinator(
            spec, watcher, heartbeat_path=None, interval=0.1, ttl=TTL,
        )
        stats = coordinator.run(
            timeout=180,
            stop=lambda: all(p.poll() is not None for p in survivors),
        )
    finally:
        for proc in [victim, *survivors]:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    assert stats.complete, (
        f"campaign did not heal after SIGKILL: {stats}"
    )

    with CampaignStore(db) as store:
        rows = store.rows(spec.name)
        # Exactly one ok row per point: none lost, none duplicated.
        assert len(rows) == total
        assert {row["status"] for row in rows} == {"ok"}
        assert len({row["point_id"] for row in rows}) == total
        assert {row["point_id"] for row in rows} == {
            point.point_id for point in spec.points()
        }
        # Recovery, not luck: survivors took over expired leases...
        reclaims = sum(row["reclaims"]
                       for row in store.workers(spec.name))
        assert reclaims > 0
        assert stats.reclaims == reclaims
        # ...and the reclaimed points carry fenced attempt numbers
        # past the victim's (attempt monotonicity across the kill).
        orphan_ids = {row["point_id"] for row in orphaned}
        finished_by = {row["point_id"]: row for row in rows}
        retried = [finished_by[pid] for pid in orphan_ids
                   if finished_by[pid]["attempts"] >= 2]
        assert retried, "no orphaned point shows a takeover attempt"
        # No leases left behind once the campaign settled.
        assert store.leases(spec.name) == []


def test_sigkilled_workers_orphan_spans_are_closed_aborted(
    spec, tmp_path
):
    """Tracing under chaos: a SIGKILLed worker leaves open spans; the
    reclaim closes its point-scoped orphans ``aborted``, the settle
    sweep closes its session span, and the final store carries one
    trace with no span left open."""
    from repro.obs.log import campaign_log_path, read_campaign_logs

    db = str(tmp_path / "chaos.sqlite")
    watcher = CampaignStore(db)
    coordinator = Coordinator(
        spec, watcher, heartbeat_path=None, interval=0.1, ttl=TTL,
        trace=True,
    )
    traceparent = coordinator.traceparent()
    assert traceparent is not None

    victim = spawn_worker(
        spec.name, db, worker_id="victim",
        batch=4, ttl=TTL, poll=0.05,
        trace=True, traceparent=traceparent,
    )
    survivors = []
    try:
        def mid_lease_with_spans():
            held = [row for row in watcher.leases(spec.name)
                    if row["worker_id"] == "victim" and row["live"]]
            open_leases = [
                span for span in watcher.spans(spec.name, status="open")
                if span["worker_id"] == "victim"
                and span["kind"] == "lease"
            ]
            return len(held) >= 2 and len(open_leases) >= 2

        wait_for(mid_lease_with_spans, timeout=60,
                 message="victim to journal open lease spans")
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)

        orphans = [
            span for span in watcher.spans(spec.name, status="open")
            if span["worker_id"] == "victim"
        ]
        assert any(span["kind"] == "lease" for span in orphans)

        survivors = [
            spawn_worker(spec.name, db, worker_id=f"survivor-{i}",
                         batch=2, ttl=TTL, poll=0.05,
                         trace=True, traceparent=traceparent)
            for i in (1, 2)
        ]
        stats = coordinator.run(
            timeout=180,
            stop=lambda: all(p.poll() is not None for p in survivors),
        )
    finally:
        for proc in [victim, *survivors]:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    assert stats.complete

    with CampaignStore(db) as store:
        spans = store.spans(spec.name)
        by_id = {span["span_id"]: span for span in spans}

        # Invariant: no span left open, however the process died.
        assert store.span_counts(spec.name).get("open", 0) == 0

        # The victim's orphaned lease spans were closed `aborted` --
        # a worker death made visible in the timeline.
        victim_leases = [s for s in spans if s["worker_id"] == "victim"
                         and s["kind"] == "lease"]
        assert victim_leases
        assert any(s["status"] == "aborted" for s in victim_leases)
        # Its session span was swept at settle, not left dangling.
        (session,) = [s for s in spans if s["worker_id"] == "victim"
                      and s["kind"] == "worker"]
        assert session["status"] == "aborted"

        # Every span -- victim's, survivors', coordinator's -- shares
        # the coordinator's trace.
        assert {span["trace_id"] for span in spans} == {
            traceparent.split("-")[1]
        }

        # Parenting survived the kill: run -> lease -> worker -> root.
        (root,) = [s for s in spans if s["kind"] == "root"]
        assert root["status"] == "ok"
        for span in spans:
            if span["kind"] == "run":
                assert by_id[span["parent_id"]]["kind"] == "lease"
            elif span["kind"] in ("lease", "renew"):
                assert by_id[span["parent_id"]]["kind"] == "worker"
            elif span["kind"] in ("worker", "submit"):
                assert span["parent_id"] == root["span_id"]

        # The victim's fsynced last words survived the SIGKILL.
        log_path = campaign_log_path(db, spec.name, "victim")
        assert os.path.exists(log_path)
        merged = read_campaign_logs(os.path.dirname(log_path))
        victim_events = [r["event"] for r in merged
                        if r["worker_id"] == "victim"]
        assert "worker_started" in victim_events
        assert "worker_finished" not in victim_events  # it never settled
