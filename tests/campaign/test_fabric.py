"""Distributed campaign fabric: workers, coordinator, CLI wiring."""

import json
import subprocess
import sys
import threading

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    Coordinator,
    Worker,
    run_campaign,
)
from repro.campaign.fabric import default_worker_id
from repro.campaign.monitor import render_status, render_workers
from repro.campaign.runner import point_candidates
from repro.obs.metrics import parse_prometheus_text


SPEC_DICT = {
    "name": "fab",
    "base": {"radix": 4, "warmup": 50, "measure": 150,
             "drain": 1000, "message_length": 8},
    "axes": {"routing": ["cr", "dor"], "load": [0.1, 0.15]},
    "replications": 1,
}


@pytest.fixture
def spec():
    return CampaignSpec.from_dict(SPEC_DICT)


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "c.sqlite")


def run_worker(spec, db, **kwargs):
    worker = Worker(spec.name, db, **kwargs)
    worker.run()
    return worker


class TestSpecRoundTrip:
    def test_stored_spec_preserves_point_ids_and_hashes(self, spec, db):
        """Regression: spec JSON must round-trip through the store with
        axis order intact — fabric workers rebuild the grid from it, and
        a reordered round-trip would shard a different campaign than the
        coordinator registered."""
        with CampaignStore(db) as store:
            store.register(spec)
            loaded = store.spec(spec.name)
        assert point_candidates(list(loaded.points())) == \
            point_candidates(list(spec.points()))


class TestWorker:
    def test_unregistered_campaign_raises(self, db):
        with pytest.raises(LookupError, match="not registered"):
            Worker("ghost", db).run()

    def test_single_worker_completes_campaign(self, spec, db):
        with CampaignStore(db) as store:
            store.register(spec)
        worker = run_worker(spec, db, worker_id="w1", batch=2, poll=0.05)
        assert worker.stats.complete
        assert worker.stats.ran == 4
        assert worker.stats.failed == 0
        with CampaignStore(db) as store:
            assert store.summary(spec.name)["ok"] == 4
            (row,) = store.workers(spec.name)
            assert row["worker_id"] == "w1"
            assert row["state"] == "finished"
            assert row["done"] == 4
            assert store.leases(spec.name) == []

    def test_single_worker_rows_identical_to_run_campaign(
        self, spec, tmp_path
    ):
        """The acceptance bar: fabric sharding must not change results.

        A one-worker fabric run and the classic ``run_campaign`` must
        journal identical rows (ids, status, provenance, metrics) for
        the same spec — only wall time and timestamps may differ.
        """
        volatile = ("wall_time", "created_at", "worker_id")
        with CampaignStore(str(tmp_path / "classic.sqlite")) as store:
            stats = run_campaign(spec, store)
            assert stats.complete
            classic = {r["point_id"]: {k: v for k, v in r.items()
                                       if k not in volatile}
                       for r in store.rows(spec.name)}
        db = str(tmp_path / "fabric.sqlite")
        with CampaignStore(db) as store:
            store.register(spec)
        run_worker(spec, db, worker_id="w1", batch=2, poll=0.05)
        with CampaignStore(db) as store:
            fabric = {r["point_id"]: {k: v for k, v in r.items()
                                      if k not in volatile}
                      for r in store.rows(spec.name)}
        assert fabric == classic

    def test_two_inprocess_workers_split_the_grid(self, spec, db):
        with CampaignStore(db) as store:
            store.register(spec)
        workers = [Worker(spec.name, db, worker_id=f"w{i}", batch=1,
                          poll=0.02) for i in (1, 2)]
        threads = [threading.Thread(target=w.run) for w in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert all(w.stats.complete for w in workers)
        assert sum(w.stats.ran for w in workers) == 4
        with CampaignStore(db) as store:
            assert store.summary(spec.name)["ok"] == 4

    def test_resume_skips_stored_points(self, spec, db):
        with CampaignStore(db) as store:
            run_campaign(spec, store)
        worker = run_worker(spec, db, worker_id="w1")
        assert worker.stats.complete
        assert worker.stats.ran == 0  # everything already settled

    def test_default_worker_id_embeds_pid(self):
        assert default_worker_id().endswith(str(__import__("os").getpid()))


class TestCoordinator:
    def test_aggregates_to_completion(self, spec, db, tmp_path):
        heartbeat = str(tmp_path / "fab.status.json")
        store = CampaignStore(db)
        coordinator = Coordinator(spec, store, heartbeat_path=heartbeat,
                                  interval=0.05)
        worker = Worker(spec.name, db, worker_id="w1", batch=2, poll=0.05)
        thread = threading.Thread(target=worker.run)
        thread.start()
        stats = coordinator.run(timeout=120)
        thread.join(timeout=30)
        store.close()
        assert stats.complete
        assert (stats.ok, stats.failed, stats.total) == (4, 0, 4)
        assert stats.workers_seen == 1
        with open(heartbeat) as handle:
            status = json.load(handle)
        assert status["state"] == "finished"
        assert status["done"] == status["total"] == 4
        assert status["kind"] == "fabric"
        (row,) = status["workers"]
        assert row["worker_id"] == "w1"
        assert status["fabric"]["reclaims"] == 0

    def test_publishes_fabric_gauges(self, spec, db):
        store = CampaignStore(db)
        coordinator = Coordinator(spec, store, heartbeat_path=None)
        run_worker(spec, db, worker_id="w1", batch=4)
        coordinator.poll()
        families = parse_prometheus_text(
            coordinator.registry.prometheus_text())
        store.close()
        assert families["cr_fabric_points_total"]["samples"][
            "cr_fabric_points_total"] == 4
        assert families["cr_fabric_points_done"]["samples"][
            "cr_fabric_points_done"] == 4
        assert families["cr_fabric_workers_seen"]["samples"][
            "cr_fabric_workers_seen"] == 1
        assert "cr_fabric_lease_reclaims_total" in families
        assert "cr_fabric_leases_held" in families
        (info,) = [k for k in families["cr_fabric_build_info"]["samples"]]
        assert 'schema="5"' in info

    def test_survives_restart_mid_campaign(self, spec, db):
        """Coordinator loss never stalls the fabric: a fresh coordinator
        resumes aggregating the same store."""
        store = CampaignStore(db)
        first = Coordinator(spec, store, heartbeat_path=None)
        first.poll()
        del first  # coordinator "crash"
        run_worker(spec, db, worker_id="w1", batch=4)
        second = Coordinator(spec, store, heartbeat_path=None)
        status = second.poll()
        store.close()
        assert status["done"] == status["total"] == 4


class TestWorkersPane:
    def test_render_workers_lines(self):
        status = {
            "workers": [
                {"worker_id": "w1", "state": "live", "done": 3,
                 "failed": 1, "leases": 2, "reclaims": 0,
                 "last_seen_age": 0.5},
                {"worker_id": "w2", "state": "dead", "done": 0,
                 "failed": 0, "leases": 1, "reclaims": 0,
                 "last_seen_age": 120.0},
            ],
            "fabric": {"live_workers": 1, "reclaims": 2},
        }
        lines = render_workers(status)
        assert lines[0] == "  workers: 2 (1 live)   lease reclaims: 2"
        assert lines[1].startswith("   + w1")
        assert "done 3 (1 failed)" in lines[1]
        assert lines[2].startswith("   ! w2")
        assert "[dead" in lines[2]

    def test_render_status_includes_pane_only_for_fabric(self):
        base = {"name": "x", "state": "running", "done": 1, "total": 2,
                "updated_at": __import__("time").time()}
        assert "workers:" not in render_status(dict(base))
        fabric = dict(base, workers=[
            {"worker_id": "w1", "state": "live", "done": 1,
             "failed": 0, "leases": 0, "reclaims": 0,
             "last_seen_age": 0.1}])
        assert "workers: 1" in render_status(fabric)


class TestCli:
    def run_cli(self, *argv, cwd):
        import os

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p)
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            capture_output=True, text=True, timeout=300, cwd=str(cwd),
            env=env,
        )

    def test_worker_unregistered_campaign_exits_2(self, tmp_path):
        proc = self.run_cli(
            "campaign", "worker", "ghost", "--db", "c.sqlite",
            cwd=tmp_path,
        )
        assert proc.returncode == 2
        assert "not registered" in proc.stderr

    def test_worker_memory_db_exits_2(self, tmp_path):
        proc = self.run_cli(
            "campaign", "worker", "x", "--db", ":memory:", cwd=tmp_path,
        )
        assert proc.returncode == 2
        assert "on-disk" in proc.stderr

    def test_lease_flags_require_fabric(self, tmp_path):
        proc = self.run_cli(
            "campaign", "run", "fault-matrix", "--db", "c.sqlite",
            "--lease-ttl", "5", cwd=tmp_path,
        )
        assert proc.returncode == 2
        assert "--workers-fabric" in proc.stderr

    def test_fabric_run_memory_db_exits_2(self, tmp_path):
        proc = self.run_cli(
            "campaign", "run", "fault-matrix", "--db", ":memory:",
            "--workers-fabric", "2", cwd=tmp_path,
        )
        assert proc.returncode == 2
        assert "on-disk" in proc.stderr

    def test_registered_campaign_worker_completes(self, spec, tmp_path):
        db = str(tmp_path / "c.sqlite")
        with CampaignStore(db) as store:
            store.register(spec)
        proc = self.run_cli(
            "campaign", "worker", spec.name, "--db", db,
            "--worker-id", "cli-w1", "--poll", "0.05",
            cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        assert "campaign complete" in proc.stderr
        with CampaignStore(db) as store:
            assert store.summary(spec.name)["ok"] == 4
