"""Concurrent-writer hammer: many processes, one WAL-mode store file.

The fabric's whole design assumes N worker processes can journal into
one SQLite file without stepping on each other.  This test earns that
assumption: 4 real processes fire 500 mixed operations each
(``record_success`` / ``record_failure`` writes interleaved with
``completed`` reads) at a single store.  WAL mode plus
``busy_timeout`` plus BEGIN IMMEDIATE transactions must absorb every
collision — no ``database is locked`` may escape, and the final table
must hold exactly one row per distinct point with a valid status.
"""

import multiprocessing
import sys
import traceback

from repro.campaign import CampaignSpec, CampaignStore

PROCESSES = 4
OPS = 500

SPEC_DICT = {
    "name": "hammer",
    "base": {"radix": 4, "warmup": 10, "measure": 10,
             "drain": 100, "message_length": 8},
    "axes": {"load": [0.1, 0.15], "routing": ["cr", "dor"]},
    "replications": 5,
}


def hammer(path, rank, errors):
    """One writer process: OPS mixed store operations, round-robin."""
    try:
        spec = CampaignSpec.from_dict(SPEC_DICT)
        points = list(spec.points())
        with CampaignStore(path) as store:
            for i in range(OPS):
                point = points[(rank + i) % len(points)]
                if i % 7 == 3:
                    # Mixed in: the resume-path read every run performs.
                    store.completed("hammer")
                elif i % 3 == 0:
                    store.record_failure(
                        "hammer", point, f"boom from {rank}", 0.0,
                        attempts=1,
                    )
                else:
                    store.record_success(
                        "hammer", point,
                        {"latency_mean": float(rank * OPS + i)}, 0.0,
                        attempts=1,
                    )
    except BaseException:
        errors.put((rank, traceback.format_exc()))
        sys.exit(1)


def test_four_processes_hammer_one_store(tmp_path):
    path = str(tmp_path / "hammer.sqlite")
    # Create the schema up front so children skip DDL races.
    with CampaignStore(path) as store:
        store.register(CampaignSpec.from_dict(SPEC_DICT))

    ctx = multiprocessing.get_context()
    errors = ctx.Queue()
    procs = [
        ctx.Process(target=hammer, args=(path, rank, errors))
        for rank in range(PROCESSES)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=600)

    escaped = []
    while not errors.empty():
        escaped.append(errors.get())
    assert not escaped, (
        "store operations raised under contention (first shown):\n"
        + escaped[0][1]
    )
    assert all(proc.exitcode == 0 for proc in procs), (
        [proc.exitcode for proc in procs]
    )

    spec = CampaignSpec.from_dict(SPEC_DICT)
    expected_ids = {point.point_id for point in spec.points()}
    with CampaignStore(path) as store:
        rows = store.rows("hammer")
        # Exact final count: one row per distinct point, no phantom or
        # duplicate rows from lost transactions.
        assert len(rows) == len(expected_ids) == 20
        assert {row["point_id"] for row in rows} == expected_ids
        assert {row["status"] for row in rows} <= {"ok", "failed"}
        summary = store.summary("hammer")
        assert summary["ok"] + summary["failed"] == len(expected_ids)
