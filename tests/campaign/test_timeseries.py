"""Interval samples in the campaign store, runner, and report."""

import pytest

from repro.campaign import CampaignSpec, CampaignStore, run_campaign
from repro.campaign.report import campaign_markdown, saturation_onset


def sample(index, start, end, latency=10.0, occupancy=5, kills=0):
    return {
        "index": index, "start": start, "end": end,
        "injected_flits": 100, "delivered_flits": 90,
        "created_messages": 10, "delivered_messages": 9,
        "kills": kills, "accepted_load": 0.1, "throughput": 0.09,
        "kill_rate": 0.0, "latency_mean": latency, "latency_p99": latency,
        "occupancy": occupancy,
    }


@pytest.fixture
def spec():
    return CampaignSpec.from_dict({
        "name": "ts",
        "base": {"radix": 4, "warmup": 50, "measure": 200,
                 "drain": 2000, "message_length": 8,
                 "sample_interval": 100},
        "axes": {"routing": ["cr"], "load": [0.1]},
    })


@pytest.fixture
def store(tmp_path):
    with CampaignStore(str(tmp_path / "c.sqlite")) as s:
        yield s


class TestStoreRoundTrip:
    def test_record_and_read_back_in_order(self, store, spec):
        point = next(iter(spec.points()))
        rows = [sample(0, 0, 100), sample(1, 100, 200)]
        assert store.record_timeseries("ts", point, rows) == 2
        series = store.timeseries("ts")
        assert series == {point.point_id: rows}

    def test_rerecord_replaces_rather_than_mixes(self, store, spec):
        point = next(iter(spec.points()))
        store.record_timeseries("ts", point, [
            sample(0, 0, 100), sample(1, 100, 200), sample(2, 200, 300),
        ])
        fresh = [sample(0, 0, 100, latency=99.0)]
        store.record_timeseries("ts", point, fresh)
        assert store.timeseries("ts")[point.point_id] == fresh

    def test_point_filter(self, store, spec):
        point = next(iter(spec.points()))
        store.record_timeseries("ts", point, [sample(0, 0, 100)])
        assert store.timeseries("ts", point_id="missing") == {}
        assert point.point_id in store.timeseries(
            "ts", point_id=point.point_id
        )

    def test_survives_reopen(self, tmp_path, spec):
        path = str(tmp_path / "c.sqlite")
        point = next(iter(spec.points()))
        with CampaignStore(path) as store:
            store.record_timeseries("ts", point, [sample(0, 0, 100)])
        with CampaignStore(path) as store:
            assert len(store.timeseries("ts")[point.point_id]) == 1


class TestRunnerJournaling:
    def test_sampled_campaign_lands_series_in_the_store(self, store, spec):
        stats = run_campaign(spec, store, workers=1, cache=None)
        assert stats.complete
        series = store.timeseries("ts")
        assert len(series) == 1
        (samples,) = series.values()
        assert samples, "sampled run journaled no intervals"
        assert samples[0]["start"] == 0
        assert [s["index"] for s in samples] == list(range(len(samples)))

    def test_unsampled_campaign_stores_no_series(self, store):
        spec = CampaignSpec.from_dict({
            "name": "flat",
            "base": {"radix": 4, "warmup": 50, "measure": 200,
                     "drain": 2000, "message_length": 8},
            "axes": {"routing": ["cr"], "load": [0.1]},
        })
        run_campaign(spec, store, workers=1, cache=None)
        assert store.timeseries("flat") == {}


class TestSaturationOnset:
    def test_detects_the_first_breakout_interval(self):
        series = [
            sample(0, 0, 100, latency=10.0),
            sample(1, 100, 200, latency=12.0),
            sample(2, 200, 300, latency=25.0),
            sample(3, 300, 400, latency=40.0),
        ]
        assert saturation_onset(series) == 300

    def test_flat_run_never_saturates(self):
        series = [sample(i, i * 100, (i + 1) * 100, latency=10.0)
                  for i in range(4)]
        assert saturation_onset(series) is None

    def test_all_zero_metric_returns_none(self):
        series = [sample(0, 0, 100, latency=0.0)]
        assert saturation_onset(series) is None

    def test_zero_intervals_do_not_poison_the_baseline(self):
        # A warmup interval with no deliveries reports latency 0; the
        # baseline must come from the positive samples only.
        series = [
            sample(0, 0, 100, latency=0.0),
            sample(1, 100, 200, latency=10.0),
            sample(2, 200, 300, latency=30.0),
        ]
        assert saturation_onset(series) == 300

    def test_custom_metric_and_factor(self):
        series = [
            sample(0, 0, 100, occupancy=4),
            sample(1, 100, 200, occupancy=13),
        ]
        assert saturation_onset(
            series, metric="occupancy", factor=3.0
        ) == 200


class TestCampaignMarkdownTimeSeries:
    def test_report_section_appears_with_series(self, store, spec):
        run_campaign(spec, store, workers=1, cache=None)
        text = campaign_markdown(store, "ts")
        assert "## Time series" in text
        assert "saturation onset" in text
        (point_id,) = store.timeseries("ts")
        assert point_id in text

    def test_report_omits_section_without_series(self, store):
        spec = CampaignSpec.from_dict({
            "name": "flat",
            "base": {"radix": 4, "warmup": 50, "measure": 200,
                     "drain": 2000, "message_length": 8},
            "axes": {"routing": ["cr"], "load": [0.1]},
        })
        run_campaign(spec, store, workers=1, cache=None)
        assert "## Time series" not in campaign_markdown(store, "flat")
