"""Regression reports: aggregation, significance, provenance, rendering."""

import pytest

from repro import __version__
from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    campaign_markdown,
    compare_campaigns,
    comparison_to_csv,
    render_markdown,
)
from repro.sim.export import read_csv


def make_spec(name):
    return CampaignSpec.from_dict({
        "name": name,
        "base": {"radix": 4},
        "axes": {"routing": ["cr", "dor"], "load": [0.1]},
        "replications": 2,
    })


def seed_campaign(store, name, latency, throughput):
    """Store a synthetic campaign with controlled metric values."""
    spec = make_spec(name)
    store.register(spec)
    for point in spec.points():
        jitter = 0.01 * point.replication
        store.record_success(
            name, point,
            {"latency_mean": latency[point.scenario["routing"]] + jitter,
             "throughput": throughput + jitter / 100.0},
            wall_time=0.1,
        )
    return spec


@pytest.fixture
def store(tmp_path):
    with CampaignStore(str(tmp_path / "c.sqlite")) as s:
        yield s


class TestCompare:
    def test_detects_regression_and_noise(self, store):
        seed_campaign(store, "base", {"cr": 100.0, "dor": 50.0}, 0.3)
        # cr latency doubles (regression); dor unchanged (within noise)
        seed_campaign(store, "cand", {"cr": 200.0, "dor": 50.0}, 0.3)
        rows = compare_campaigns(store, "base", "cand",
                                 metrics=["latency_mean"])
        by_scenario = {r["scenario"]: r for r in rows}
        cr = by_scenario["load=0.1, routing=cr"]
        dor = by_scenario["load=0.1, routing=dor"]
        assert cr["status"] == "regressed" and cr["significant"]
        assert dor["status"] == "~" and not dor["significant"]
        assert cr["delta_pct"] == pytest.approx(100.0, abs=1.0)

    def test_improvement_direction_per_metric(self, store):
        # higher throughput is an improvement; lower latency too
        seed_campaign(store, "base", {"cr": 100.0, "dor": 100.0}, 0.1)
        seed_campaign(store, "cand", {"cr": 50.0, "dor": 100.0}, 0.4)
        rows = compare_campaigns(
            store, "base", "cand", metrics=["latency_mean", "throughput"]
        )
        verdicts = {(r["scenario"], r["metric"]): r["status"]
                    for r in rows}
        assert verdicts[("load=0.1, routing=cr", "latency_mean")] \
            == "improved"
        assert verdicts[("load=0.1, routing=cr", "throughput")] \
            == "improved"

    def test_provenance_on_every_row(self, store):
        seed_campaign(store, "base", {"cr": 1.0, "dor": 1.0}, 0.1)
        seed_campaign(store, "cand", {"cr": 1.0, "dor": 1.0}, 0.1)
        rows = compare_campaigns(store, "base", "cand")
        assert rows
        for row in rows:
            assert row["baseline_version"] == __version__
            assert row["candidate_version"] == __version__
            # two replications -> two distinct config hashes, joined
            assert len(row["baseline_hashes"].split("+")) == 2
            for blob in (row["baseline_hashes"], row["candidate_hashes"]):
                for item in blob.split("+"):
                    assert len(item) == 64

    def test_one_sided_scenarios_reported(self, store):
        seed_campaign(store, "base", {"cr": 1.0, "dor": 1.0}, 0.1)
        extra_spec = CampaignSpec.from_dict({
            "name": "cand",
            "base": {"radix": 4},
            "axes": {"routing": ["cr"], "load": [0.1, 0.9]},
        })
        store.register(extra_spec)
        for point in extra_spec.points():
            store.record_success("cand", point, {"latency_mean": 1.0},
                                 0.1)
        rows = compare_campaigns(store, "base", "cand",
                                 metrics=["latency_mean"])
        statuses = {r["scenario"]: r["status"] for r in rows
                    if not r.get("metric")}
        assert statuses["load=0.9, routing=cr"] == "candidate-only"
        assert statuses["load=0.1, routing=dor"] == "baseline-only"


class TestRendering:
    def test_markdown_includes_provenance_and_verdicts(self, store):
        seed_campaign(store, "base", {"cr": 100.0, "dor": 50.0}, 0.3)
        seed_campaign(store, "cand", {"cr": 200.0, "dor": 50.0}, 0.3)
        rows = compare_campaigns(store, "base", "cand",
                                 metrics=["latency_mean"])
        text = render_markdown(rows, "base", "cand")
        assert "| scenario | metric |" in text
        assert "regressed" in text
        assert f"@{__version__}" in text
        assert "1 regression(s)" in text

    def test_csv_round_trip(self, store, tmp_path):
        seed_campaign(store, "base", {"cr": 100.0, "dor": 50.0}, 0.3)
        seed_campaign(store, "cand", {"cr": 200.0, "dor": 50.0}, 0.3)
        rows = compare_campaigns(store, "base", "cand",
                                 metrics=["latency_mean"])
        path = str(tmp_path / "sub" / "cmp.csv")  # parent auto-created
        count = comparison_to_csv(rows, path)
        back = read_csv(path)
        assert len(back) == count == 2
        assert {"scenario", "metric", "baseline_mean", "candidate_mean",
                "baseline_hashes", "candidate_version"} <= set(back[0])

    def test_single_campaign_markdown(self, store):
        spec = seed_campaign(store, "solo", {"cr": 10.0, "dor": 5.0}, 0.2)
        store.record_failure(
            "solo",
            next(iter(spec.points())).__class__(
                point_id="routing=cr/load=0.9/rep=0",
                grid="",
                scenario={"routing": "cr", "load": 0.9},
                replication=0,
                config=next(iter(spec.points())).config,
            ),
            "RuntimeError('x')", 0.1, attempts=3,
        )
        text = campaign_markdown(store, "solo",
                                 metrics=["latency_mean"])
        assert "# Campaign `solo`" in text
        assert "## Failed points" in text
        assert "attempts=3" in text

    def test_markdown_reports_wall_time_per_point(self, store):
        seed_campaign(store, "timed", {"cr": 10.0, "dor": 5.0}, 0.2)
        text = campaign_markdown(store, "timed",
                                 metrics=["latency_mean"])
        assert "wall s/point" in text
        # Every point was stored with wall_time=0.1.
        assert "| 0.1 |" in text
