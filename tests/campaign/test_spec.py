"""CampaignSpec: dict round-trip, grid expansion, derived seeds."""

import pytest

from repro.campaign import CampaignSpec, Grid, get_campaign
from repro.campaign.spec import decode_field
from repro.core.backoff import ExponentialBackoff, StaticGap
from repro.core.timeout import FixedTimeout


def tiny_dict(**overrides):
    data = {
        "name": "t",
        "base": {"radix": 4, "warmup": 50, "measure": 200,
                 "message_length": 8},
        "axes": {"routing": ["cr", "dor"], "load": [0.1, 0.2]},
        "replications": 2,
    }
    data.update(overrides)
    return data


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = CampaignSpec.from_dict(tiny_dict())
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()
        assert again == spec

    def test_multi_grid_round_trip(self):
        spec = CampaignSpec.from_dict({
            "name": "m",
            "grids": {
                "a": {"base": {"radix": 4}, "axes": {"load": [0.1]}},
                "b": {"axes": {"load": [0.1, 0.2]}},
            },
        })
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert spec.size == 3

    def test_json_compatible(self):
        import json

        spec = CampaignSpec.from_dict(tiny_dict())
        assert CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec


class TestValidation:
    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown SimConfig field"):
            CampaignSpec.from_dict(tiny_dict(axes={"bananas": [1]}))

    def test_seed_axis_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            CampaignSpec.from_dict(tiny_dict(axes={"seed": [1, 2]}))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            CampaignSpec.from_dict(tiny_dict(axes={"load": []}))

    def test_grids_and_axes_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            CampaignSpec.from_dict(
                tiny_dict(grids={"a": {"axes": {"load": [0.1]}}})
            )

    def test_needs_replications(self):
        with pytest.raises(ValueError, match="replications"):
            CampaignSpec.from_dict(tiny_dict(replications=0))

    def test_duplicate_grid_labels(self):
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(
                name="d",
                grids=(Grid("x", axes={"load": [0.1]}),
                       Grid("x", axes={"load": [0.2]})),
            )


class TestExpansion:
    def test_size_and_point_count(self):
        spec = CampaignSpec.from_dict(tiny_dict())
        points = list(spec.points())
        assert spec.size == len(points) == 2 * 2 * 2

    def test_point_ids_stable_and_unique(self):
        spec = CampaignSpec.from_dict(tiny_dict())
        ids = [p.point_id for p in spec.points()]
        assert len(set(ids)) == len(ids)
        assert ids == [p.point_id for p in spec.points()]
        assert ids[0] == "routing=cr/load=0.1/rep=0"

    def test_derived_seeds_per_replication(self):
        spec = CampaignSpec.from_dict(tiny_dict(seed=100))
        by_rep = {}
        for p in spec.points():
            by_rep.setdefault(p.replication, set()).add(p.config.seed)
        # one seed per replication index, shared across scenarios
        assert by_rep == {0: {100}, 1: {101}}

    def test_base_and_axes_land_in_config(self):
        spec = CampaignSpec.from_dict(tiny_dict())
        point = next(iter(spec.points()))
        assert point.config.radix == 4
        assert point.config.routing == "cr"
        assert point.config.load == 0.1

    def test_point_lookup(self):
        spec = CampaignSpec.from_dict(tiny_dict())
        pid = "routing=dor/load=0.2/rep=1"
        point = spec.point(pid)
        assert point is not None and point.point_id == pid
        assert spec.point("nope") is None


class TestPolicyDecoding:
    def test_timeout_encodings(self):
        assert isinstance(decode_field("timeout", "fixed:32"),
                          FixedTimeout)
        decoded = decode_field("timeout", "fixed:32")
        assert decoded.cycles == 32

    def test_backoff_encodings(self):
        assert isinstance(decode_field("backoff", "static:16"), StaticGap)
        assert isinstance(decode_field("backoff", "exponential"),
                          ExponentialBackoff)
        assert decode_field("backoff", "exponential:8").slot_cycles == 8

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError, match="unknown backoff"):
            decode_field("backoff", "banana:1")

    def test_non_policy_fields_pass_through(self):
        assert decode_field("pattern", "uniform") == "uniform"

    def test_policies_reach_configs(self):
        spec = CampaignSpec.from_dict({
            "name": "p",
            "base": {"routing": "cr", "timeout": "fixed:32"},
            "axes": {"backoff": ["static:4", "exponential"]},
        })
        configs = [p.config for p in spec.points()]
        assert all(isinstance(c.timeout, FixedTimeout) for c in configs)
        assert isinstance(configs[0].backoff, StaticGap)
        assert isinstance(configs[1].backoff, ExponentialBackoff)


class TestBuiltins:
    def test_builtin_campaigns_expand_and_build(self):
        for name in ("fault-matrix", "paper-core"):
            spec = get_campaign(name)
            points = list(spec.points())
            assert len(points) == spec.size > 0
            # every point's config must actually build an engine
            points[0].config.build()

    def test_unknown_builtin(self):
        with pytest.raises(KeyError, match="unknown campaign"):
            get_campaign("nope")
