"""CampaignStore: provenance recording, resume queries, reopening."""

import sqlite3

import pytest

from repro import __version__
from repro.campaign import CampaignSpec, CampaignStore
from repro.campaign.store import STORE_SCHEMA_VERSION


@pytest.fixture
def spec():
    return CampaignSpec.from_dict({
        "name": "s",
        "base": {"radix": 4, "warmup": 50, "measure": 200,
                 "message_length": 8},
        "axes": {"routing": ["cr", "dor"], "load": [0.1]},
        "replications": 2,
    })


@pytest.fixture
def store(tmp_path):
    with CampaignStore(str(tmp_path / "c.sqlite")) as s:
        yield s


class TestSpecRegistry:
    def test_register_and_read_back(self, store, spec):
        store.register(spec)
        assert store.spec("s") == spec
        assert store.spec("missing") is None

    def test_campaign_listing_counts(self, store, spec):
        store.register(spec)
        points = list(spec.points())
        store.record_success("s", points[0], {"latency_mean": 1.0}, 0.1)
        store.record_failure("s", points[1], "boom", 0.1)
        (entry,) = store.campaigns()
        assert (entry["name"], entry["ok"], entry["failed"]) == ("s", 1, 1)

    def test_delete_campaign(self, store, spec):
        store.register(spec)
        store.record_success(
            "s", next(iter(spec.points())), {"latency_mean": 1.0}, 0.1
        )
        assert store.delete_campaign("s") == 1
        assert store.campaigns() == []


class TestProvenance:
    def test_success_row_carries_provenance(self, store, spec):
        point = next(iter(spec.points()))
        store.record_success("s", point, {"latency_mean": 2.5}, 0.25,
                             attempts=3)
        (row,) = store.rows("s")
        assert row["status"] == "ok"
        assert row["repro_version"] == __version__
        assert row["schema_version"] == STORE_SCHEMA_VERSION
        assert row["config_hash"] and len(row["config_hash"]) == 64
        assert row["attempts"] == 3
        assert row["wall_time"] == 0.25
        assert row["created_at"] > 0
        # scenario axes and metrics are flattened into the row
        assert row["routing"] == "cr"
        assert row["load"] == 0.1
        assert row["latency_mean"] == 2.5

    def test_failure_row(self, store, spec):
        point = next(iter(spec.points()))
        store.record_failure("s", point, "ValueError('x')", 0.1)
        (row,) = store.rows("s", status="failed")
        assert row["error"] == "ValueError('x')"
        assert store.rows("s", status="ok") == []

    def test_points_keep_structure(self, store, spec):
        point = next(iter(spec.points()))
        store.record_success("s", point, {"latency_mean": 2.5}, 0.1)
        (entry,) = store.points("s")
        assert entry["scenario"] == {"routing": "cr", "load": 0.1}
        assert entry["report"] == {"latency_mean": 2.5}


class TestResumeQueries:
    def test_completed_and_is_done(self, store, spec):
        points = list(spec.points())
        store.record_success("s", points[0], {"latency_mean": 1.0}, 0.1)
        store.record_failure("s", points[1], "boom", 0.1)
        done = store.completed("s")
        assert list(done) == [points[0].point_id]
        assert store.is_done("s", points[0])
        assert not store.is_done("s", points[1])

    def test_changed_config_invalidates_done(self, store, spec):
        point = next(iter(spec.points()))
        store.record_success("s", point, {"latency_mean": 1.0}, 0.1)
        changed = point.__class__(
            point_id=point.point_id,
            grid=point.grid,
            scenario=point.scenario,
            replication=point.replication,
            config=point.config.with_(buffer_depth=9),
        )
        assert not store.is_done("s", changed)

    def test_rewrite_replaces_row(self, store, spec):
        point = next(iter(spec.points()))
        store.record_failure("s", point, "boom", 0.1, attempts=1)
        store.record_success("s", point, {"latency_mean": 1.0}, 0.2,
                             attempts=2)
        (row,) = store.rows("s")
        assert row["status"] == "ok" and row["attempts"] == 2


class TestDurability:
    def test_survives_reopen(self, tmp_path, spec):
        path = str(tmp_path / "c.sqlite")
        with CampaignStore(path) as store:
            store.register(spec)
            store.record_success(
                "s", next(iter(spec.points())), {"latency_mean": 1.0}, 0.1
            )
        with CampaignStore(path) as store:
            assert store.summary("s")["ok"] == 1
            assert store.spec("s") == spec

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "c.sqlite")
        with CampaignStore(path):
            pass
        assert sqlite3.connect(path).execute(
            "SELECT COUNT(*) FROM campaigns"
        ).fetchone()[0] == 0

    def test_summary_empty_campaign(self, store):
        summary = store.summary("ghost")
        assert summary["ok"] == 0 and summary["failed"] == 0


def span_row(span_id, kind="run", status="ok", worker_id="w1",
             point_id=None, trace_id="t" * 32, parent_id=None,
             start_ts=1.0, end_ts=2.0, **attrs):
    return {
        "trace_id": trace_id, "span_id": span_id,
        "parent_id": parent_id, "name": f"{kind} {span_id}",
        "kind": kind, "worker_id": worker_id, "point_id": point_id,
        "start_ts": start_ts,
        "end_ts": None if status == "open" else end_ts,
        "status": status, "attrs": attrs,
    }


class TestSpanJournal:
    def test_record_and_read_back(self, store, spec):
        store.register(spec)
        store.record_spans("s", [
            span_row("a" * 16, kind="root", status="open", end_ts=None,
                     worker_id="coordinator", executor="fabric"),
            span_row("b" * 16, kind="run", point_id="p1",
                     parent_id="a" * 16, start_ts=1.5, attempt=1),
        ])
        spans = store.spans("s")
        assert [s["span_id"] for s in spans] == ["a" * 16, "b" * 16]
        assert spans[0]["attrs"] == {"executor": "fabric"}
        assert spans[1]["parent_id"] == "a" * 16
        assert store.span_counts("s") == {"open": 1, "ok": 1}
        assert store.spans("s", point_id="p1")[0]["span_id"] == "b" * 16
        assert store.spans("s", status="open")[0]["kind"] == "root"

    def test_open_spans_update_closed_spans_are_immutable(self, store, spec):
        store.register(spec)
        store.record_spans("s", [span_row("a" * 16, kind="lease",
                                          status="open", end_ts=None)])
        # re-journaling an open span refreshes it (lease renewal)
        store.record_spans("s", [span_row("a" * 16, kind="lease",
                                          status="ok", end_ts=9.0)])
        (span,) = store.spans("s")
        assert span["status"] == "ok" and span["end_ts"] == 9.0
        # ... but a late write against the now-closed span is dropped:
        # a zombie worker cannot flip an aborted/closed span back open
        store.record_spans("s", [span_row("a" * 16, kind="lease",
                                          status="open", end_ts=None)])
        (span,) = store.spans("s")
        assert span["status"] == "ok" and span["end_ts"] == 9.0

    def test_fenced_result_write_discards_its_spans(self, store, spec):
        store.register(spec)
        points = list(spec.points())
        (lease,) = store.acquire_leases(
            "s", "w1", [(points[0].point_id, None)], 1, ttl=60.0,
            now=100.0,
        )
        # the write fences on (worker, attempt); a stale fence loses
        wrote = store.record_success(
            "s", points[0], {"latency_mean": 1.0}, 0.1,
            fence=("ghost", lease.attempt),
            spans=[span_row("a" * 16, point_id=points[0].point_id)],
        )
        assert not wrote
        assert store.spans("s") == []
        # the current owner's write lands, spans and all
        wrote = store.record_success(
            "s", points[0], {"latency_mean": 1.0}, 0.1,
            fence=("w1", lease.attempt),
            spans=[span_row("a" * 16, point_id=points[0].point_id)],
        )
        assert wrote
        assert len(store.spans("s")) == 1

    def test_reclaim_closes_the_dead_owners_open_spans(self, store, spec):
        store.register(spec)
        points = list(spec.points())
        candidates = [(points[0].point_id, None)]
        (lease,) = store.acquire_leases("s", "dead", candidates, 1,
                                        ttl=10.0, now=100.0)
        store.record_spans("s", [
            span_row("a" * 16, kind="lease", status="open",
                     end_ts=None, worker_id="dead",
                     point_id=points[0].point_id),
            span_row("b" * 16, kind="run", status="open", end_ts=None,
                     worker_id="dead", point_id=points[0].point_id),
            span_row("c" * 16, kind="worker", status="open",
                     end_ts=None, worker_id="dead"),
        ])
        # past the TTL another worker takes over; the transfer closes
        # the dead owner's open spans *for that point* as aborted
        (taken,) = store.acquire_leases("s", "w2", candidates, 1,
                                        ttl=10.0, now=200.0)
        assert taken.reclaimed and taken.worker_id == "w2"
        by_id = {s["span_id"]: s for s in store.spans("s")}
        assert by_id["a" * 16]["status"] == "aborted"
        assert by_id["a" * 16]["end_ts"] == 200.0
        assert by_id["b" * 16]["status"] == "aborted"
        # the worker's session span is not point-scoped: untouched here
        assert by_id["c" * 16]["status"] == "open"

    def test_close_open_spans_sweep(self, store, spec):
        store.register(spec)
        store.record_spans("s", [
            span_row("a" * 16, kind="root", status="open", end_ts=None,
                     worker_id="coordinator"),
            span_row("b" * 16, kind="worker", status="open",
                     end_ts=None, worker_id="w1"),
            span_row("c" * 16, kind="run", status="ok"),
        ])
        assert store.close_open_spans("s", now=50.0) == 2
        assert store.span_counts("s") == {"aborted": 2, "ok": 1}
        assert store.close_open_spans("s") == 0

    def test_open_root_span_lookup(self, store, spec):
        store.register(spec)
        assert store.open_root_span("s") is None
        store.record_spans("s", [
            span_row("a" * 16, kind="root", status="open", end_ts=None,
                     worker_id="coordinator"),
        ])
        root = store.open_root_span("s")
        assert root["span_id"] == "a" * 16
        store.close_open_spans("s")
        assert store.open_root_span("s") is None

    def test_delete_campaign_covers_spans(self, store, spec):
        store.register(spec)
        store.record_spans("s", [span_row("a" * 16)])
        store.delete_campaign("s")
        assert store.spans("s") == []

    def test_heartbeat_carries_span_and_tallies(self, store, spec):
        store.register(spec)
        store.worker_heartbeat("s", "w1", span="run p1 aaaaaaaa",
                               spans=7, logs=12)
        (row,) = store.workers("s")
        assert row["span"] == "run p1 aaaaaaaa"
        assert row["spans"] == 7 and row["logs"] == 12


class TestSchemaMigration:
    def test_v4_workers_table_gains_span_columns(self, tmp_path):
        # A store created before schema v5 has a workers table without
        # span/spans/logs; CREATE TABLE IF NOT EXISTS will not add
        # them, so opening must migrate via ALTER TABLE.
        path = str(tmp_path / "old.sqlite")
        conn = sqlite3.connect(path)
        conn.execute("""
            CREATE TABLE workers (
                campaign   TEXT NOT NULL,
                worker_id  TEXT NOT NULL,
                pid        INTEGER,
                host       TEXT NOT NULL DEFAULT '',
                state      TEXT NOT NULL DEFAULT 'running',
                started_at REAL NOT NULL,
                last_seen  REAL NOT NULL,
                done       INTEGER NOT NULL DEFAULT 0,
                failed     INTEGER NOT NULL DEFAULT 0,
                leases     INTEGER NOT NULL DEFAULT 0,
                reclaims   INTEGER NOT NULL DEFAULT 0,
                PRIMARY KEY (campaign, worker_id)
            )
        """)
        conn.execute(
            "INSERT INTO workers (campaign, worker_id, started_at, "
            "last_seen) VALUES ('s', 'w1', 1.0, 2.0)"
        )
        conn.commit()
        conn.close()
        with CampaignStore(path) as store:
            (row,) = store.workers("s")
            assert row["span"] == "" and row["spans"] == 0
            assert row["logs"] == 0
            store.worker_heartbeat("s", "w1", span="x y", spans=1,
                                   logs=2)
            (row,) = store.workers("s")
            assert row["spans"] == 1
