"""CampaignStore: provenance recording, resume queries, reopening."""

import sqlite3

import pytest

from repro import __version__
from repro.campaign import CampaignSpec, CampaignStore
from repro.campaign.store import STORE_SCHEMA_VERSION


@pytest.fixture
def spec():
    return CampaignSpec.from_dict({
        "name": "s",
        "base": {"radix": 4, "warmup": 50, "measure": 200,
                 "message_length": 8},
        "axes": {"routing": ["cr", "dor"], "load": [0.1]},
        "replications": 2,
    })


@pytest.fixture
def store(tmp_path):
    with CampaignStore(str(tmp_path / "c.sqlite")) as s:
        yield s


class TestSpecRegistry:
    def test_register_and_read_back(self, store, spec):
        store.register(spec)
        assert store.spec("s") == spec
        assert store.spec("missing") is None

    def test_campaign_listing_counts(self, store, spec):
        store.register(spec)
        points = list(spec.points())
        store.record_success("s", points[0], {"latency_mean": 1.0}, 0.1)
        store.record_failure("s", points[1], "boom", 0.1)
        (entry,) = store.campaigns()
        assert (entry["name"], entry["ok"], entry["failed"]) == ("s", 1, 1)

    def test_delete_campaign(self, store, spec):
        store.register(spec)
        store.record_success(
            "s", next(iter(spec.points())), {"latency_mean": 1.0}, 0.1
        )
        assert store.delete_campaign("s") == 1
        assert store.campaigns() == []


class TestProvenance:
    def test_success_row_carries_provenance(self, store, spec):
        point = next(iter(spec.points()))
        store.record_success("s", point, {"latency_mean": 2.5}, 0.25,
                             attempts=3)
        (row,) = store.rows("s")
        assert row["status"] == "ok"
        assert row["repro_version"] == __version__
        assert row["schema_version"] == STORE_SCHEMA_VERSION
        assert row["config_hash"] and len(row["config_hash"]) == 64
        assert row["attempts"] == 3
        assert row["wall_time"] == 0.25
        assert row["created_at"] > 0
        # scenario axes and metrics are flattened into the row
        assert row["routing"] == "cr"
        assert row["load"] == 0.1
        assert row["latency_mean"] == 2.5

    def test_failure_row(self, store, spec):
        point = next(iter(spec.points()))
        store.record_failure("s", point, "ValueError('x')", 0.1)
        (row,) = store.rows("s", status="failed")
        assert row["error"] == "ValueError('x')"
        assert store.rows("s", status="ok") == []

    def test_points_keep_structure(self, store, spec):
        point = next(iter(spec.points()))
        store.record_success("s", point, {"latency_mean": 2.5}, 0.1)
        (entry,) = store.points("s")
        assert entry["scenario"] == {"routing": "cr", "load": 0.1}
        assert entry["report"] == {"latency_mean": 2.5}


class TestResumeQueries:
    def test_completed_and_is_done(self, store, spec):
        points = list(spec.points())
        store.record_success("s", points[0], {"latency_mean": 1.0}, 0.1)
        store.record_failure("s", points[1], "boom", 0.1)
        done = store.completed("s")
        assert list(done) == [points[0].point_id]
        assert store.is_done("s", points[0])
        assert not store.is_done("s", points[1])

    def test_changed_config_invalidates_done(self, store, spec):
        point = next(iter(spec.points()))
        store.record_success("s", point, {"latency_mean": 1.0}, 0.1)
        changed = point.__class__(
            point_id=point.point_id,
            grid=point.grid,
            scenario=point.scenario,
            replication=point.replication,
            config=point.config.with_(buffer_depth=9),
        )
        assert not store.is_done("s", changed)

    def test_rewrite_replaces_row(self, store, spec):
        point = next(iter(spec.points()))
        store.record_failure("s", point, "boom", 0.1, attempts=1)
        store.record_success("s", point, {"latency_mean": 1.0}, 0.2,
                             attempts=2)
        (row,) = store.rows("s")
        assert row["status"] == "ok" and row["attempts"] == 2


class TestDurability:
    def test_survives_reopen(self, tmp_path, spec):
        path = str(tmp_path / "c.sqlite")
        with CampaignStore(path) as store:
            store.register(spec)
            store.record_success(
                "s", next(iter(spec.points())), {"latency_mean": 1.0}, 0.1
            )
        with CampaignStore(path) as store:
            assert store.summary("s")["ok"] == 1
            assert store.spec("s") == spec

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "c.sqlite")
        with CampaignStore(path):
            pass
        assert sqlite3.connect(path).execute(
            "SELECT COUNT(*) FROM campaigns"
        ).fetchone()[0] == 0

    def test_summary_empty_campaign(self, store):
        summary = store.summary("ghost")
        assert summary["ok"] == 0 and summary["failed"] == 0
