"""The ``cr-sim campaign`` CLI: run/resume/status/report/list."""

import json

import pytest

import repro.campaign
import repro.experiments
from repro.cli import main as cli_main
from repro.experiments.common import Scale
from repro.sim import parallel

#: a scale small enough that the whole fault-matrix runs in seconds
TINY = Scale(name="tiny", radix=4, warmup=50, measure=150, drain=1000,
             message_length=8, loads=(0.1,))


@pytest.fixture
def tiny_builtin_scale(monkeypatch):
    monkeypatch.setattr(repro.experiments, "QUICK", TINY)
    return TINY


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "campaigns.sqlite")


def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps({
        "name": "from-file",
        "base": {"radix": 4, "warmup": 50, "measure": 150,
                 "drain": 1000, "message_length": 8},
        "axes": {"routing": ["cr", "dor"], "load": [0.1]},
    }))
    return str(path)


class TestWatch:
    def test_once_renders_finished_heartbeat(self, tmp_path, db, capsys):
        path = spec_file(tmp_path)
        assert cli_main(["campaign", "run", path, "--db", db]) == 0
        capsys.readouterr()
        assert cli_main(
            ["campaign", "watch", "from-file", "--db", db, "--once"]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign from-file [finished]" in out
        assert "2/2 (100%)" in out

    def test_watch_loop_exits_when_finished(self, tmp_path, db, capsys):
        path = spec_file(tmp_path)
        assert cli_main(["campaign", "run", path, "--db", db]) == 0
        capsys.readouterr()
        # Not --once: the loop sees state == finished and returns 0.
        assert cli_main(
            ["campaign", "watch", "from-file", "--db", db,
             "--interval", "0.01"]
        ) == 0
        assert "[finished]" in capsys.readouterr().out

    def test_missing_heartbeat_is_an_error(self, db, capsys):
        assert cli_main(
            ["campaign", "watch", "nothing-here", "--db", db, "--once"]
        ) == 2
        assert "no status file" in capsys.readouterr().err

    def test_svg_export(self, tmp_path, db, capsys):
        path = spec_file(tmp_path)
        assert cli_main(["campaign", "run", path, "--db", db]) == 0
        svg_path = tmp_path / "hb.svg"
        assert cli_main(
            ["campaign", "watch", "from-file", "--db", db, "--once",
             "--svg", str(svg_path)]
        ) == 0
        assert svg_path.read_text().startswith("<svg")

    def test_explicit_status_file(self, tmp_path, db, capsys):
        path = spec_file(tmp_path)
        assert cli_main(["campaign", "run", path, "--db", db]) == 0
        from repro.campaign import status_path

        assert cli_main(
            ["campaign", "watch", "whatever", "--db", ":memory:",
             "--once", "--status-file", status_path(db, "from-file")]
        ) == 0

    def test_in_memory_db_without_status_file_rejected(self, capsys):
        assert cli_main(
            ["campaign", "watch", "x", "--db", ":memory:", "--once"]
        ) == 2
        assert "--status-file" in capsys.readouterr().err


class TestList:
    def test_lists_builtins_with_sizes(self, capsys):
        assert cli_main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "fault-matrix" in out
        assert "paper-core" in out
        assert "description" in out


class TestRun:
    def test_spec_file_run_and_resume(self, tmp_path, db, capsys):
        path = spec_file(tmp_path)
        assert cli_main(["campaign", "run", path, "--db", db]) == 0
        first = capsys.readouterr()
        assert "2 point(s) run, 0 resumed" in first.out
        assert cli_main(["campaign", "run", path, "--db", db]) == 0
        second = capsys.readouterr()
        assert "0 point(s) run, 2 resumed" in second.out
        assert "already stored" in second.err

    def test_unknown_name_rejected(self, db, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["campaign", "run", "banana", "--db", db])
        assert exc.value.code == 2
        assert "neither a built-in" in capsys.readouterr().err

    def test_killed_and_restarted_fault_matrix_resumes(
        self, tiny_builtin_scale, db, monkeypatch, capsys
    ):
        """The acceptance scenario: interrupt mid-campaign, restart,
        verify completed points are not re-simulated."""
        real_run_campaign = repro.campaign.run_campaign
        interrupt_at = 3

        def interrupted(spec, store, progress=None, **kwargs):
            def tripwire(status):
                if progress is not None:
                    progress(status)
                if status.done >= interrupt_at:
                    raise KeyboardInterrupt

            return real_run_campaign(
                spec, store, progress=tripwire, **kwargs
            )

        interrupt_patch = pytest.MonkeyPatch()
        interrupt_patch.setattr(
            repro.campaign, "run_campaign", interrupted
        )
        try:
            with pytest.raises(KeyboardInterrupt):
                cli_main(["campaign", "run", "fault-matrix", "--db", db])
        finally:
            interrupt_patch.undo()

        # restart: the interrupted points resume, nothing re-runs
        simulated = []
        real_point = parallel._run_point

        def counting(config):
            simulated.append(config)
            return real_point(config)

        monkeypatch.setattr(parallel, "_run_point", counting)
        capsys.readouterr()
        assert cli_main(["campaign", "run", "fault-matrix", "--db", db]) \
            == 0
        out = capsys.readouterr().out
        from repro.campaign import get_campaign

        total = get_campaign("fault-matrix", TINY).size
        assert f"{interrupt_at} resumed" in out
        assert len(simulated) == total - interrupt_at


class TestStatusAndReport:
    def test_status_lists_and_details(self, tmp_path, db, capsys):
        path = spec_file(tmp_path)
        cli_main(["campaign", "run", path, "--db", db])
        capsys.readouterr()
        assert cli_main(["campaign", "status", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "from-file" in out
        assert cli_main(["campaign", "status", "from-file", "--db", db]) \
            == 0
        detail = capsys.readouterr().out
        assert "# Campaign `from-file`" in detail
        assert "provenance" in detail

    def test_report_between_two_campaigns(self, tmp_path, db, capsys):
        path = spec_file(tmp_path)
        cli_main(["campaign", "run", path, "--db", db])
        other = tmp_path / "other.json"
        body = json.loads((tmp_path / "spec.json").read_text())
        body["name"] = "from-file-2"
        body["base"]["buffer_depth"] = 4
        other.write_text(json.dumps(body))
        cli_main(["campaign", "run", str(other), "--db", db])
        capsys.readouterr()

        md = tmp_path / "report.md"
        csv = tmp_path / "report.csv"
        code = cli_main([
            "campaign", "report", "from-file", "from-file-2",
            "--db", db, "--md", str(md), "--csv", str(csv),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Campaign comparison: from-file vs from-file-2" in out
        assert "provenance" in out
        assert md.exists() and csv.exists()
        from repro.sim.export import read_csv

        rows = read_csv(str(csv))
        assert rows and "baseline_hashes" in rows[0]

    def test_report_unknown_campaign_rejected(self, db, capsys):
        from repro.campaign import CampaignStore

        with CampaignStore(db):
            pass
        assert cli_main(["campaign", "report", "a", "b", "--db", db]) == 2
        assert "no stored campaign" in capsys.readouterr().err


class TestTimelineAndLogs:
    @pytest.fixture
    def traced_db(self, tmp_path, db, capsys):
        path = spec_file(tmp_path)
        assert cli_main(
            ["campaign", "run", path, "--db", db, "--trace"]
        ) == 0
        capsys.readouterr()
        return db

    def test_timeline_summary_and_perfetto(self, traced_db, tmp_path,
                                           capsys):
        assert cli_main(
            ["campaign", "timeline", "from-file", "--db", traced_db]
        ) == 0
        out = capsys.readouterr().out
        assert "span(s)" in out and "0 still open" in out
        # --perfetto without a value writes the default path
        assert cli_main(
            ["campaign", "timeline", "from-file", "--db", traced_db,
             "--perfetto"]
        ) == 0
        out = capsys.readouterr().out
        default = str(tmp_path / "from-file.timeline.perfetto.json")
        assert default in out
        document = json.loads(open(default, encoding="utf-8").read())
        assert document["traceEvents"]
        # an explicit path is honoured too
        target = str(tmp_path / "custom.json")
        assert cli_main(
            ["campaign", "timeline", "from-file", "--db", traced_db,
             "--perfetto", target]
        ) == 0
        capsys.readouterr()
        assert json.loads(open(target, encoding="utf-8").read())

    def test_timeline_without_spans_errors(self, tmp_path, db, capsys):
        path = spec_file(tmp_path)
        assert cli_main(["campaign", "run", path, "--db", db]) == 0
        capsys.readouterr()
        assert cli_main(
            ["campaign", "timeline", "from-file", "--db", db]
        ) == 2
        assert "--trace" in capsys.readouterr().err

    def test_logs_filtering_and_json(self, traced_db, capsys):
        assert cli_main(
            ["campaign", "logs", "from-file", "--db", traced_db]
        ) == 0
        captured = capsys.readouterr()
        assert "campaign_started" in captured.out
        assert "campaign_settled" in captured.out
        assert "record(s)" in captured.err
        # --tail keeps only the newest records
        assert cli_main(
            ["campaign", "logs", "from-file", "--db", traced_db,
             "--tail", "1", "--json"]
        ) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "campaign_settled"
        assert record["trace_id"]
        # a worker filter that matches nothing still succeeds
        assert cli_main(
            ["campaign", "logs", "from-file", "--db", traced_db,
             "--worker", "ghost"]
        ) == 0
        assert capsys.readouterr().out == ""

    def test_logs_without_log_dir_errors(self, tmp_path, db, capsys):
        path = spec_file(tmp_path)
        assert cli_main(["campaign", "run", path, "--db", db]) == 0
        capsys.readouterr()
        assert cli_main(
            ["campaign", "logs", "from-file", "--db", db]
        ) == 2
        assert "--trace" in capsys.readouterr().err

    def test_watch_stale_after_flag(self, traced_db, capsys):
        # The finished heartbeat renders with any threshold (finished
        # runs never show the banner); the flag parses end to end.
        assert cli_main(
            ["campaign", "watch", "from-file", "--db", traced_db,
             "--once", "--stale-after", "0.001"]
        ) == 0
        out = capsys.readouterr().out
        assert "STALE" not in out and "[finished]" in out
