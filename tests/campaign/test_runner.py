"""Campaign runner: resume, crash safety, failure retry."""

import pytest

from repro.campaign import CampaignSpec, CampaignStore, run_campaign
from repro.sim import parallel


@pytest.fixture
def spec():
    return CampaignSpec.from_dict({
        "name": "r",
        "base": {"radix": 4, "warmup": 50, "measure": 200,
                 "drain": 2000, "message_length": 8},
        "axes": {"routing": ["cr", "dor"], "load": [0.1, 0.15]},
        "replications": 1,
    })


@pytest.fixture
def store(tmp_path):
    with CampaignStore(str(tmp_path / "c.sqlite")) as s:
        yield s


def counting_run_point(monkeypatch):
    """Route _run_point through a call counter; returns the counter."""
    calls = []
    real = parallel._run_point

    def wrapper(config):
        calls.append(config)
        return real(config)

    monkeypatch.setattr(parallel, "_run_point", wrapper)
    return calls


class TestRunAndResume:
    def test_full_run_stores_every_point(self, spec, store):
        stats = run_campaign(spec, store)
        assert stats.complete
        assert (stats.ran, stats.skipped, stats.failed) == (4, 0, 0)
        assert store.summary("r")["ok"] == 4
        assert stats.wall_time > 0

    def test_second_run_skips_everything(self, spec, store, monkeypatch):
        run_campaign(spec, store)
        calls = counting_run_point(monkeypatch)
        stats = run_campaign(spec, store)
        assert stats.complete
        assert (stats.ran, stats.skipped) == (0, 4)
        assert calls == []

    def test_changed_spec_reruns_stale_points(self, spec, store,
                                              monkeypatch):
        run_campaign(spec, store)
        changed = CampaignSpec.from_dict({
            **spec.to_dict(),
            "base": {**spec.to_dict()["base"], "buffer_depth": 4},
        })
        calls = counting_run_point(monkeypatch)
        stats = run_campaign(changed, store)
        # same point ids, different configs: provenance forces re-runs
        assert (stats.ran, stats.skipped) == (4, 0)
        assert len(calls) == 4

    def test_interrupted_run_resumes_without_rerunning(
        self, spec, store, monkeypatch
    ):
        seen = []

        def interrupt_after_two(status):
            seen.append(status)
            if status.done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, store, progress=interrupt_after_two)
        # the two completed points were journaled before the interrupt
        assert store.summary("r")["ok"] == 2

        calls = counting_run_point(monkeypatch)
        stats = run_campaign(spec, store)
        assert stats.complete
        assert (stats.ran, stats.skipped) == (2, 2)
        assert len(calls) == 2  # completed points never re-simulated

    def test_progress_reports_skips_and_runs(self, spec, store):
        run_campaign(spec, store)
        seen = []
        run_campaign(spec, store, progress=seen.append)
        assert [s.outcome for s in seen] == ["skipped"] * 4
        assert [s.done for s in seen] == [1, 2, 3, 4]
        assert all(s.total == 4 for s in seen)


class TestFailures:
    def test_permanently_failing_point_recorded_not_fatal(
        self, store
    ):
        spec = CampaignSpec.from_dict({
            "name": "f",
            "base": {"radix": 4, "warmup": 50, "measure": 100,
                     "drain": 1000, "message_length": 8},
            # "nope" passes spec validation (field values are free-form)
            # but raises at engine build time — a permanent failure.
            "axes": {"routing": ["dor", "nope"], "load": [0.1]},
        })
        stats = run_campaign(spec, store, retries=1, backoff=0.0)
        assert not stats.complete
        assert (stats.ran, stats.failed) == (1, 1)
        assert stats.retried == 1
        assert stats.failures == ["routing=nope/load=0.1/rep=0"]
        (row,) = store.rows("f", status="failed")
        assert "nope" in row["error"]
        assert row["attempts"] == 2  # initial attempt + 1 retry

    def test_flaky_point_retried_to_success(self, store, monkeypatch):
        spec = CampaignSpec.from_dict({
            "name": "flaky",
            "base": {"radix": 4, "warmup": 50, "measure": 100,
                     "drain": 1000, "message_length": 8},
            "axes": {"load": [0.1, 0.15]},
        })
        real = parallel._run_point
        failed_once = []

        def flaky(config):
            if config.load == 0.15 and not failed_once:
                failed_once.append(True)
                raise RuntimeError("transient blip")
            return real(config)

        monkeypatch.setattr(parallel, "_run_point", flaky)
        stats = run_campaign(spec, store, retries=2, backoff=0.0)
        assert stats.complete
        assert (stats.ran, stats.failed, stats.retried) == (2, 0, 1)
        # the retried point's stored row reflects the second attempt
        (row,) = [r for r in store.rows("flaky") if r["load"] == 0.15]
        assert row["status"] == "ok" and row["attempts"] == 2

    def test_terminal_failures_settle_progress_to_total(self, store):
        """Regression: exhausted-retry points must settle into done.

        Terminally failed points used to never advance the progress
        callback's ``done``, so progress and the watch ETA stuck below
        ``total`` forever.  They now settle into a visible
        ``done (N failed)`` state.
        """
        spec = CampaignSpec.from_dict({
            "name": "stall",
            "base": {"radix": 4, "warmup": 50, "measure": 100,
                     "drain": 1000, "message_length": 8},
            "axes": {"routing": ["dor", "nope"], "load": [0.1]},
        })
        seen = []
        stats = run_campaign(spec, store, retries=1, backoff=0.0,
                             progress=seen.append)
        assert (stats.ran, stats.failed) == (1, 1)
        # progress reaches total despite the permanent failure...
        assert seen[-1].done == seen[-1].total == 2
        assert max(s.done for s in seen) == 2
        # ...but only the FINAL failed attempt settles; the retried
        # attempt must not inflate done past total.
        failed_events = [s for s in seen if s.outcome == "failed"]
        assert len(failed_events) == 2  # attempt 1 + final attempt 2
        assert failed_events[0].done < failed_events[1].done

    def test_terminal_failures_render_in_done_count(self, store):
        """The heartbeat shows ``done (N failed)`` once retries exhaust."""
        from repro.campaign.monitor import CampaignMonitor, render_status

        spec = CampaignSpec.from_dict({
            "name": "stallm",
            "base": {"radix": 4, "warmup": 50, "measure": 100,
                     "drain": 1000, "message_length": 8},
            "axes": {"routing": ["dor", "nope"], "load": [0.1]},
        })
        monitor = CampaignMonitor("stallm", 2, path=None)
        points = {p.scenario["routing"]: p for p in spec.points()}
        monitor.on_point(points["dor"], "ok", 0.1, {})
        monitor.on_point(points["nope"], "failed", 0.1)  # retryable
        assert monitor.done == 1 and monitor.failed_settled == 0
        monitor.on_point(points["nope"], "failed", 0.1, final=True)
        assert monitor.done == 2 and monitor.failed_settled == 1
        status = monitor.snapshot()
        assert (status["done"], status["failed"]) == (2, 1)
        assert monitor.eta_seconds() == 0.0  # no stall below total
        rendered = render_status(status)
        assert "2/2 (100%) (1 failed)" in rendered

    def test_failed_points_resume_as_pending(self, store, monkeypatch):
        spec = CampaignSpec.from_dict({
            "name": "f2",
            "base": {"radix": 4, "warmup": 50, "measure": 100,
                     "drain": 1000, "message_length": 8},
            "axes": {"routing": ["dor", "nope"], "load": [0.1]},
        })
        run_campaign(spec, store, retries=0, backoff=0.0)
        assert store.summary("f2") == {
            "campaign": "f2", "ok": 1, "failed": 1,
            "wall_time": store.summary("f2")["wall_time"], "versions": 1,
        }
        # a later run re-attempts only the failed point
        calls = counting_run_point(monkeypatch)
        run_campaign(spec, store, retries=0, backoff=0.0)
        assert len(calls) == 1 and calls[0].routing == "nope"


class TestParallelExecution:
    def test_workers_pool_matches_serial(self, spec, tmp_path):
        with CampaignStore(str(tmp_path / "a.sqlite")) as a:
            run_campaign(spec, a)
            serial = {r["point_id"]: r["latency_mean"]
                      for r in a.rows("r")}
        with CampaignStore(str(tmp_path / "b.sqlite")) as b:
            run_campaign(spec, b, workers=3)
            fanned = {r["point_id"]: r["latency_mean"]
                      for r in b.rows("r")}
        assert fanned == serial
