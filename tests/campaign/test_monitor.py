"""Campaign heartbeat: atomic writes, monitor accounting, rendering."""

import json
import os

import pytest

from repro import SimConfig
from repro.campaign import (
    CampaignSpec,
    CampaignStore,
    read_status,
    render_status,
    run_campaign,
)
from repro.campaign.monitor import (
    ROLLING_WINDOW,
    CampaignMonitor,
    status_path,
    status_svg,
    text_sparkline,
    write_status,
)
from repro.campaign.spec import CampaignPoint


def tiny_spec(name="hb-test", loads=(0.1, 0.2)):
    return CampaignSpec.from_dict({
        "name": name,
        "description": "heartbeat test campaign",
        "base": {
            "radix": 4, "dims": 2, "routing": "cr",
            "message_length": 8, "warmup": 50, "measure": 150,
            "drain": 1000,
        },
        "axes": {"load": list(loads)},
        "replications": 1,
    })


def make_point(point_id="p/rep=0", scenario=None, replication=0):
    return CampaignPoint(
        point_id=point_id,
        grid="",
        scenario=scenario or {"load": 0.1},
        replication=replication,
        config=SimConfig(radix=4, dims=2, message_length=8),
    )


class TestStatusPath:
    def test_anchored_next_to_the_database(self):
        assert (status_path("results/campaigns.sqlite", "fm")
                == os.path.join("results", "fm.status.json"))

    def test_bare_filename_lands_in_cwd(self):
        assert status_path("camp.sqlite", "fm") == os.path.join(
            ".", "fm.status.json"
        )

    def test_in_memory_store_has_no_heartbeat(self):
        assert status_path(":memory:", "fm") is None


class TestAtomicWrites:
    def test_write_then_read_round_trip(self, tmp_path):
        path = str(tmp_path / "deep" / "s.status.json")
        write_status(path, {"done": 3, "total": 9})
        assert read_status(path) == {"done": 3, "total": 9}

    def test_no_temp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "s.status.json")
        write_status(path, {"state": "running"})
        write_status(path, {"state": "finished"})
        assert os.listdir(tmp_path) == ["s.status.json"]

    def test_reader_never_sees_a_torn_file(self, tmp_path):
        # os.replace is atomic: even immediately after a rewrite the
        # file parses as complete JSON.
        path = str(tmp_path / "s.status.json")
        for index in range(20):
            write_status(path, {"index": index, "pad": "x" * 4096})
            assert read_status(path)["index"] == index


class TestMonitorAccounting:
    def make_monitor(self, tmp_path, total=4, interval=0.0):
        ticks = iter(range(1000))

        def clock():
            return float(next(ticks))

        path = str(tmp_path / "m.status.json")
        return CampaignMonitor(
            "m", total, path, interval=interval, clock=clock
        ), path

    def test_ok_and_skipped_advance_done_failed_does_not(self, tmp_path):
        monitor, path = self.make_monitor(tmp_path)
        monitor.on_point(make_point(), "ok", 0.5)
        monitor.on_point(make_point(), "skipped", 0.0)
        monitor.on_point(make_point(), "failed", 0.2)
        assert monitor.done == 2
        status = read_status(path)
        assert status["done"] == 2
        assert status["last_point"]["outcome"] == "failed"
        counters = status["metrics"]["cr_campaign_points_total"]["values"]
        assert counters['{outcome="ok"}'] == 1.0
        assert counters['{outcome="failed"}'] == 1.0
        assert counters['{outcome="skipped"}'] == 1.0

    def test_rates_accumulate_from_reports(self, tmp_path):
        monitor, path = self.make_monitor(tmp_path)
        report = {"kills": 6, "retransmissions": 3,
                  "messages_delivered": 60, "kill_rate": 0.1}
        monitor.on_point(make_point(), "ok", 0.5, report)
        monitor.on_point(make_point(), "ok", 0.7, report)
        status = read_status(path)
        assert status["rates"]["kills_per_delivered"] == pytest.approx(
            12 / 120)
        assert (status["rates"]["retransmissions_per_delivered"]
                == pytest.approx(6 / 120))
        assert status["recent_kill_rates"] == [0.1, 0.1]

    def test_eta_from_rolling_wall_times(self, tmp_path):
        monitor, _ = self.make_monitor(tmp_path, total=10)
        assert monitor.eta_seconds() is None  # no samples yet
        monitor.on_point(make_point(), "ok", 2.0)
        monitor.on_point(make_point(), "ok", 4.0)
        # mean 3.0s over 8 remaining points.
        assert monitor.eta_seconds() == pytest.approx(24.0)

    def test_eta_zero_when_complete(self, tmp_path):
        monitor, _ = self.make_monitor(tmp_path, total=1)
        monitor.on_point(make_point(), "ok", 2.0)
        assert monitor.eta_seconds() == 0.0

    def test_rolling_window_is_bounded(self, tmp_path):
        monitor, _ = self.make_monitor(
            tmp_path, total=ROLLING_WINDOW * 2
        )
        for index in range(ROLLING_WINDOW + 10):
            monitor.on_point(make_point(), "ok", float(index))
        assert len(monitor._recent_wall) == ROLLING_WINDOW

    def test_interval_throttles_intermediate_writes(self, tmp_path):
        monitor, path = self.make_monitor(
            tmp_path, total=4, interval=100.0
        )
        monitor.on_point(make_point(), "ok", 0.1)  # first write
        first = read_status(path)
        monitor.on_point(make_point(), "ok", 0.1)  # throttled
        assert read_status(path) == first
        monitor.finalize()  # terminal write always lands
        assert read_status(path)["state"] == "finished"

    def test_completion_writes_even_when_throttled(self, tmp_path):
        monitor, path = self.make_monitor(
            tmp_path, total=2, interval=1000.0
        )
        monitor.on_point(make_point(), "ok", 0.1)
        monitor.on_point(make_point(), "ok", 0.1)
        assert read_status(path)["done"] == 2


class TestRunCampaignHeartbeat:
    def test_run_writes_and_finalizes_heartbeat(self, tmp_path):
        db = str(tmp_path / "camp.sqlite")
        spec = tiny_spec()
        with CampaignStore(db) as store:
            stats = run_campaign(spec, store, heartbeat=0.0)
        assert stats.complete
        path = status_path(db, spec.name)
        status = read_status(path)
        assert status["state"] == "finished"
        assert status["done"] == status["total"] == spec.size
        assert status["last_point"]["outcome"] == "ok"
        assert "load" in status["last_point"]["scenario"]

    def test_resume_counts_skipped_points_as_done(self, tmp_path):
        db = str(tmp_path / "camp.sqlite")
        spec = tiny_spec()
        with CampaignStore(db) as store:
            run_campaign(spec, store, heartbeat=0.0)
        # Second run resumes: every point skips, heartbeat stays
        # consistent at done == total.
        with CampaignStore(db) as store:
            stats = run_campaign(spec, store, heartbeat=0.0)
        assert stats.skipped == spec.size
        status = read_status(status_path(db, spec.name))
        assert status["state"] == "finished"
        assert status["done"] == status["total"] == spec.size

    def test_heartbeat_none_disables_monitoring(self, tmp_path):
        db = str(tmp_path / "camp.sqlite")
        spec = tiny_spec()
        with CampaignStore(db) as store:
            run_campaign(spec, store, heartbeat=None)
        assert not os.path.exists(status_path(db, spec.name))

    def test_explicit_heartbeat_path_wins(self, tmp_path):
        db = str(tmp_path / "camp.sqlite")
        explicit = str(tmp_path / "elsewhere" / "hb.json")
        with CampaignStore(db) as store:
            run_campaign(tiny_spec(), store, heartbeat=0.0,
                         heartbeat_path=explicit)
        assert read_status(explicit)["state"] == "finished"

    def test_in_memory_store_skips_heartbeat(self):
        with CampaignStore(":memory:") as store:
            stats = run_campaign(tiny_spec(), store, heartbeat=0.0)
        assert stats.complete  # no crash, no file anywhere to check


class TestRendering:
    def test_text_sparkline_shape(self):
        line = text_sparkline([0.0, 0.5, 1.0])
        assert line == "▁▅█"
        assert text_sparkline([]) == ""
        # Constant series renders mid-ramp, not flatline-at-zero.
        assert set(text_sparkline([2.0, 2.0])) == {"▅"}

    def test_text_sparkline_clamps_to_width(self):
        assert len(text_sparkline(list(range(100)), width=16)) == 16

    def test_render_status_is_pure_and_complete(self):
        status = {
            "name": "fm", "state": "running",
            "elapsed_seconds": 12.0, "eta_seconds": 48.0,
            "done": 2, "total": 8,
            "last_point": {
                "point_id": "load=0.2/rep=0", "outcome": "ok",
                "elapsed": 1.5, "scenario": {"load": 0.2},
            },
            "rates": {"kills_per_delivered": 0.25,
                      "retransmissions_per_delivered": 0.125},
            "recent_wall_seconds": [1.0, 2.0],
            "recent_kill_rates": [0.1, 0.3],
        }
        text = render_status(status)
        assert "campaign fm [running]" in text
        assert "2/8 (25%)" in text
        assert "eta 48.0s" in text
        assert "load=0.2/rep=0" in text
        assert "load=0.2" in text
        assert "0.2500" in text and "0.1250" in text
        assert "▁█" in text  # sparklines present

    def test_render_status_tolerates_sparse_dict(self):
        assert "campaign ? [?]" in render_status({})

    def test_status_svg(self):
        svg = status_svg({
            "name": "fm",
            "recent_wall_seconds": [1.0, 2.0, 3.0],
            "recent_kill_rates": [0.0, 0.1],
        })
        assert svg.startswith("<svg")
        assert "point wall s" in svg and "kill rate" in svg

    def test_status_svg_tolerates_null_samples(self):
        # A heartbeat written mid-point can hold null rate samples
        # (e.g. an all-quiescent measurement interval).
        svg = status_svg({
            "name": "fm",
            "recent_wall_seconds": [1.0, None, 3.0],
            "recent_kill_rates": [None],
        })
        assert svg.startswith("<svg")
        assert "point wall s" in svg and "kill rate" in svg

    def test_render_status_tolerates_null_samples(self):
        text = render_status({
            "name": "fm", "state": "running",
            "recent_wall_seconds": [1.0, None],
            "recent_kill_rates": [None, 0.5],
        })
        assert "(last 0.00s)" in text
        assert "(last 0.500)" in text

    def test_finished_status_round_trips_through_render(self, tmp_path):
        db = str(tmp_path / "camp.sqlite")
        spec = tiny_spec()
        with CampaignStore(db) as store:
            run_campaign(spec, store, heartbeat=0.0)
        status = read_status(status_path(db, spec.name))
        text = render_status(status)
        assert f"{spec.size}/{spec.size} (100%)" in text
        assert json.dumps(status)  # heartbeat is pure JSON
