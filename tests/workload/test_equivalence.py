"""Fast-engine equivalence across the workload corpus.

Every workload mode exercises a distinct fast-engine skip path (paced
per-cycle draws, renewal wake events, scheduled arrivals, delivery-
triggered replies, phase windows, cascade check boundaries); each must
stay flit-for-flit identical to the reference engine.
"""

import pytest

from repro.verify import (
    WORKLOAD_EQUIVALENCE_PRESETS,
    assert_engines_equivalent,
    workload_equivalence_configs,
)


@pytest.mark.parametrize("name", WORKLOAD_EQUIVALENCE_PRESETS)
def test_workload_preset_equivalence(name):
    config = workload_equivalence_configs()[name]
    assert_engines_equivalent(config, label=name)


def test_corpus_covers_every_workload_kind():
    from repro.workload import WORKLOAD_KINDS, WorkloadSpec

    covered = set()
    for config in workload_equivalence_configs().values():
        covered.add(WorkloadSpec.parse(config.workload).kind)
    # bernoulli/geometric are covered by the (stronger) byte-identity
    # back-compat corpus; poisson aliases geometric.
    assert covered >= set(WORKLOAD_KINDS) - {
        "bernoulli", "geometric", "poisson"
    }
