"""Draw-for-draw back-compat: workload="bernoulli" == legacy generator.

The Bernoulli arrival shim wrapped in :class:`WorkloadGenerator` must
reproduce the legacy :class:`TrafficGenerator` RNG draw sequence *draw
for draw*, so whole-run reports are byte-identical — the guarantee that
lets every existing experiment preset opt into the workload layer
without perturbing a single published number.
"""

import pytest

from repro.network.message import reset_uid_counter
from repro.sim.simulator import run_simulation
from repro.obs.tracing import config_for_experiment
from repro.verify.fuzz import DEFAULT_CASES, DEFAULT_SEED, fuzz_config
from repro.workload import WorkloadGenerator


def _report(config):
    reset_uid_counter()
    report = dict(run_simulation(config).report)
    report.pop("profile", None)  # wall-clock times differ run to run
    return report


def _strip_workload_keys(report):
    return {
        key: value for key, value in report.items()
        if not key.startswith("workload_")
    }


def assert_backcompat(config, label):
    legacy = _report(config.with_(workload=None))
    shimmed = _report(config.with_(workload="bernoulli"))
    assert _strip_workload_keys(shimmed) == legacy, (
        f"{label}: workload='bernoulli' diverges from the legacy "
        "generator"
    )


class TestBernoulliShim:
    def test_e01_preset_byte_identical(self):
        assert_backcompat(config_for_experiment("e01"), "e01")

    @pytest.mark.parametrize("index", range(DEFAULT_CASES))
    def test_fuzz_corpus_byte_identical(self, index):
        config = fuzz_config(DEFAULT_SEED, index)
        assert_backcompat(config, f"fuzz case {index}")

    def test_shim_builds_workload_generator(self, tiny_config):
        config = tiny_config.with_(workload="bernoulli")
        result = run_simulation(config, keep_engine=True)
        assert isinstance(result.engine.generator, WorkloadGenerator)
        assert result.engine.generator.generated == (
            result.report["messages_created"]
        )
