"""Workload generator semantics: specs, bursts, replies, skip protocol."""

import random

import pytest

from repro import SimConfig, make_pattern, torus
from repro.network.message import reset_uid_counter
from repro.sim.simulator import run_simulation
from repro.traffic.lengths import FixedLength
from repro.traffic.patterns import Incast, Shuffle, Tornado, Uniform
from repro.workload import (
    OpenLoopSource,
    RequestReply,
    ScheduledArrival,
    WorkloadGenerator,
    WorkloadSpec,
    build_workload,
    incast_bursts,
    make_arrivals,
)


def run(config):
    reset_uid_counter()
    return run_simulation(config, keep_engine=True)


@pytest.fixture
def base_config():
    return SimConfig(
        radix=4, dims=2, message_length=8, load=0.25,
        warmup=60, measure=300, drain=4000, seed=7,
    )


class TestWorkloadSpecParse:
    def test_bare_string(self):
        spec = WorkloadSpec.parse("mmpp")
        assert spec.kind == "mmpp" and spec.params == {}

    def test_string_with_params(self):
        spec = WorkloadSpec.parse("incast:period=32,fanin=4")
        assert spec.kind == "incast"
        assert spec.params == {"period": 32, "fanin": 4}

    def test_param_coercion(self):
        spec = WorkloadSpec.parse("pareto:alpha=1.4")
        assert spec.params["alpha"] == pytest.approx(1.4)
        spec = WorkloadSpec.parse("client-server:process=mmpp")
        assert spec.params["process"] == "mmpp"

    def test_trace_path_taken_verbatim(self):
        spec = WorkloadSpec.parse("trace:results/a=b:c.jsonl")
        assert spec.kind == "trace"
        assert spec.params == {"path": "results/a=b:c.jsonl"}

    def test_dict_form(self):
        spec = WorkloadSpec.parse({"kind": "mmpp", "mean_on": 16})
        assert spec.kind == "mmpp"
        assert spec.params == {"mean_on": 16}

    def test_spec_passthrough(self):
        spec = WorkloadSpec("phased")
        assert WorkloadSpec.parse(spec) is spec

    def test_unknown_kind_lists_choices(self):
        with pytest.raises(ValueError, match="incast"):
            WorkloadSpec.parse("lognormal")

    def test_dict_without_kind(self):
        with pytest.raises(ValueError, match="kind"):
            WorkloadSpec.parse({"period": 32})

    def test_malformed_parameter(self):
        with pytest.raises(ValueError, match="key=value"):
            WorkloadSpec.parse("mmpp:mean_on")

    def test_wrong_type(self):
        with pytest.raises(TypeError):
            WorkloadSpec.parse(42)


class TestIncastBursts:
    def setup_method(self):
        self.topo = torus(4, 2)
        self.lengths = FixedLength(8)

    def bursts(self, **kwargs):
        defaults = dict(
            topology=self.topo, lengths=self.lengths, rate=0.1,
            seed=3, start=0, stop=256, period=64, fanin=4, sinks=[0],
        )
        defaults.update(kwargs)
        return incast_bursts(**defaults)

    def test_periodic_bursts_of_fanin_clients(self):
        entries = self.bursts()
        cycles = sorted({e.cycle for e in entries})
        assert cycles == [0, 64, 128, 192]
        for cycle in cycles:
            burst = [e for e in entries if e.cycle == cycle]
            assert len(burst) == 4
            assert len({e.src for e in burst}) == 4  # distinct clients
            assert all(e.dst == 0 and e.src != 0 for e in burst)

    def test_sinks_rotate(self):
        entries = self.bursts(sinks=[0, 5])
        by_cycle = {}
        for e in entries:
            by_cycle.setdefault(e.cycle, set()).add(e.dst)
        assert by_cycle[0] == {0}
        assert by_cycle[64] == {5}
        assert by_cycle[128] == {0}

    def test_fanin_clamped_to_clients(self):
        entries = self.bursts(fanin=99)
        burst = [e for e in entries if e.cycle == 0]
        assert len(burst) == self.topo.num_nodes - 1

    def test_deterministic_per_seed(self):
        assert self.bursts() == self.bursts()
        assert self.bursts(seed=4) != self.bursts()

    def test_default_fanin_targets_load(self, base_config):
        from repro.traffic.loads import injection_rate

        for load in (0.05, 0.25):
            config = base_config.with_(
                load=load, workload="incast:period=40"
            )
            gen = build_workload(config, self.topo)
            burst = [e for e in gen._entries if e.cycle == 0]
            rate = injection_rate(self.topo, load, 8.0)
            # Default fanin recovers the configured offered load,
            # clamped to the 15 non-sink clients.
            expected = min(
                max(1, round(rate * self.topo.num_nodes * 40)), 15
            )
            assert len(burst) == expected
            assert expected > 1  # the check has teeth at both loads


class TestScheduledAdmission:
    def test_inline_trace_replays_every_entry(self, base_config):
        entries = [
            (0, 1, 14, 8), (0, 2, 13, 6), (5, 3, 12, 8), (80, 4, 11, 4),
        ]
        result = run(base_config.with_(
            workload={"kind": "trace", "entries": entries}
        ))
        gen = result.engine.generator
        assert gen.replayed == len(entries)
        assert gen.exhausted
        assert result.report["messages_delivered"] == len(entries)

    def test_pending_entries_block_exhaustion(self):
        topo = torus(4, 2)
        gen = WorkloadGenerator(
            topo, scheduled=[ScheduledArrival(100, 0, 5, 8)], seed=1
        )
        assert not gen.exhausted
        assert gen.skip_state(0) == ("at", 100)


class TestClientServer:
    def test_request_reply_accounting(self, base_config):
        result = run(base_config.with_(
            workload="client-server:servers=2,service=4"
        ))
        gen = result.engine.generator
        assert gen.requests_sent > 0
        assert gen.replies_sent > 0
        # Every reply answers exactly one request; with a full drain no
        # request is left outstanding or queued.
        assert gen.replies_sent == gen.requests_sent
        assert not gen._outstanding and not gen._replies
        assert result.report["workload_requests"] == gen.requests_sent
        assert result.report["workload_replies"] == gen.replies_sent

    def test_replies_target_the_requesting_client(self):
        topo = torus(4, 2)
        rr = RequestReply([0], FixedLength(4), service_time=6, seed=2)
        gen = WorkloadGenerator(topo, request_reply=rr, seed=2)

        class Delivered:
            uid, src, dst = 17, 9, 0

        gen._outstanding.add(17)
        gen.on_delivered(Delivered, now=50)
        due, _, server, client, length = gen._replies[0]
        assert (due, server, client, length) == (56, 0, 9, 4)

    def test_untracked_delivery_is_ignored(self):
        topo = torus(4, 2)
        rr = RequestReply([0], FixedLength(4), seed=2)
        gen = WorkloadGenerator(topo, request_reply=rr, seed=2)

        class Delivered:
            uid, src, dst = 99, 3, 0

        gen.on_delivered(Delivered, now=10)
        assert not gen._replies

    def test_reply_lengths_are_per_server_deterministic(self):
        lengths = FixedLength(8)
        a = RequestReply([2, 5], lengths, seed=9)
        b = RequestReply([2, 5], lengths, seed=9)
        assert [a.reply_length(2) for _ in range(10)] == [
            b.reply_length(2) for _ in range(10)
        ]

    def test_server_validation(self):
        with pytest.raises(ValueError):
            RequestReply([], FixedLength(4))
        with pytest.raises(ValueError):
            RequestReply([0], FixedLength(4), service_time=-1)


class TestPhased:
    def test_three_phase_windows(self, base_config):
        config = base_config.with_(workload="phased")
        gen = build_workload(config, torus(4, 2))
        stop = config.warmup + config.measure  # 360
        warm, burst = gen.sources
        assert (warm.start, warm.stop) == (0, 120)
        assert (burst.start, burst.stop) == (120, 240)
        cycles = sorted({e.cycle for e in gen._entries})
        assert cycles[0] == 240 and cycles[-1] < stop
        assert all(b - a == 48 for a, b in zip(cycles, cycles[1:]))

    def test_collective_is_one_message_per_sender(self, base_config):
        gen = build_workload(
            base_config.with_(workload="phased"), torus(4, 2)
        )
        first = [e for e in gen._entries if e.cycle == 240]
        srcs = [e.src for e in first]
        assert len(srcs) == len(set(srcs))
        assert all(e.src != e.dst for e in first)


class TestSkipState:
    def setup_method(self):
        self.topo = torus(4, 2)
        self.lengths = FixedLength(8)

    def source(self, kind, rate=0.1, start=0, stop=None):
        return OpenLoopSource(
            make_arrivals(kind, rate), Uniform(), self.lengths,
            start=start, stop=stop,
        )

    def test_per_cycle_source_is_paced(self):
        gen = WorkloadGenerator(
            self.topo, sources=[self.source("bernoulli")], seed=1
        )
        assert gen.skip_state(10) == ("paced", 10)

    def test_renewal_source_names_next_arrival(self):
        gen = WorkloadGenerator(
            self.topo, sources=[self.source("geometric")], seed=1
        )
        state, cycle = gen.skip_state(0)
        assert state == "at"
        assert cycle == gen.sources[0].process.next_arrival(0)

    def test_future_window_is_a_wake_event(self):
        gen = WorkloadGenerator(
            self.topo, sources=[self.source("bernoulli", start=500)],
            seed=1,
        )
        assert gen.skip_state(10) == ("at", 500)

    def test_closed_window_never_wakes(self):
        gen = WorkloadGenerator(
            self.topo,
            sources=[self.source("bernoulli", start=0, stop=100)],
            seed=1,
        )
        assert gen.skip_state(100) == ("at", float("inf"))

    def test_pending_admission_is_busy(self):
        gen = WorkloadGenerator(self.topo, seed=1)
        gen._pending.append(ScheduledArrival(5, 0, 3, 8))
        assert gen.skip_state(9) == ("busy", 9)

    def test_queued_reply_is_a_wake_event(self):
        rr = RequestReply([0], self.lengths, service_time=6, seed=2)
        gen = WorkloadGenerator(self.topo, request_reply=rr, seed=2)

        class Delivered:
            uid, src, dst = 1, 9, 0

        gen._outstanding.add(1)
        gen.on_delivered(Delivered, now=50)
        assert gen.skip_state(51) == ("at", 56)


class TestNewPatterns:
    def setup_method(self):
        self.topo = torus(4, 2)  # 16 nodes
        self.rng = random.Random(0)

    def test_incast_targets_sinks_only(self):
        pattern = Incast(sinks=(3, 7))
        for src in range(self.topo.num_nodes):
            dst = pattern.destination(self.topo, src, self.rng)
            if src in (3, 7):
                assert dst is None  # sinks send nothing
            else:
                assert dst in (3, 7)

    def test_tornado_on_torus(self):
        pattern = Tornado()
        # 4-ary: shift = ceil(4/2) - 1 = 1 in every dimension.
        assert pattern.destination(self.topo, 0, self.rng) == (
            self.topo.node_at((1, 1))
        )

    def test_shuffle_rotates_bits(self):
        pattern = Shuffle()
        # 16 nodes, 4 bits: 0b0011 -> 0b0110.
        assert pattern.destination(self.topo, 0b0011, self.rng) == 0b0110
        # 0b1000 -> 0b0001 (wraps the high bit).
        assert pattern.destination(self.topo, 0b1000, self.rng) == 0b0001
        # Fixed points return None (no self-traffic).
        assert pattern.destination(self.topo, 0, self.rng) is None

    def test_make_pattern_registers_new_names(self):
        assert isinstance(make_pattern("incast"), Incast)
        assert isinstance(make_pattern("tornado"), Tornado)
        assert isinstance(make_pattern("shuffle"), Shuffle)
        with pytest.raises(ValueError) as excinfo:
            make_pattern("zipf")
        for name in ("incast", "tornado", "shuffle", "uniform"):
            assert name in str(excinfo.value)
