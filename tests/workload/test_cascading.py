"""Load-dependent cascading faults: hazards, clusters, repairs, guards."""

import pytest

from repro.faults.cascading import LoadDependentFaults, make_cascading
from repro.faults.model import CompositeFaultModel
from repro.network.message import reset_uid_counter
from repro.sim.simulator import run_simulation
from repro.verify import workload_equivalence_configs


def cascade_result():
    reset_uid_counter()
    config = workload_equivalence_configs()["cascade"]
    return run_simulation(config, keep_engine=True)


def find_model(engine):
    model = engine.fault_model
    if isinstance(model, LoadDependentFaults):
        return model
    assert isinstance(model, CompositeFaultModel)
    for child in model.models:
        if isinstance(child, LoadDependentFaults):
            return child
    raise AssertionError("no LoadDependentFaults on the engine")


@pytest.fixture(scope="module")
def stressed():
    result = cascade_result()
    return result, find_model(result.engine)


class TestFactory:
    def test_instance_passthrough(self):
        model = LoadDependentFaults()
        assert make_cascading(model) is model

    def test_true_means_defaults(self):
        model = make_cascading(True, seed=9)
        assert model.base_hazard == 1e-6
        assert model.seed == 9

    def test_dict_kwargs(self):
        model = make_cascading(
            {"base_hazard": 1e-4, "check_interval": 16}, seed=3
        )
        assert model.base_hazard == 1e-4
        assert model.check_interval == 16
        assert model.seed == 3

    def test_dict_seed_wins_over_default(self):
        assert make_cascading({"seed": 7}, seed=3).seed == 7

    def test_string_form(self):
        model = make_cascading(
            "base_hazard=1e-4,load_gain=6,repair_cycles=300", seed=1
        )
        assert model.base_hazard == pytest.approx(1e-4)
        assert model.load_gain == pytest.approx(6.0)
        assert model.repair_cycles == 300

    @pytest.mark.parametrize("text", ["", "cascade", "default"])
    def test_bare_strings_mean_defaults(self, text):
        model = make_cascading(text, seed=2)
        assert model.check_interval == 32 and model.seed == 2

    def test_malformed_string(self):
        with pytest.raises(ValueError, match="key=value"):
            make_cascading("base_hazard")

    def test_wrong_type(self):
        with pytest.raises(TypeError):
            make_cascading(42)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LoadDependentFaults(base_hazard=-1.0)
        with pytest.raises(ValueError):
            LoadDependentFaults(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            LoadDependentFaults(check_interval=0)
        with pytest.raises(ValueError):
            LoadDependentFaults(neighbor_boost=0.5)
        with pytest.raises(ValueError):
            LoadDependentFaults(max_dead_fraction=1.5)


class TestBoundaries:
    def test_next_event_math(self):
        model = LoadDependentFaults(check_interval=32)
        assert model.next_event(0) == 0
        assert model.next_event(64) == 64
        assert model.next_event(1) == 32
        assert model.next_event(33) == 64

    def test_off_boundary_cycles_are_pure_noops(self):
        model = LoadDependentFaults(check_interval=32)
        # network=None would crash on any real work; off-boundary
        # cycles must return before touching it.
        for now in (1, 5, 31, 33, 63):
            model.on_cycle(now, network=None)
        assert not model._bound and model.channel_faults == 0


class TestStressRun:
    """The cascade equivalence preset drives genuine cascades."""

    def test_faults_applied_and_tallied(self, stressed):
        _, model = stressed
        assert model.channel_faults > 0
        assert len(model.applied) == model.channel_faults
        check = model.check_interval
        assert all(now % check == 0 for now, _, _ in model.applied)

    def test_clusters_account_for_every_fault(self, stressed):
        _, model = stressed
        sizes = model.cluster_sizes()
        assert sum(sizes) == model.channel_faults
        assert model.cascade_events == sum(1 for s in sizes if s >= 2)

    def test_repairs_ran_on_boundaries(self, stressed):
        _, model = stressed
        assert model.repairs_done > 0
        check = model.check_interval
        assert all(due % check == 0 for due, _ in model._repairs)

    def test_connectivity_guard_held(self, stressed):
        _, model = stressed
        for node, dead in model._dead_out.items():
            assert dead <= model._out_degree[node] - 1
        for node, dead in model._dead_in.items():
            assert dead <= model._out_degree[node] - 1

    def test_outage_stays_bounded(self, stressed):
        _, model = stressed
        cap = max(
            1, int(model.max_dead_fraction * len(model._channels))
        )
        dead = sum(1 for c in model._channels if c.dead)
        assert dead <= cap

    def test_counters_mirrored_into_report(self, stressed):
        result, model = stressed
        report = result.report
        assert report["cascade_channel_faults"] == model.channel_faults
        assert report["cascade_events"] == model.cascade_events
        assert report["cascade_repairs"] == model.repairs_done
        assert report["cascade_clusters"] == len(model._clusters)

    def test_fault_sequence_is_deterministic(self, stressed):
        result, model = stressed
        rerun = cascade_result()
        assert find_model(rerun.engine).applied == model.applied
        assert dict(rerun.report) == dict(result.report)


class TestStatsBinding:
    def test_bind_stats_reaches_composite_children(self):
        class FakeStats:
            pass

        stats = FakeStats()
        child = LoadDependentFaults()
        composite = CompositeFaultModel([child])
        composite.bind_stats(stats)
        assert child.stats is stats

    def test_counting_without_stats_is_safe(self):
        model = LoadDependentFaults()
        model._count("cascade_events")  # no stats bound: no-op
