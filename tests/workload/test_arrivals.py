"""Arrival-process statistics: rates, tails, dwells, independence."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.workload.arrivals import (
    ARRIVAL_KINDS,
    BernoulliArrivals,
    GeometricArrivals,
    MMPPArrivals,
    ParetoArrivals,
    make_arrivals,
)

quick = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def empirical_rate(process, nodes=4, cycles=20000, seed=3):
    """Mean emits per node per cycle over a long window."""
    process.bind(nodes, seed)
    total = 0
    for now in range(cycles):
        for node in range(nodes):
            total += process.emits(node, now)
    return total / (nodes * cycles)


class TestFactory:
    def test_unknown_kind_lists_choices(self):
        with pytest.raises(ValueError) as excinfo:
            make_arrivals("bursty", 0.1)
        message = str(excinfo.value)
        for name in ARRIVAL_KINDS:
            assert name in message

    def test_poisson_aliases_geometric(self):
        assert isinstance(make_arrivals("poisson", 0.1),
                          GeometricArrivals)

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            make_arrivals("bernoulli", -0.1)
        with pytest.raises(ValueError):
            make_arrivals("geometric", 1.5)
        with pytest.raises(ValueError):
            ParetoArrivals(0.1, alpha=1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(0.1, mean_on=0.5)


class TestMeanRates:
    """Every process achieves its configured long-run mean rate."""

    @pytest.mark.parametrize("kind", ["bernoulli", "geometric", "mmpp"])
    def test_mean_rate_within_tolerance(self, kind):
        rate = 0.08
        measured = empirical_rate(make_arrivals(kind, rate))
        assert measured == pytest.approx(rate, rel=0.15)

    def test_pareto_mean_rate(self):
        # Heavy tails converge slowly; use a longer window and a
        # looser tolerance.
        rate = 0.08
        measured = empirical_rate(
            make_arrivals("pareto", rate, alpha=1.8), cycles=60000
        )
        assert measured == pytest.approx(rate, rel=0.3)

    def test_zero_rate_is_idle(self):
        for kind in ("bernoulli", "geometric", "pareto", "mmpp"):
            process = make_arrivals(kind, 0.0)
            assert process.idle()
            process.bind(2, 1)
            assert all(
                process.emits(node, now) == 0
                for now in range(50) for node in range(2)
            )

    @quick
    @given(
        rate=st.sampled_from([0.02, 0.05, 0.1, 0.2]),
        seed=st.integers(0, 2**16),
    )
    def test_geometric_rate_property(self, rate, seed):
        process = GeometricArrivals(rate)
        measured = empirical_rate(process, nodes=2, cycles=15000,
                                  seed=seed)
        assert measured == pytest.approx(rate, rel=0.2)


class TestParetoTail:
    """Pareto gaps are heavy-tailed: the sample max grows with n."""

    def gaps(self, process, count, seed=5):
        rng = random.Random(seed)
        return [process._gap(rng) for _ in range(count)]

    def test_sample_max_grows_superlinearly(self):
        process = ParetoArrivals(0.1, alpha=1.3)
        small = max(self.gaps(process, 100))
        large = max(self.gaps(process, 10000))
        # For alpha=1.3 the max of 100x more samples should be much
        # more than the light-tail ~log(100) factor larger.
        assert large > small * 5

    def test_heavier_than_geometric(self):
        # Same mean gap; the Pareto max dominates the geometric max.
        pareto = ParetoArrivals(0.1, alpha=1.3)
        geometric = GeometricArrivals(0.1)
        pareto_max = max(self.gaps(pareto, 5000))
        geometric_max = max(self.gaps(geometric, 5000))
        assert pareto_max > 3 * geometric_max

    def test_gap_floor_is_scale(self):
        process = ParetoArrivals(0.2, alpha=1.5)
        assert all(g >= process.xm for g in self.gaps(process, 1000))


class TestMMPPDwells:
    """ON/OFF dwell times follow the configured geometric means."""

    def dwell_runs(self, mean_on, mean_off, cycles=60000):
        process = MMPPArrivals(0.05, mean_on=mean_on, mean_off=mean_off)
        process.bind(1, 9)
        runs = {True: [], False: []}
        state = process._on[0]
        length = 0
        for now in range(cycles):
            process.emits(0, now)
            if process._on[0] == state:
                length += 1
            else:
                runs[state].append(length)
                state = process._on[0]
                length = 1
        return runs

    def test_dwell_means(self):
        runs = self.dwell_runs(mean_on=20.0, mean_off=60.0)
        assert len(runs[True]) > 100
        on_mean = sum(runs[True]) / len(runs[True])
        off_mean = sum(runs[False]) / len(runs[False])
        assert on_mean == pytest.approx(20.0, rel=0.25)
        assert off_mean == pytest.approx(60.0, rel=0.25)

    def test_silent_while_off(self):
        process = MMPPArrivals(0.1, mean_on=8.0, mean_off=24.0)
        process.bind(1, 4)
        for now in range(5000):
            was_off = not process._on[0]
            emitted = process.emits(0, now)
            still_off = not process._on[0]
            if was_off and still_off:
                assert emitted == 0

    def test_on_rate_boosted_over_duty_cycle(self):
        process = MMPPArrivals(0.1, mean_on=32.0, mean_off=96.0)
        assert process.rate_on == pytest.approx(0.4)


class TestPerNodeIndependence:
    """Node i's stream is a pure function of (seed, i)."""

    @pytest.mark.parametrize("kind", ["geometric", "pareto", "mmpp"])
    def test_stream_ignores_node_count(self, kind):
        # The same node produces the same arrival sequence whether it
        # shares the network with 3 or 15 other nodes.
        a = make_arrivals(kind, 0.1)
        b = make_arrivals(kind, 0.1)
        a.bind(4, seed=77)
        b.bind(16, seed=77)
        emits_a = [
            [a.emits(node, now) for node in range(4)]
            for now in range(2000)
        ]
        emits_b = [
            [b.emits(node, now) for node in range(4)]
            for now in range(2000)
        ]
        assert emits_a == emits_b

    def test_nodes_differ_under_one_seed(self):
        process = GeometricArrivals(0.1)
        process.bind(4, seed=77)
        sequences = {}
        for node in range(4):
            sequences[node] = tuple(
                process.emits(node, now) for now in range(3000)
            )
        assert len(set(sequences.values())) == 4

    def test_bernoulli_is_shared_stream(self):
        # The back-compat shim deliberately interleaves every node on
        # ONE stream, exactly like the legacy generator.
        process = BernoulliArrivals(0.5)
        process.bind(4, seed=3)
        reference = random.Random(3)
        for now in range(200):
            for node in range(4):
                expected = 0 if reference.random() >= 0.5 else 1
                assert process.emits(node, now) == expected
                assert process.rng_for(node) is process._rng

    @quick
    @given(seed=st.integers(0, 2**20))
    def test_binding_is_deterministic(self, seed):
        a = MMPPArrivals(0.1)
        b = MMPPArrivals(0.1)
        a.bind(6, seed)
        b.bind(6, seed)
        assert a._on == b._on and a._dwell == b._dwell


class TestSkipContract:
    """next_arrival names the next cycle for scheduled processes."""

    def test_renewal_next_arrival(self):
        process = GeometricArrivals(0.05)
        process.bind(3, 1)
        first = process.next_arrival(0)
        assert first >= 0
        # Nothing emits before the announced arrival cycle.
        for now in range(int(first)):
            assert all(
                process.emits(node, now) == 0 for node in range(3)
            )

    def test_per_cycle_processes_report_now(self):
        for kind in ("bernoulli", "mmpp"):
            process = make_arrivals(kind, 0.1)
            assert process.per_cycle_draws
            assert process.next_arrival(42) == 42

    def test_renewal_is_not_per_cycle(self):
        for kind in ("geometric", "pareto"):
            assert not make_arrivals(kind, 0.1).per_cycle_draws
