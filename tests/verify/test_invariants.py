"""The invariant checker itself: clean runs pass, planted faults trip.

The conformance suite proper (every registered mutation is caught) lives
in ``test_mutations.py``; this file covers the checker mechanics --
configuration coercion, hook wiring, the typed violation with its
forensic payload, and direct data-level fault injection that bypasses
the mutation registry.
"""

import pytest

from repro import (
    InvariantViolation,
    SimConfig,
    VerifyConfig,
    run_simulation,
    verify_preset,
)
from repro.obs.forensics import DeadlockReport
from repro.obs.tracing import config_for_experiment, trace_experiments
from repro.verify.invariants import InvariantChecker

#: quick-scale sizing shared by the preset replays below.
QUICK_PRESET = dict(radix=4, warmup=50, measure=300, drain=3000)


class TestVerifyConfig:
    def test_coerce_off(self):
        assert VerifyConfig.coerce(None) is None
        assert VerifyConfig.coerce(False) is None

    def test_coerce_on(self):
        assert VerifyConfig.coerce(True) == VerifyConfig()
        explicit = VerifyConfig(check_interval=8)
        assert VerifyConfig.coerce(explicit) is explicit

    def test_coerce_rejects_junk(self):
        with pytest.raises(TypeError):
            VerifyConfig.coerce("yes")

    def test_validation(self):
        with pytest.raises(ValueError):
            VerifyConfig(check_interval=0)
        with pytest.raises(ValueError):
            VerifyConfig(progress_limit=0)

    def test_stable_for_cache_keys(self):
        """The frozen dataclass reprs stably (the sweep cache and the
        campaign store fold SimConfig reprs into point hashes)."""
        a, b = VerifyConfig(check_interval=8), VerifyConfig(check_interval=8)
        assert a == b and repr(a) == repr(b)


class TestWiring:
    def test_disabled_by_default(self):
        engine = SimConfig(radix=4, warmup=10, measure=50).build()
        assert engine.checker is None

    def test_armed_by_flag(self):
        engine = SimConfig(radix=4, warmup=10, measure=50, verify=True).build()
        assert isinstance(engine.checker, InvariantChecker)

    def test_report_carries_summary(self):
        config = SimConfig(
            radix=4, load=0.2, warmup=50, measure=200, drain=2000,
            verify=VerifyConfig(check_interval=16),
        )
        result = run_simulation(config)
        summary = result.report["verify"]
        assert summary["checks"] > 0
        assert summary["flits_consumed"] > 0
        assert summary["commits_checked"] > 0

    def test_unknown_mutation_fails_at_build(self):
        config = SimConfig(
            radix=4, verify=VerifyConfig(mutation="not-a-mutation")
        )
        with pytest.raises(ValueError, match="unknown mutation"):
            config.build()


class TestPresetConformance:
    """The acceptance bar: every experiment preset runs clean under
    full checking at quick scale."""

    @pytest.mark.parametrize("experiment", ["e01", "e02", "e03"])
    def test_core_presets_hold_all_invariants(self, experiment):
        outcome = verify_preset(experiment, overrides=QUICK_PRESET)
        assert outcome.ok, f"{experiment}: {outcome.violation}"
        assert outcome.drained
        assert outcome.checks > 0
        assert outcome.delivered > 0

    def test_all_presets_known(self):
        assert {"e01", "e02", "e03"} <= set(trace_experiments())


class TestDirectFaultInjection:
    """Perturb live engine state and watch the matching checker fire."""

    def _run_engine(self):
        config = SimConfig(
            radix=4, load=0.25, warmup=0, measure=400,
            verify=VerifyConfig(check_interval=1 << 20),
        )
        engine = config.build()
        engine.run(200)
        return engine

    def test_stolen_credit_trips_credit_accounting(self):
        engine = self._run_engine()
        channel = next(
            c for c in engine._all_channels
            if not c.is_ejection and c.credits[0] > 0
        )
        channel.credits[0] -= 1
        with pytest.raises(InvariantViolation) as exc:
            engine.checker.check_all(engine.now)
        assert exc.value.invariant == "credits"

    def test_vanished_flit_trips_conservation(self):
        engine = self._run_engine()
        buffer = next(
            b
            for router in engine.routers
            for port_buffers in router.in_buffers
            for b in port_buffers
            if b.fifo
        )
        buffer.fifo.popleft()
        with pytest.raises(InvariantViolation) as exc:
            engine.checker.check_all(engine.now)
        # The lost flit unbalances both ledgers; conservation sweeps
        # first.
        assert exc.value.invariant == "conservation"

    def test_violation_carries_forensics(self):
        engine = self._run_engine()
        engine.stats.counters["flits_injected"] += 1
        with pytest.raises(InvariantViolation) as exc:
            engine.checker.check_all(engine.now)
        violation = exc.value
        assert isinstance(violation, AssertionError)
        assert isinstance(violation.report, DeadlockReport)
        assert violation.cycle == engine.now
        text = str(violation)
        assert "[conservation]" in text
        # The DeadlockReport bundle is rendered into the message.
        assert violation.report.format() in text


class TestCampaignVerifyPlumbing:
    def _spec(self):
        from repro.campaign import CampaignSpec

        return CampaignSpec.from_dict({
            "name": "verify-plumbing",
            "description": "two tiny points for the --verify plumbing",
            "base": {
                "routing": "cr", "radix": 4, "warmup": 20,
                "measure": 100, "drain": 1500, "message_length": 8,
            },
            "axes": {"load": [0.1, 0.2]},
            "metrics": ["latency_mean", "verify"],
        })

    def test_run_campaign_arms_points(self, tmp_path):
        from repro.campaign import CampaignStore, run_campaign

        with CampaignStore(str(tmp_path / "c.db")) as store:
            stats = run_campaign(self._spec(), store, verify=True)
            assert stats.complete
            points = store.points("verify-plumbing", status="ok")
        assert len(points) == 2
        for point in points:
            assert point["report"]["verify"]["checks"] > 0

    def test_verify_changes_point_hashes(self, tmp_path):
        """Resuming an unverified campaign with --verify re-runs its
        points instead of skipping them (the hash embeds the flag)."""
        from repro.campaign import CampaignStore, run_campaign

        with CampaignStore(str(tmp_path / "c.db")) as store:
            first = run_campaign(self._spec(), store)
            assert first.ran == 2
            second = run_campaign(self._spec(), store, verify=True)
            assert second.ran == 2 and second.skipped == 0
            third = run_campaign(self._spec(), store, verify=True)
            assert third.skipped == 2
