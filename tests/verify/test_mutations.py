"""Differential conformance: every seeded protocol bug must be caught.

This is the oracle that keeps the invariant checkers honest: for each
mutation in :mod:`repro.verify.mutations` there is a tuned configuration
under which the mutated simulator trips the expected checker, while the
same configuration unmutated sails through every invariant.  A checker
silently weakened by a future refactor fails this suite, not a user.

Adding a mutation without a config here fails
``test_every_mutation_has_a_tuned_config``.
"""

import pytest

from repro import InvariantViolation, SimConfig, VerifyConfig, run_simulation
from repro.core.timeout import FixedTimeout
from repro.verify.mutations import MUTATIONS, apply_mutation, mutation_names


def _base(**overrides) -> dict:
    params = dict(
        routing="cr", radix=4, dims=2, load=0.3, message_length=16,
        warmup=50, measure=400, drain=3000, seed=42,
    )
    params.update(overrides)
    return params


#: mutation name -> (SimConfig kwargs, VerifyConfig kwargs) tuned so the
#: planted bug manifests quickly and deterministically.
TUNED = {
    "credit-loss": (_base(), {}),
    "credit-double-return": (_base(), {}),
    "eject-credit-leak": (_base(), {}),
    "double-delivery": (_base(), {}),
    "padding-shortfall": (_base(), {}),
    # Kill-path bugs need kill traffic: high load, short timeout.
    "kill-skip-hop": (_base(timeout=FixedTimeout(8)), {}),
    "kill-leaves-flit": (_base(load=0.45, timeout=FixedTimeout(8)), {}),
    # Liveness bugs need a run that actually deadlocks once the
    # protocol's escape hatch is sabotaged.
    "timeout-disabled": (
        _base(
            load=0.6, message_length=12, num_vcs=1,
            warmup=0, measure=2500, drain=2000,
        ),
        {"progress_limit": 1000},
    ),
    "dateline-skip": (
        _base(
            routing="dor", num_vcs=2, load=0.3, message_length=8,
            warmup=0, measure=4000, drain=2000,
        ),
        {"progress_limit": 1500},
    ),
}


#: both engines must expose identical mutation/checker behaviour — the
#: fast engine's inline paths defer to instance-patched methods, so a
#: planted bug manifests (and is caught) the same way under each.
ENGINES = ("reference", "fast")


def _config(name: str, mutated: bool, engine: str = "reference") -> SimConfig:
    sim_kwargs, verify_kwargs = TUNED[name]
    return SimConfig(
        engine=engine,
        **sim_kwargs,
        verify=VerifyConfig(
            check_interval=16,
            mutation=name if mutated else None,
            **verify_kwargs,
        ),
    )


class TestRegistry:
    def test_at_least_eight_mutations(self):
        assert len(MUTATIONS) >= 8

    def test_every_mutation_has_a_tuned_config(self):
        assert set(TUNED) == set(mutation_names())

    def test_unknown_mutation_rejected(self):
        engine = SimConfig(radix=4).build()
        with pytest.raises(ValueError, match="unknown mutation"):
            apply_mutation(engine, "no-such-bug")

    def test_registry_entries_are_described(self):
        for mutation in MUTATIONS.values():
            assert mutation.description
            assert mutation.caught_by in (
                "conservation", "credits", "kill-protocol", "padding",
                "liveness", "quiescence",
            )


class TestDifferentialOracle:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", sorted(TUNED))
    def test_mutation_is_caught(self, name, engine):
        with pytest.raises(InvariantViolation) as exc:
            run_simulation(_config(name, mutated=True, engine=engine))
        assert exc.value.invariant == MUTATIONS[name].caught_by
        assert exc.value.report is not None

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("name", sorted(TUNED))
    def test_unmutated_twin_passes(self, name, engine):
        """The exact same configuration without the planted bug holds
        every invariant (the differential half of the oracle)."""
        result = run_simulation(_config(name, mutated=False, engine=engine))
        assert result.report["verify"]["checks"] > 0
