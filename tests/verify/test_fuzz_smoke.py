"""Seeded configuration-fuzz smoke: random configs under full checking.

The corpus is deterministic per seed: CI runs the fixed default seed on
every push, and the nightly workflow rotates ``CR_FUZZ_SEED`` (set to
the date) so the config space keeps getting new coverage without ever
producing an unreproducible failure.  When a case fails, the message
carries the exact command that replays it locally.
"""

import os

import pytest

from repro.sim.parallel import config_cache_key
from repro.verify.fuzz import (
    DEFAULT_CASES,
    DEFAULT_SEED,
    fuzz_config,
    repro_command,
    run_fuzz_case,
)

SEED = int(os.environ.get("CR_FUZZ_SEED", str(DEFAULT_SEED)))


class TestCorpusDeterminism:
    def test_same_seed_same_corpus(self):
        for index in range(5):
            assert config_cache_key(
                fuzz_config(SEED, index)
            ) == config_cache_key(fuzz_config(SEED, index))

    def test_cases_differ(self):
        keys = {
            config_cache_key(fuzz_config(SEED, index))
            for index in range(DEFAULT_CASES)
        }
        assert len(keys) > 1

    def test_every_case_is_armed(self):
        for index in range(DEFAULT_CASES):
            assert fuzz_config(SEED, index).verify is not None


@pytest.mark.parametrize("index", range(DEFAULT_CASES))
def test_fuzz_case_holds_all_invariants(index):
    config = fuzz_config(SEED, index)
    label = (
        f"fuzz case {index}: {config.routing} on {config.radix}-ary "
        f"{config.dims}-{config.topology}, load {config.load}"
    )
    try:
        result = run_fuzz_case(SEED, index)
    except Exception as exc:  # noqa: BLE001 - any failure must repro
        pytest.fail(
            f"{label} failed: {exc}\n"
            f"reproduce with: {repro_command(SEED, index)}"
        )
    summary = result.report["verify"]
    assert summary["checks"] > 0, label
