"""Deadlock forensics: the bundle attached to NetworkDeadlockError."""

import json

import pytest

from repro import (
    Engine,
    FirstFree,
    Message,
    MinimalAdaptive,
    NetworkDeadlockError,
    ProtocolConfig,
    ProtocolMode,
    WormholeNetwork,
    attach,
    torus,
)
from repro.obs import DeadlockReport, RingBufferSink
from repro.obs.forensics import find_cycle


def deadlocking_engine(watchdog=300):
    """A 4-node PLAIN ring whose worms provably wedge in a cycle.

    Each node sends a 40-flit worm two hops round the ring with a
    single VC and shallow buffers: every head ends up waiting on the
    channel its neighbour's worm holds, and PLAIN mode has no kill
    mechanism to break the cycle.
    """
    topology = torus(4, 1)
    network = WormholeNetwork(
        topology, MinimalAdaptive(topology), FirstFree(),
        num_vcs=1, buffer_depth=2,
    )
    engine = Engine(
        network, protocol=ProtocolConfig(mode=ProtocolMode.PLAIN),
        seed=0, watchdog=watchdog,
    )
    for src in range(4):
        engine.admit(Message(src, (src + 2) % 4, 40, seq=src))
    return engine


def wedge(engine, limit=2000):
    with pytest.raises(NetworkDeadlockError) as excinfo:
        for _ in range(limit):
            engine.step()
    return excinfo.value


class TestDeadlockReport:
    def test_error_carries_the_forensic_bundle(self):
        # Regression: the watchdog must attach a report, not just a
        # "no progress" string.
        err = wedge(deadlocking_engine())
        assert isinstance(err.report, DeadlockReport)
        assert err.report.watchdog == 300
        assert err.report.routing == "minimal_adaptive"
        assert err.report.protocol == "plain"
        assert err.report.live_messages == 4

    def test_wait_for_graph_closes_a_cycle(self):
        report = wedge(deadlocking_engine()).report
        assert report.wait_for, "no wait-for edges recorded"
        uids = {edge["uid"] for edge in report.wait_for}
        assert sorted(report.cycle_uids) == sorted(
            set(report.cycle_uids)
        )
        assert set(report.cycle_uids) <= uids
        assert len(report.cycle_uids) >= 2
        for edge in report.wait_for:
            assert edge["kind"] in {
                "vc-allocation", "credit", "dead-channel",
                "ejection-credit",
            }

    def test_stalled_injectors_are_listed(self):
        report = wedge(deadlocking_engine()).report
        assert report.stalled_injectors
        for entry in report.stalled_injectors:
            assert entry["stall"] > 0

    def test_format_and_exception_text(self):
        err = wedge(deadlocking_engine())
        text = err.report.format()
        assert "deadlock forensics" in text
        assert "dependency cycle" in text
        # The rendered bundle rides the exception message too, so a bare
        # traceback is already diagnosable.
        assert "wait-for graph" in str(err)

    def test_to_dict_is_json_serialisable(self):
        report = wedge(deadlocking_engine()).report
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["cycle"] == report.cycle
        assert len(payload["wait_for"]) == len(report.wait_for)

    def test_recent_events_come_from_an_attached_ring(self):
        engine = deadlocking_engine()
        attach(engine, RingBufferSink(capacity=32))
        report = wedge(engine).report
        assert report.recent_events
        assert all("event" in e and "cycle" in e
                   for e in report.recent_events)

    def test_no_ring_means_no_recent_events(self):
        report = wedge(deadlocking_engine()).report
        assert report.recent_events == []


class TestFindCycle:
    def edges(self, pairs):
        return [{"uid": a, "node": 0, "waits_on": b, "kind": "credit"}
                for a, b in pairs]

    def test_simple_ring(self):
        cycle = find_cycle(self.edges([(1, 2), (2, 3), (3, 1)]))
        assert sorted(cycle) == [1, 2, 3]

    def test_chain_has_no_cycle(self):
        assert find_cycle(self.edges([(1, 2), (2, 3)])) == []

    def test_self_loop(self):
        assert find_cycle(self.edges([(5, 5)])) == [5]

    def test_cycle_behind_a_tail(self):
        # 0 -> 1 -> 2 -> 1: the cycle excludes the entry node.
        cycle = find_cycle(self.edges([(0, 1), (1, 2), (2, 1)]))
        assert sorted(cycle) == [1, 2]

    def test_none_targets_are_ignored(self):
        edges = self.edges([(1, 2)]) + [
            {"uid": 2, "node": 0, "waits_on": None, "kind": "dead-channel"}
        ]
        assert find_cycle(edges) == []
