"""Engine self-profiler: guard discipline, attribution, exports."""

import pytest

from repro import SimConfig, run_simulation
from repro.obs.profile import (
    PHASES,
    EngineProfiler,
    attach_profiler,
    detach_profiler,
)


def quick_config(**overrides):
    params = dict(
        radix=4, dims=2, routing="cr", load=0.2, message_length=8,
        warmup=50, measure=300, drain=2000, seed=7,
    )
    params.update(overrides)
    return SimConfig(**params)


class TestGuardDiscipline:
    def test_default_engine_is_unprofiled(self):
        engine = quick_config().build()
        assert engine.profiler is None

    def test_config_profile_true_arms_the_profiler(self):
        engine = quick_config(profile=True).build()
        assert engine.profiler is not None
        assert engine.profiler.snapshot_interval == 0

    def test_config_profile_int_sets_snapshot_interval(self):
        engine = quick_config(profile=50).build()
        assert engine.profiler.snapshot_interval == 50

    def test_attach_detach_round_trip(self):
        engine = quick_config().build()
        profiler = attach_profiler(engine, snapshot_interval=10)
        assert engine.profiler is profiler
        assert detach_profiler(engine) is profiler
        assert engine.profiler is None

    def test_negative_snapshot_interval_rejected(self):
        with pytest.raises(ValueError):
            EngineProfiler(snapshot_interval=-1)


class TestDeterminism:
    def test_profiled_run_reproduces_the_unprofiled_report(self):
        # Profiling must only *observe*: the simulation outcome, flit
        # for flit, is identical with and without the profiler armed.
        plain = run_simulation(quick_config())
        profiled = run_simulation(quick_config(profile=True))
        profiled_report = dict(profiled.report)
        profile = profiled_report.pop("profile")
        assert profiled_report == plain.report
        assert profile["cycles"] == profiled.cycles_run


class TestAttribution:
    def test_phase_sum_bounded_by_step_total(self):
        result = run_simulation(quick_config(profile=True),
                                keep_engine=True)
        profiler = result.engine.profiler
        # Timer + glue overhead lands in the gap, never in a phase.
        assert 0 < profiler.phase_wall_ns() <= profiler.step_wall_ns

    def test_every_cycle_phases_called_once(self):
        result = run_simulation(quick_config(profile=True),
                                keep_engine=True)
        profiler = result.engine.profiler
        cycles = result.cycles_run
        assert profiler.cycles == cycles
        # Unconditional phases run every cycle; optional subsystems
        # that were never attached must show zero calls.
        for name in ("credit", "arrival", "ejection", "kill",
                     "injection", "routing", "switch", "monitor"):
            assert profiler.phases[name].calls == cycles
        assert profiler.phases["fault"].calls == 0
        assert profiler.phases["sampler"].calls == 0
        assert profiler.phases["checker"].calls == 0

    def test_optional_phases_counted_when_attached(self):
        result = run_simulation(
            quick_config(profile=True, sample_interval=50,
                         fault_rate=1e-4),
            keep_engine=True,
        )
        profiler = result.engine.profiler
        assert profiler.phases["sampler"].calls == result.cycles_run
        assert profiler.phases["fault"].calls == result.cycles_run

    def test_summary_shares_sum_below_one(self):
        result = run_simulation(quick_config(profile=True))
        summary = result.report["profile"]
        assert set(summary["phases"]) == set(PHASES)
        total_share = sum(
            entry["share"] for entry in summary["phases"].values()
        )
        assert 0 < total_share <= 1.0
        assert summary["phase_wall_ns"] <= summary["step_wall_ns"]


class TestExports:
    def test_hotspot_rows_sorted_hottest_first(self):
        result = run_simulation(quick_config(profile=True),
                                keep_engine=True)
        rows = result.engine.profiler.hotspot_rows()
        assert [r["phase"] for r in rows] != []
        walls = [r["wall_ms"] for r in rows]
        assert walls == sorted(walls, reverse=True)
        assert {r["phase"] for r in rows} == set(PHASES)

    def test_hotspot_markdown_shape(self):
        result = run_simulation(quick_config(profile=True),
                                keep_engine=True)
        text = result.engine.profiler.hotspot_markdown()
        assert text.startswith("# Engine phase hotspots")
        assert "| phase | calls |" in text
        # One table row per phase.
        assert sum(
            1 for line in text.splitlines()
            if line.startswith("| ") and not line.startswith("| phase")
            and not line.startswith("| ---")
        ) == len(PHASES)

    def test_counter_track_events_from_snapshots(self):
        result = run_simulation(quick_config(profile=100),
                                keep_engine=True)
        profiler = result.engine.profiler
        assert profiler.snapshots, "snapshot interval produced no rows"
        events = profiler.counter_track_events()
        assert events
        for event in events:
            assert event["ph"] == "C"
            assert event["name"] == "engine phase wall µs"
            assert event["args"]
            assert set(event["args"]) <= set(PHASES)
        # Snapshot timestamps land on interval boundaries.
        assert all(event["ts"] % 100 == 0 for event in events)

    def test_no_snapshots_means_no_counter_track(self):
        result = run_simulation(quick_config(profile=True),
                                keep_engine=True)
        assert result.engine.profiler.counter_track_events() == []

    def test_run_traced_merges_counter_track_into_perfetto(self, tmp_path):
        import json

        from repro.obs import run_traced

        path = str(tmp_path / "t.perfetto.json")
        traced = run_traced(
            quick_config(), perfetto_path=path, profile=100
        )
        assert traced.profiler is not None
        with open(path) as handle:
            entries = json.load(handle)["traceEvents"]
        counters = [e for e in entries if e.get("ph") == "C"]
        assert counters
        assert traced.perfetto_entries == len(entries)
