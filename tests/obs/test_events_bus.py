"""Event taxonomy, the subscriber bus, and attach/detach lifecycle."""

import dataclasses

import pytest

from repro import SimConfig, attach, detach
from repro.obs import ListSink, RingBufferSink
from repro.obs.events import (
    EVENT_TYPES,
    Event,
    EventBus,
    InjectionStarted,
    KillStarted,
    MessageCreated,
    MessageDelivered,
    event_to_dict,
)


def small_config(**overrides):
    params = dict(
        radix=4, dims=2, routing="cr", load=0.2, message_length=8,
        warmup=50, measure=300, drain=3000, seed=2,
    )
    params.update(overrides)
    return SimConfig(**params)


class TestEventTypes:
    def test_every_type_subclasses_event_with_cycle_first(self):
        for cls in EVENT_TYPES:
            assert issubclass(cls, Event)
            fields = dataclasses.fields(cls)
            assert fields[0].name == "cycle"

    def test_events_are_frozen(self):
        event = MessageCreated(5, uid=1, src=0, dst=3, payload_length=8)
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.cycle = 6

    def test_event_to_dict_is_flat_and_named(self):
        event = KillStarted(12, uid=7, cause="timeout", backward=True,
                            wavefront_extent=3)
        out = event_to_dict(event)
        assert out == {
            "event": "KillStarted", "cycle": 12, "uid": 7,
            "cause": "timeout", "backward": True, "wavefront_extent": 3,
        }

    def test_type_names_are_unique(self):
        names = [cls.__name__ for cls in EVENT_TYPES]
        assert len(names) == len(set(names))


class TestEventBus:
    def test_emit_fans_out_in_subscription_order(self):
        bus = EventBus()
        seen = []

        class Recorder:
            def __init__(self, tag):
                self.tag = tag

            def on_event(self, event):
                seen.append((self.tag, event))

        bus.subscribe(Recorder("a"))
        bus.subscribe(Recorder("b"))
        event = MessageCreated(0, uid=1, src=0, dst=1, payload_length=4)
        bus.emit(event)
        assert seen == [("a", event), ("b", event)]

    def test_subscribe_is_idempotent(self):
        bus = EventBus()
        sink = ListSink()
        bus.subscribe(sink)
        bus.subscribe(sink)
        assert len(bus) == 1
        bus.emit(MessageCreated(0, uid=1, src=0, dst=1, payload_length=4))
        assert len(sink.events) == 1

    def test_unsubscribe_removes_sink(self):
        bus = EventBus()
        sink = ListSink()
        bus.subscribe(sink)
        bus.unsubscribe(sink)
        assert len(bus) == 0
        bus.unsubscribe(sink)  # removing twice is harmless


class TestAttachDetach:
    def test_untraced_engine_has_no_bus(self):
        engine = small_config().build()
        assert engine.bus is None
        assert engine.sampler is None

    def test_attach_installs_bus_and_detach_removes_it(self):
        engine = small_config().build()
        sink = ListSink()
        bus = attach(engine, sink)
        assert engine.bus is bus
        assert sink in bus.sinks
        detach(engine)
        assert engine.bus is None

    def test_attach_twice_reuses_the_bus(self):
        engine = small_config().build()
        first, second = ListSink(), ListSink()
        bus = attach(engine, first)
        assert attach(engine, second) is bus
        assert bus.sinks == [first, second]


class TestLiveEmission:
    def test_run_emits_lifecycle_events_in_cycle_order(self):
        engine = small_config().build()
        sink = ListSink()
        attach(engine, sink)
        engine.run(350)
        engine.run_until_drained(3000)
        kinds = {type(e).__name__ for e in sink.events}
        assert {"MessageCreated", "InjectionStarted", "MessageCommitted",
                "MessageDelivered"} <= kinds
        cycles = [e.cycle for e in sink.events]
        assert cycles == sorted(cycles)

    def test_delivery_events_match_the_counter(self):
        engine = small_config().build()
        sink = ListSink()
        attach(engine, sink)
        engine.run(350)
        engine.run_until_drained(3000)
        delivered = [e for e in sink.events
                     if isinstance(e, MessageDelivered)]
        assert len(delivered) == engine.stats.counters["messages_delivered"]

    def test_injection_events_carry_wire_length(self):
        engine = small_config().build()
        sink = ListSink()
        attach(engine, sink)
        engine.run(350)
        starts = [e for e in sink.events
                  if isinstance(e, InjectionStarted)]
        assert starts
        # CR pads to at least the payload length.
        assert all(e.wire_length >= 8 for e in starts)

    def test_ring_buffer_sees_everything_a_list_sink_sees(self):
        engine = small_config().build()
        sink, ring = ListSink(), RingBufferSink(capacity=10)
        attach(engine, sink, ring)
        engine.run(350)
        assert ring.seen == len(sink.events)
        assert ring.events == sink.events[-10:]
