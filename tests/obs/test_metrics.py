"""Metrics registry: types, exposition format, round-trip, publisher."""

import math

import pytest

from repro import SimConfig, run_simulation
from repro.obs.metrics import (
    COUNTER_HELP,
    LATENCY_BUCKETS,
    WALL_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    engine_metrics,
    parse_prometheus_text,
)


def finished_engine(**overrides):
    params = dict(
        radix=4, dims=2, routing="cr", load=0.2, message_length=8,
        warmup=50, measure=300, drain=2000, seed=11,
    )
    params.update(overrides)
    return run_simulation(SimConfig(**params), keep_engine=True).engine


class TestPrimitives:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram(buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]
        assert hist.inf_count == 1
        assert hist.count == 4
        assert hist.sum == 555.5
        lines = hist.sample_lines("h", ())
        assert 'h_bucket{le="1"} 1' in lines
        assert 'h_bucket{le="100"} 3' in lines
        assert 'h_bucket{le="+Inf"} 4' in lines
        assert "h_count 4" in lines

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 5.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(10.0, 1.0))


class TestRegistry:
    def test_same_name_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", "Hits.")
        second = registry.counter("hits")
        assert first is second

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing", "A thing.")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_labels_partition_instances(self):
        registry = MetricsRegistry()
        ok = registry.counter("points", "Points.",
                              labels={"outcome": "ok"})
        failed = registry.counter("points",
                                  labels={"outcome": "failed"})
        assert ok is not failed
        ok.inc(3)
        text = registry.prometheus_text()
        assert 'points{outcome="ok"} 3' in text
        assert 'points{outcome="failed"} 0' in text

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(prefix="bad prefix ")
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("no spaces allowed")
        with pytest.raises(ValueError):
            registry.counter("ok", labels={"bad-label": "x"})

    def test_prefix_applies_to_every_family(self):
        registry = MetricsRegistry(prefix="cr_")
        registry.counter("kills_total", "Kills.")
        assert registry.names() == ["cr_kills_total"]

    def test_families_lists_name_type_help(self):
        registry = MetricsRegistry()
        registry.counter("a", "Help A.")
        registry.histogram("b", "Help B.", buckets=(1.0,))
        assert registry.families() == [
            ("a", "counter", "Help A."),
            ("b", "histogram", "Help B."),
        ]

    def test_write_prometheus_and_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("writes", "Writes.").inc(7)
        prom = tmp_path / "deep" / "m.prom.txt"
        text = registry.write_prometheus(str(prom))
        assert prom.read_text() == text
        snap = registry.write_json(str(tmp_path / "m.json"))
        assert snap["writes"]["values"][""] == 7.0


class TestRoundTrip:
    def test_every_family_survives_parse(self):
        engine = finished_engine()
        registry = engine_metrics(engine)
        parsed = parse_prometheus_text(registry.prometheus_text())
        for name, kind, help_text in registry.families():
            assert name in parsed, f"family {name} lost in round-trip"
            assert parsed[name]["type"] == kind
            assert parsed[name]["help"] == help_text

    def test_counter_values_survive_parse(self):
        engine = finished_engine()
        registry = engine_metrics(engine)
        parsed = parse_prometheus_text(registry.prometheus_text())
        delivered = engine.stats.counters["messages_delivered"]
        assert (parsed["cr_messages_delivered_total"]["samples"]
                ["cr_messages_delivered_total"] == delivered)

    def test_histogram_samples_attributed_to_family(self):
        engine = finished_engine()
        parsed = parse_prometheus_text(
            engine_metrics(engine).prometheus_text()
        )
        family = parsed["cr_message_latency_cycles"]
        assert family["type"] == "histogram"
        samples = family["samples"]
        measured = len(engine.stats.total_latencies)
        assert measured > 0
        assert samples["cr_message_latency_cycles_count"] == measured
        inf_key = 'cr_message_latency_cycles_bucket{le="+Inf"}'
        assert samples[inf_key] == measured
        # Cumulative buckets never decrease toward +Inf.
        bounds = [f'cr_message_latency_cycles_bucket{{le="{b:g}"}}'
                  for b in LATENCY_BUCKETS]
        values = [samples[k] for k in bounds if k in samples]
        assert values == sorted(values)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparsable"):
            parse_prometheus_text("this is not prometheus\n")

    def test_inf_value_parses(self):
        parsed = parse_prometheus_text("x 1\ny +Inf\n")
        assert parsed["y"]["samples"]["y"] == math.inf


class TestEnginePublisher:
    def test_every_stats_counter_published(self):
        engine = finished_engine()
        registry = engine_metrics(engine)
        names = set(registry.names())
        for counter in engine.stats.counters:
            if counter.startswith("kills_"):
                assert "cr_kills_by_cause_total" in names
            else:
                assert f"cr_{counter}_total" in names

    def test_declared_help_used(self):
        engine = finished_engine()
        families = dict(
            (name, help_text)
            for name, _, help_text in engine_metrics(engine).families()
        )
        for counter, help_text in COUNTER_HELP.items():
            name = f"cr_{counter}_total"
            if name in families:
                assert families[name] == help_text

    def test_kill_causes_fold_into_labelled_family(self):
        engine = finished_engine(load=0.4)
        counters = engine.stats.counters
        causes = {name[len("kills_"):]: counters[name]
                  for name in counters if name.startswith("kills_")}
        assert causes, "run produced no kill causes to fold"
        text = engine_metrics(engine).prometheus_text()
        for cause, count in causes.items():
            assert (f'cr_kills_by_cause_total{{cause="{cause}"}} '
                    f"{count:g}" in text)

    def test_latency_histogram_matches_stats(self):
        engine = finished_engine()
        registry = engine_metrics(engine)
        hist = registry.histogram("message_latency_cycles")
        assert hist.count == len(engine.stats.total_latencies)
        assert hist.sum == pytest.approx(
            sum(engine.stats.total_latencies)
        )

    def test_gauges_zero_after_full_drain(self):
        engine = finished_engine()
        registry = engine_metrics(engine)
        assert registry.gauge("live_messages").value == 0
        assert registry.gauge("in_flight_worms").value == 0
        assert registry.gauge("buffer_occupancy_flits").value == 0
        assert registry.gauge("cycle").value == engine.now

    def test_new_hook_counters_are_live(self):
        engine = finished_engine()
        counters = engine.stats.counters
        assert counters["flits_ejected"] > 0
        assert counters["kill_segments_flushed"] >= 0
        # Ejected flits account for everything delivered.
        assert (counters["flits_ejected"]
                >= counters["payload_flits_delivered"])

    def test_wall_time_buckets_shape(self):
        assert list(WALL_TIME_BUCKETS) == sorted(WALL_TIME_BUCKETS)
        assert WALL_TIME_BUCKETS[0] < 1.0 < WALL_TIME_BUCKETS[-1]
