"""Metrics registry: types, exposition format, round-trip, publisher."""

import math
import threading

import pytest

from repro import SimConfig, run_simulation
from repro.obs.metrics import (
    COUNTER_HELP,
    LATENCY_BUCKETS,
    WALL_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    engine_metrics,
    parse_prometheus_text,
)


def finished_engine(**overrides):
    params = dict(
        radix=4, dims=2, routing="cr", load=0.2, message_length=8,
        warmup=50, measure=300, drain=2000, seed=11,
    )
    params.update(overrides)
    return run_simulation(SimConfig(**params), keep_engine=True).engine


class TestPrimitives:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0

    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram(buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]
        assert hist.inf_count == 1
        assert hist.count == 4
        assert hist.sum == 555.5
        lines = hist.sample_lines("h", ())
        assert 'h_bucket{le="1"} 1' in lines
        assert 'h_bucket{le="100"} 3' in lines
        assert 'h_bucket{le="+Inf"} 4' in lines
        assert "h_count 4" in lines

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 5.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(10.0, 1.0))


class TestRegistry:
    def test_same_name_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", "Hits.")
        second = registry.counter("hits")
        assert first is second

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing", "A thing.")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_labels_partition_instances(self):
        registry = MetricsRegistry()
        ok = registry.counter("points", "Points.",
                              labels={"outcome": "ok"})
        failed = registry.counter("points",
                                  labels={"outcome": "failed"})
        assert ok is not failed
        ok.inc(3)
        text = registry.prometheus_text()
        assert 'points{outcome="ok"} 3' in text
        assert 'points{outcome="failed"} 0' in text

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(prefix="bad prefix ")
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("no spaces allowed")
        with pytest.raises(ValueError):
            registry.counter("ok", labels={"bad-label": "x"})

    def test_prefix_applies_to_every_family(self):
        registry = MetricsRegistry(prefix="cr_")
        registry.counter("kills_total", "Kills.")
        assert registry.names() == ["cr_kills_total"]

    def test_families_lists_name_type_help(self):
        registry = MetricsRegistry()
        registry.counter("a", "Help A.")
        registry.histogram("b", "Help B.", buckets=(1.0,))
        assert registry.families() == [
            ("a", "counter", "Help A."),
            ("b", "histogram", "Help B."),
        ]

    def test_write_prometheus_and_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("writes", "Writes.").inc(7)
        prom = tmp_path / "deep" / "m.prom.txt"
        text = registry.write_prometheus(str(prom))
        assert prom.read_text() == text
        snap = registry.write_json(str(tmp_path / "m.json"))
        assert snap["writes"]["values"][""] == 7.0


class TestHistogramEdges:
    def test_value_on_exact_bound_lands_in_that_bucket(self):
        # Prometheus `le` is inclusive: observe(10.0) counts in le="10".
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(10.0)
        assert hist.counts == [0, 1]
        assert hist.inf_count == 0
        assert 'h_bucket{le="10"} 1' in hist.sample_lines("h", ())

    def test_value_above_every_bound_lands_in_inf(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(10.0000001)
        assert hist.counts == [0, 0]
        assert hist.inf_count == 1
        assert 'h_bucket{le="+Inf"} 1' in hist.sample_lines("h", ())

    def test_negative_observation_lands_in_the_first_bucket(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(-5.0)
        assert hist.counts == [1, 0]
        assert hist.sum == -5.0
        assert hist.count == 1

    def test_json_and_prometheus_agree(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "Latency.",
                                  buckets=(1.0, 10.0, 100.0))
        for value in (-1.0, 1.0, 10.0, 99.0, 1e9):
            hist.observe(value)
        snap = registry.snapshot()["lat"]["values"][""]
        # JSON keeps per-bucket counts (+Inf last); text is cumulative.
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        parsed = parse_prometheus_text(registry.prometheus_text())
        samples = parsed["lat"]["samples"]
        assert samples['lat_bucket{le="1"}'] == 2
        assert samples['lat_bucket{le="10"}'] == 3
        assert samples['lat_bucket{le="100"}'] == 4
        assert samples['lat_bucket{le="+Inf"}'] == 5
        assert samples["lat_count"] == 5
        assert samples["lat_sum"] == pytest.approx(1e9 + 109.0)


class TestThreadSafety:
    def test_hammer_leaves_exact_totals(self):
        # Four writer threads hammer one counter, one gauge, and one
        # histogram through the registry while a reader thread snapshots
        # concurrently; with the registry lock shared into every
        # instance the final totals are exact, not approximately right.
        registry = MetricsRegistry()
        counter = registry.counter("hits", "Hits.")
        gauge = registry.gauge("level", "Level.")
        hist = registry.histogram("obs", "Obs.", buckets=(0.5,))
        per_thread, threads = 2_000, 4

        def writer():
            for _ in range(per_thread):
                counter.inc()
                gauge.inc(2)
                gauge.dec(1)
                hist.observe(1.0)

        stop = threading.Event()
        seen = []

        def reader():
            while not stop.is_set():
                snap = registry.snapshot()
                seen.append(snap["obs"]["values"][""]["count"])

        workers = [threading.Thread(target=writer)
                   for _ in range(threads)]
        observer = threading.Thread(target=reader)
        observer.start()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop.set()
        observer.join()
        total = per_thread * threads
        assert counter.value == total
        assert gauge.value == total
        assert hist.count == total
        assert hist.inf_count == total
        assert seen and seen[-1] <= total

    def test_snapshot_is_atomic_under_concurrent_registration(self):
        # Registering new families while exporting must never corrupt
        # an in-flight prometheus_text render.
        registry = MetricsRegistry()
        registry.counter("seed", "Seed.").inc()

        def register():
            for index in range(200):
                registry.counter(f"extra_{index}").inc()

        worker = threading.Thread(target=register)
        worker.start()
        for _ in range(50):
            parsed = parse_prometheus_text(registry.prometheus_text())
            assert parsed["seed"]["samples"]["seed"] == 1.0
        worker.join()
        assert "extra_199" in registry.names()


class TestLabelEscaping:
    def test_special_label_values_round_trip(self):
        registry = MetricsRegistry()
        hostile = 'quote " slash \\ newline \n done'
        registry.gauge("g", "G.", labels={"v": hostile}).set(7)
        text = registry.prometheus_text()
        assert "\n\n" not in text.replace("\n# ", "x")  # still one line
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parsed = parse_prometheus_text(text)
        (key,) = parsed["g"]["samples"]
        assert parsed["g"]["samples"][key] == 7.0
        # The parsed key re-renders the escapes exactly as exported.
        assert key == 'g{v="quote \\" slash \\\\ newline \\n done"}'

    def test_escaped_export_reimports_identically(self):
        registry = MetricsRegistry()
        registry.counter("c", "C.", labels={"a": 'x"y', "b": "p\\q"})
        registry.counter("c", labels={"a": "plain", "b": "r\ns"}).inc(3)
        first = registry.prometheus_text()
        parsed = parse_prometheus_text(first)
        assert len(parsed["c"]["samples"]) == 2
        assert sum(parsed["c"]["samples"].values()) == 3.0

    def test_malformed_label_blocks_rejected(self):
        for bad in ('m{a="unterminated} 1\n',
                    'm{a=noquote} 1\n',
                    'm{a="x" b="y"} 1\n',
                    'm{a="x"'):
            with pytest.raises(ValueError):
                parse_prometheus_text(bad)


class TestRoundTrip:
    def test_every_family_survives_parse(self):
        engine = finished_engine()
        registry = engine_metrics(engine)
        parsed = parse_prometheus_text(registry.prometheus_text())
        for name, kind, help_text in registry.families():
            assert name in parsed, f"family {name} lost in round-trip"
            assert parsed[name]["type"] == kind
            assert parsed[name]["help"] == help_text

    def test_counter_values_survive_parse(self):
        engine = finished_engine()
        registry = engine_metrics(engine)
        parsed = parse_prometheus_text(registry.prometheus_text())
        delivered = engine.stats.counters["messages_delivered"]
        assert (parsed["cr_messages_delivered_total"]["samples"]
                ["cr_messages_delivered_total"] == delivered)

    def test_histogram_samples_attributed_to_family(self):
        engine = finished_engine()
        parsed = parse_prometheus_text(
            engine_metrics(engine).prometheus_text()
        )
        family = parsed["cr_message_latency_cycles"]
        assert family["type"] == "histogram"
        samples = family["samples"]
        measured = len(engine.stats.total_latencies)
        assert measured > 0
        assert samples["cr_message_latency_cycles_count"] == measured
        inf_key = 'cr_message_latency_cycles_bucket{le="+Inf"}'
        assert samples[inf_key] == measured
        # Cumulative buckets never decrease toward +Inf.
        bounds = [f'cr_message_latency_cycles_bucket{{le="{b:g}"}}'
                  for b in LATENCY_BUCKETS]
        values = [samples[k] for k in bounds if k in samples]
        assert values == sorted(values)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparsable"):
            parse_prometheus_text("this is not prometheus\n")

    def test_inf_value_parses(self):
        parsed = parse_prometheus_text("x 1\ny +Inf\n")
        assert parsed["y"]["samples"]["y"] == math.inf


class TestEnginePublisher:
    def test_every_stats_counter_published(self):
        engine = finished_engine()
        registry = engine_metrics(engine)
        names = set(registry.names())
        for counter in engine.stats.counters:
            if counter.startswith("kills_"):
                assert "cr_kills_by_cause_total" in names
            else:
                assert f"cr_{counter}_total" in names

    def test_declared_help_used(self):
        engine = finished_engine()
        families = dict(
            (name, help_text)
            for name, _, help_text in engine_metrics(engine).families()
        )
        for counter, help_text in COUNTER_HELP.items():
            name = f"cr_{counter}_total"
            if name in families:
                assert families[name] == help_text

    def test_kill_causes_fold_into_labelled_family(self):
        engine = finished_engine(load=0.4)
        counters = engine.stats.counters
        causes = {name[len("kills_"):]: counters[name]
                  for name in counters if name.startswith("kills_")}
        assert causes, "run produced no kill causes to fold"
        text = engine_metrics(engine).prometheus_text()
        for cause, count in causes.items():
            assert (f'cr_kills_by_cause_total{{cause="{cause}"}} '
                    f"{count:g}" in text)

    def test_latency_histogram_matches_stats(self):
        engine = finished_engine()
        registry = engine_metrics(engine)
        hist = registry.histogram("message_latency_cycles")
        assert hist.count == len(engine.stats.total_latencies)
        assert hist.sum == pytest.approx(
            sum(engine.stats.total_latencies)
        )

    def test_gauges_zero_after_full_drain(self):
        engine = finished_engine()
        registry = engine_metrics(engine)
        assert registry.gauge("live_messages").value == 0
        assert registry.gauge("in_flight_worms").value == 0
        assert registry.gauge("buffer_occupancy_flits").value == 0
        assert registry.gauge("cycle").value == engine.now

    def test_new_hook_counters_are_live(self):
        engine = finished_engine()
        counters = engine.stats.counters
        assert counters["flits_ejected"] > 0
        assert counters["kill_segments_flushed"] >= 0
        # Ejected flits account for everything delivered.
        assert (counters["flits_ejected"]
                >= counters["payload_flits_delivered"])

    def test_wall_time_buckets_shape(self):
        assert list(WALL_TIME_BUCKETS) == sorted(WALL_TIME_BUCKETS)
        assert WALL_TIME_BUCKETS[0] < 1.0 < WALL_TIME_BUCKETS[-1]
