"""run_traced and experiment presets: artifacts, counts, acceptance."""

import json

import pytest

from repro import SimConfig, read_jsonl, run_traced
from repro.obs import config_for_experiment, trace_experiments
from repro.obs.sinks import filter_events


def near_saturation_config(**overrides):
    """A small CR run loaded hard enough to produce kills."""
    params = dict(
        radix=4, dims=2, routing="cr", load=0.45, message_length=8,
        warmup=50, measure=300, drain=3000, seed=5,
    )
    params.update(overrides)
    return SimConfig(**params)


class TestExperimentPresets:
    def test_known_ids_build_configs(self):
        ids = trace_experiments()
        assert "e01" in ids and "fault-matrix" in ids
        for experiment in ids:
            config = config_for_experiment(experiment)
            assert config.radix == 8
            assert config.measure > 0

    def test_unknown_id_names_the_choices(self):
        with pytest.raises(ValueError, match="fault-matrix"):
            config_for_experiment("e99")

    def test_overrides_win(self):
        config = config_for_experiment("e01", seed=7, measure=100)
        assert config.seed == 7 and config.measure == 100
        assert config.routing == "cr"

    def test_fault_matrix_combines_fault_axes(self):
        config = config_for_experiment("fault-matrix")
        assert config.fault_rate > 0
        assert config.permanent_faults > 0
        assert config.misrouting


class TestRunTraced:
    def test_collects_events_and_counts(self):
        traced = run_traced(near_saturation_config())
        counts = traced.counts()
        assert counts["MessageCreated"] > 0
        assert counts["MessageDelivered"] > 0
        assert sum(counts.values()) == len(traced.events)
        assert traced.jsonl_path is None
        assert traced.perfetto_path is None

    def test_kill_events_match_the_kills_counter(self, tmp_path):
        # Acceptance criterion: with the JSONL sink attached, the kill
        # events recorded in the trace match the StatsCollector's kills
        # counter exactly.
        path = str(tmp_path / "kills.jsonl")
        traced = run_traced(near_saturation_config(), jsonl_path=path)
        kills = traced.report["kills"]
        assert kills > 0, "run was not loaded enough to kill worms"
        recorded = filter_events(read_jsonl(path), "KillStarted")
        assert len(recorded) == kills
        in_memory = traced.counts()["KillStarted"]
        assert in_memory == kills

    def test_every_kill_start_has_a_completion(self):
        traced = run_traced(near_saturation_config())
        counts = traced.counts()
        assert counts.get("KillStarted", 0) == counts.get(
            "KillCompleted", 0
        )
        assert counts.get("Retransmit", 0) == counts.get(
            "KillStarted", 0
        )

    def test_perfetto_artifact_parses(self, tmp_path):
        path = str(tmp_path / "run.perfetto.json")
        traced = run_traced(near_saturation_config(), perfetto_path=path)
        with open(path) as handle:
            doc = json.load(handle)
        assert len(doc["traceEvents"]) == traced.perfetto_entries > 0

    def test_sample_interval_override_collects_series(self):
        traced = run_traced(
            near_saturation_config(), sample_interval=100
        )
        assert traced.samples
        assert traced.samples == traced.report["timeseries"]

    def test_keep_engine_exposes_the_engine(self):
        traced = run_traced(near_saturation_config(), keep_engine=True)
        assert traced.result.engine is not None
        # The trace run leaves the bus attached for post-hoc queries.
        assert traced.result.engine.bus is not None

    def test_extra_sinks_receive_events(self):
        seen = []

        class Probe:
            def on_event(self, event):
                seen.append(event)

        traced = run_traced(
            near_saturation_config(), extra_sinks=[Probe()]
        )
        assert seen == traced.events
