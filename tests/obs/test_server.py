"""Telemetry HTTP server: serve specs, endpoints, live-run publishing."""

import json
import urllib.error
import urllib.request

import pytest

from repro import SimConfig, run_simulation
from repro.obs.metrics import parse_prometheus_text
from repro.obs.server import (
    EngineTelemetry,
    TelemetryServer,
    make_telemetry_server,
    parse_serve,
)


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


@pytest.fixture
def server():
    server = TelemetryServer().start()
    yield server
    server.stop()


class TestParseServe:
    @pytest.mark.parametrize("spec,expected", [
        (True, ("127.0.0.1", 0)),
        (9100, ("127.0.0.1", 9100)),
        ("9100", ("127.0.0.1", 9100)),
        ("0.0.0.0:9100", ("0.0.0.0", 9100)),
        (("localhost", 8080), ("localhost", 8080)),
    ])
    def test_accepted_forms(self, spec, expected):
        assert parse_serve(spec) == expected

    @pytest.mark.parametrize("bad", [False, "nope", "host:", [], 1.5])
    def test_rejected_forms(self, bad):
        with pytest.raises(ValueError):
            parse_serve(bad)

    def test_make_telemetry_server_passthrough_starts(self):
        server = TelemetryServer()
        try:
            assert not server.running
            assert make_telemetry_server(server) is server
            assert server.running
        finally:
            server.stop()


class TestEndpoints:
    def test_ephemeral_port_resolves_at_construction(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_placeholder_before_first_publish(self, server):
        status, content_type, body = fetch(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert body.startswith("# no metrics published yet")

    def test_published_snapshots_are_served(self, server):
        server.publish(
            metrics_text="cr_up 1\n",
            health={"status": "ok", "score": 0.5},
            status={"state": "running", "done": 3},
        )
        _, _, metrics = fetch(server.url + "/metrics")
        assert parse_prometheus_text(metrics)["cr_up"]["samples"] == {
            "cr_up": 1.0
        }
        _, content_type, health = fetch(server.url + "/health")
        assert content_type == "application/json"
        assert json.loads(health) == {"status": "ok", "score": 0.5}
        _, _, status = fetch(server.url + "/status")
        assert json.loads(status) == {"state": "running", "done": 3}

    def test_partial_publish_leaves_other_snapshots(self, server):
        server.publish(health={"status": "ok"})
        server.publish(status={"state": "running"})
        assert server.health() == {"status": "ok"}
        assert server.publishes == 2

    def test_index_and_404(self, server):
        _, _, index = fetch(server.url + "/")
        assert "/metrics" in index and "/health" in index
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch(server.url + "/nope")
        assert err.value.code == 404

    def test_stop_is_idempotent_and_closes_the_socket(self):
        server = TelemetryServer().start()
        url = server.url
        server.stop()
        server.stop()
        assert not server.running
        with pytest.raises(OSError):
            fetch(url + "/metrics")


class TestEngineTelemetry:
    def run_config(self, server, **overrides):
        params = dict(
            radix=4, dims=2, routing="cr", load=0.2, message_length=8,
            warmup=50, measure=300, drain=3000, seed=2,
            sample_interval=100, alerts=True, serve=server,
        )
        params.update(overrides)
        return SimConfig(**params)

    def test_config_wires_publisher_without_owning_the_server(
            self, server):
        engine = self.run_config(server).build()
        assert isinstance(engine.telemetry, EngineTelemetry)
        assert engine.telemetry.server is server
        assert not engine.telemetry.owns_server
        assert engine.telemetry in engine.sampler.listeners
        # build() publishes a cycle-0 snapshot immediately.
        assert server.publishes >= 1
        _, _, body = fetch(server.url + "/metrics")
        assert "cr_build_info" in body

    def test_run_serves_live_round_trippable_metrics(self, server):
        result = run_simulation(
            self.run_config(server), keep_engine=True
        )
        engine = result.engine
        # One publish per sampler window, plus build-time and close.
        assert server.publishes >= len(result.report["timeseries"])
        _, _, metrics = fetch(server.url + "/metrics")
        parsed = parse_prometheus_text(metrics)
        delivered = engine.stats.counters["messages_delivered"]
        assert (parsed["cr_messages_delivered_total"]["samples"]
                ["cr_messages_delivered_total"] == delivered)
        # A clean drained run scores near-perfect health (kills during
        # the run leave a little kill-pressure residue).
        health = parsed["cr_network_health"]["samples"][
            "cr_network_health"
        ]
        assert 0.9 <= health <= 1.0

    def test_health_payload_reports_score_and_version(self, server):
        from repro import __version__

        run_simulation(self.run_config(server))
        _, _, body = fetch(server.url + "/health")
        health = json.loads(body)
        assert health["status"] == "finished"
        assert health["version"] == __version__
        assert 0.9 <= health["score"] <= 1.0
        assert set(health["components"]) == {
            "delivery", "channel_liveness", "kill_pressure",
            "occupancy_headroom",
        }
        assert health["alerts"]["rules"] > 0

    def test_status_payload_tracks_run_state(self, server):
        result = run_simulation(
            self.run_config(server), keep_engine=True
        )
        _, _, body = fetch(server.url + "/status")
        status = json.loads(body)
        assert status["state"] == "finished"
        assert status["kind"] == "run"
        assert status["cycle"] == result.engine.now
        assert isinstance(status["alerts"], list)

    def test_owned_server_stops_when_the_run_finishes(self):
        config = SimConfig(
            radix=4, dims=2, routing="cr", load=0.2, message_length=8,
            warmup=50, measure=200, drain=2000, seed=2,
            sample_interval=100, serve=True,
        )
        result = run_simulation(config, keep_engine=True)
        telemetry = result.engine.telemetry
        assert telemetry.owns_server  # serve=True built a fresh server
        assert not telemetry.server.running  # ...and stopped it on close
        assert telemetry.server.status()["state"] == "finished"

    def test_build_info_labels(self, server):
        from repro import __version__
        from repro.campaign.store import STORE_SCHEMA_VERSION

        run_simulation(self.run_config(server, engine="fast"))
        _, _, metrics = fetch(server.url + "/metrics")
        key = (
            f'cr_build_info{{engine="FastEngine",'
            f'schema="{STORE_SCHEMA_VERSION}",'
            f'version="{__version__}"}}'
        )
        assert parse_prometheus_text(metrics)[
            "cr_build_info"
        ]["samples"][key] == 1.0
