"""Chrome trace-event export: span matching and loadability."""

import json

from repro.obs.events import (
    FaultActivated,
    InjectionStalled,
    InjectionStarted,
    KillCompleted,
    KillStarted,
    MessageDelivered,
)
from repro.obs.perfetto import (
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
)


def started(cycle, uid, src=0, dst=5, attempt=1):
    return InjectionStarted(cycle, uid=uid, src=src, dst=dst,
                            attempt=attempt, wire_length=12)


def delivered(cycle, uid, src=0, dst=5):
    return MessageDelivered(cycle, uid=uid, src=src, dst=dst,
                            payload_length=8, total_latency=cycle,
                            network_latency=cycle, corrupt=False)


def spans(entries):
    return [e for e in entries if e["ph"] == "X"]


def instants(entries):
    return [e for e in entries if e["ph"] == "i"]


class TestSpanMatching:
    def test_delivered_attempt_becomes_a_span(self):
        entries = chrome_trace_events([started(10, 1), delivered(40, 1)])
        (span,) = spans(entries)
        assert span["name"] == "attempt 1 (delivered)"
        assert (span["ts"], span["dur"]) == (10, 30)
        assert span["pid"] == 0 and span["tid"] == 1
        (instant,) = instants(entries)
        assert instant["name"] == "delivered"

    def test_killed_attempt_and_kill_wavefront_spans(self):
        events = [
            started(10, 1),
            KillStarted(25, uid=1, cause="timeout", backward=True,
                        wavefront_extent=4),
            KillCompleted(31, uid=1, outcome="requeued"),
            started(50, 1, attempt=2),
            delivered(90, 1),
        ]
        entries = chrome_trace_events(events)
        names = sorted(span["name"] for span in spans(entries))
        assert names == [
            "attempt 1 (killed: timeout)",
            "attempt 2 (delivered)",
            "kill timeout",
        ]
        kill = next(s for s in spans(entries) if s["name"] == "kill timeout")
        assert (kill["ts"], kill["dur"]) == (25, 6)
        assert kill["args"]["wavefront_extent"] == 4

    def test_unfinished_spans_close_at_trace_end(self):
        events = [
            started(10, 1),
            KillStarted(30, uid=2, cause="fault", backward=False,
                        wavefront_extent=2),
            InjectionStalled(42, uid=3, src=7),
        ]
        entries = chrome_trace_events(events)
        names = {span["name"] for span in spans(entries)}
        assert names == {"attempt 1 (unfinished)",
                         "kill fault (unfinished)"}
        # Both close at last observed cycle + 1 (42 + 1 here).
        for span in spans(entries):
            assert span["ts"] + span["dur"] == 43

    def test_spans_have_positive_duration(self):
        # A zero-length interval still renders (dur clamped to 1).
        entries = chrome_trace_events([started(10, 1), delivered(10, 1)])
        assert spans(entries)[0]["dur"] == 1

    def test_instants_for_stalls_and_faults(self):
        entries = chrome_trace_events([
            InjectionStalled(5, uid=1, src=3),
            FaultActivated(9, kind="channel_dead", src=2, dst=6),
        ])
        names = {e["name"] for e in instants(entries)}
        assert names == {"injection stalled", "fault: channel_dead"}


class TestMetadata:
    def test_process_names_for_every_source_node(self):
        entries = chrome_trace_events([
            started(0, 1, src=3), delivered(9, 1, src=3),
            started(0, 2, src=7), delivered(9, 2, src=7),
        ])
        meta = [e for e in entries if e["ph"] == "M"]
        assert {(m["pid"], m["args"]["name"]) for m in meta} == {
            (3, "node 3"), (7, "node 7"),
        }


class TestDocument:
    def test_chrome_trace_shape(self):
        doc = chrome_trace([started(0, 1), delivered(5, 1)])
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        # The document must survive JSON serialisation untouched.
        assert json.loads(json.dumps(doc)) == doc

    def test_write_chrome_trace_parses_back(self, tmp_path):
        path = str(tmp_path / "traces" / "run.perfetto.json")
        count = write_chrome_trace([started(0, 1), delivered(5, 1)], path)
        with open(path) as handle:
            doc = json.load(handle)
        assert len(doc["traceEvents"]) == count > 0
