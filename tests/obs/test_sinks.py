"""Sinks: ring buffer semantics, JSONL round-trips, artifact parsing."""

import json
import os
import signal
import subprocess
import sys
import threading
import warnings

import pytest

from repro.obs.events import MessageCreated, Retransmit
from repro.obs.sinks import (
    JsonlSink,
    ListSink,
    RingBufferSink,
    filter_events,
    read_jsonl,
)


def make_events(n):
    return [
        MessageCreated(cycle, uid=cycle, src=0, dst=1, payload_length=4)
        for cycle in range(n)
    ]


class TestRingBufferSink:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_keeps_only_the_newest_events(self):
        ring = RingBufferSink(capacity=3)
        events = make_events(5)
        for event in events:
            ring.on_event(event)
        assert ring.events == events[-3:]
        assert ring.seen == 5

    def test_last_n(self):
        ring = RingBufferSink(capacity=4)
        events = make_events(4)
        for event in events:
            ring.on_event(event)
        assert ring.last(2) == events[-2:]
        assert ring.last(10) == events  # clamped to what is retained
        assert ring.last(0) == []

    def test_clear(self):
        ring = RingBufferSink(capacity=4)
        ring.on_event(make_events(1)[0])
        ring.clear()
        assert ring.events == []


class TestListSink:
    def test_keeps_everything_in_order(self):
        sink = ListSink()
        events = make_events(7)
        for event in events:
            sink.on_event(event)
        assert sink.events == events


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            sink.on_event(MessageCreated(3, uid=9, src=1, dst=2,
                                         payload_length=8))
            sink.on_event(Retransmit(10, uid=9, attempt=1, gap=4,
                                     retransmit_at=14))
        assert sink.written == 2
        parsed = read_jsonl(path)
        assert parsed == [
            {"event": "MessageCreated", "cycle": 3, "uid": 9, "src": 1,
             "dst": 2, "payload_length": 8},
            {"event": "Retransmit", "cycle": 10, "uid": 9, "attempt": 1,
             "gap": 4, "retransmit_at": 14},
        ]

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "t.jsonl")
        with JsonlSink(path):
            pass
        assert read_jsonl(path) == []

    def test_close_twice_is_safe(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "MessageCreated"}\n{oops\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(str(path))

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"event": "A"}\n\n{"event": "B"}\n')
        assert [e["event"] for e in read_jsonl(str(path))] == ["A", "B"]

    def test_truncated_final_line_is_dropped_with_warning(self, tmp_path):
        # A crash mid-write leaves a partial record with no trailing
        # newline: every complete line still parses, the fragment is
        # dropped, and the reader warns instead of raising.
        from repro.obs import sinks

        path = tmp_path / "crashed.jsonl"
        path.write_text(
            '{"event": "A", "cycle": 1}\n'
            '{"event": "B", "cycle": 2}\n'
            '{"event": "C", "cy'
        )
        before = sinks.truncated_line_count
        with pytest.warns(RuntimeWarning, match="truncated"):
            events = read_jsonl(str(path))
        assert [e["event"] for e in events] == ["A", "B"]
        assert sinks.truncated_line_count == before + 1

    def test_newline_terminated_garbage_still_raises(self, tmp_path):
        # Only the crash-truncation shape is tolerated: a malformed
        # line that *was* fully written (trailing newline) is real
        # corruption and must keep raising, even in final position.
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"event": "A"}\n{oops}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(str(path))


class TestReadResultTruncation:
    @staticmethod
    def _truncated_file(tmp_path, name):
        path = tmp_path / name
        path.write_text('{"event": "A"}\n{"event": "B", "cy')
        return str(path)

    def test_per_call_truncated_attribute(self, tmp_path):
        path = self._truncated_file(tmp_path, "one.jsonl")
        with pytest.warns(RuntimeWarning):
            result = read_jsonl(path)
        assert result.truncated == 1
        assert [e["event"] for e in result] == ["A"]
        # a clean file reports zero
        clean = tmp_path / "clean.jsonl"
        clean.write_text('{"event": "A"}\n')
        assert read_jsonl(str(clean)).truncated == 0

    def test_result_is_still_a_plain_list(self, tmp_path):
        clean = tmp_path / "clean.jsonl"
        clean.write_text('{"event": "A"}\n')
        result = read_jsonl(str(clean))
        assert isinstance(result, list)
        assert result + [{"event": "B"}] == [{"event": "A"},
                                             {"event": "B"}]

    def test_concurrent_readers_do_not_race(self, tmp_path):
        # The deprecated module-global tally used to be a bare += on a
        # module attribute: N threads reading truncated traces could
        # interleave the read-modify-write and lose counts.  Each call
        # now reports its own ReadResult.truncated, and the global
        # (kept as a deprecated alias) is locked so the total stays
        # exact.
        from repro.obs import sinks

        paths = [self._truncated_file(tmp_path, f"t{i}.jsonl")
                 for i in range(8)]
        results = [None] * len(paths)
        barrier = threading.Barrier(len(paths))

        def reader(index):
            barrier.wait()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                results[index] = read_jsonl(paths[index])

        before = sinks.truncated_line_count
        threads = [threading.Thread(target=reader, args=(i,))
                   for i in range(len(paths))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert [r.truncated for r in results] == [1] * len(paths)
        assert all([e["event"] for e in r] == ["A"] for r in results)
        assert sinks.truncated_line_count == before + len(paths)


class TestFsyncDurability:
    def test_fsync_every_n_schedule(self, tmp_path):
        # With fsync_every=2 the sink syncs after records 2 and 4; the
        # schedule is observable via monkeypatched os.fsync below.
        synced = []
        real_fsync = os.fsync
        try:
            import repro.obs.sinks as sinks_mod

            sinks_mod.os.fsync = lambda fd: synced.append(fd)
            with JsonlSink(str(tmp_path / "t.jsonl"),
                           fsync_every=2) as sink:
                for cycle in range(5):
                    sink.write({"cycle": cycle})
            assert len(synced) == 2
        finally:
            sinks_mod.os.fsync = real_fsync

    def test_sigkilled_writer_loses_at_most_the_open_record(self, tmp_path):
        # Reuses the chaos harness's kill shape: a subprocess writes
        # durably (fsync_every=1), leaves a partial line in the OS
        # file buffer, and SIGKILLs itself — no atexit, no flush.  The
        # reader must recover every fsynced record and drop only the
        # torn tail.
        path = tmp_path / "killed.jsonl"
        script = f"""
import json, os, signal
import repro.obs.sinks as sinks
sink = sinks.JsonlSink({str(path)!r}, fsync_every=1)
for cycle in range(5):
    sink.write({{"event": "beat", "cycle": cycle}})
# a record the writer never finishes: no newline, no fsync
sink._handle.write('{{"event": "beat", "cy')
sink._handle.flush()
os.kill(os.getpid(), signal.SIGKILL)
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"),
                        os.path.join(os.path.dirname(__file__),
                                     "..", "..", "src"))
            if p
        )
        proc = subprocess.run([sys.executable, "-c", script], env=env)
        assert proc.returncode == -signal.SIGKILL
        with pytest.warns(RuntimeWarning, match="truncated"):
            events = read_jsonl(str(path))
        assert events.truncated == 1
        assert [e["cycle"] for e in events] == [0, 1, 2, 3, 4]

    def test_default_stays_buffered(self, tmp_path):
        synced = []
        try:
            import repro.obs.sinks as sinks_mod

            real_fsync = sinks_mod.os.fsync
            sinks_mod.os.fsync = lambda fd: synced.append(fd)
            with JsonlSink(str(tmp_path / "t.jsonl")) as sink:
                for cycle in range(10):
                    sink.write({"cycle": cycle})
        finally:
            sinks_mod.os.fsync = real_fsync
        assert synced == []


class TestFilterEvents:
    def test_by_name_and_passthrough(self):
        events = [{"event": "A"}, {"event": "B"}, {"event": "A"}]
        assert filter_events(events, "A") == [{"event": "A"}] * 2
        assert filter_events(events) == events
        assert filter_events(events, "C") == []
