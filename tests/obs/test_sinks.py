"""Sinks: ring buffer semantics, JSONL round-trips, artifact parsing."""

import json

import pytest

from repro.obs.events import MessageCreated, Retransmit
from repro.obs.sinks import (
    JsonlSink,
    ListSink,
    RingBufferSink,
    filter_events,
    read_jsonl,
)


def make_events(n):
    return [
        MessageCreated(cycle, uid=cycle, src=0, dst=1, payload_length=4)
        for cycle in range(n)
    ]


class TestRingBufferSink:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_keeps_only_the_newest_events(self):
        ring = RingBufferSink(capacity=3)
        events = make_events(5)
        for event in events:
            ring.on_event(event)
        assert ring.events == events[-3:]
        assert ring.seen == 5

    def test_last_n(self):
        ring = RingBufferSink(capacity=4)
        events = make_events(4)
        for event in events:
            ring.on_event(event)
        assert ring.last(2) == events[-2:]
        assert ring.last(10) == events  # clamped to what is retained
        assert ring.last(0) == []

    def test_clear(self):
        ring = RingBufferSink(capacity=4)
        ring.on_event(make_events(1)[0])
        ring.clear()
        assert ring.events == []


class TestListSink:
    def test_keeps_everything_in_order(self):
        sink = ListSink()
        events = make_events(7)
        for event in events:
            sink.on_event(event)
        assert sink.events == events


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            sink.on_event(MessageCreated(3, uid=9, src=1, dst=2,
                                         payload_length=8))
            sink.on_event(Retransmit(10, uid=9, attempt=1, gap=4,
                                     retransmit_at=14))
        assert sink.written == 2
        parsed = read_jsonl(path)
        assert parsed == [
            {"event": "MessageCreated", "cycle": 3, "uid": 9, "src": 1,
             "dst": 2, "payload_length": 8},
            {"event": "Retransmit", "cycle": 10, "uid": 9, "attempt": 1,
             "gap": 4, "retransmit_at": 14},
        ]

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "t.jsonl")
        with JsonlSink(path):
            pass
        assert read_jsonl(path) == []

    def test_close_twice_is_safe(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "MessageCreated"}\n{oops\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(str(path))

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"event": "A"}\n\n{"event": "B"}\n')
        assert [e["event"] for e in read_jsonl(str(path))] == ["A", "B"]

    def test_truncated_final_line_is_dropped_with_warning(self, tmp_path):
        # A crash mid-write leaves a partial record with no trailing
        # newline: every complete line still parses, the fragment is
        # dropped, and the reader warns instead of raising.
        from repro.obs import sinks

        path = tmp_path / "crashed.jsonl"
        path.write_text(
            '{"event": "A", "cycle": 1}\n'
            '{"event": "B", "cycle": 2}\n'
            '{"event": "C", "cy'
        )
        before = sinks.truncated_line_count
        with pytest.warns(RuntimeWarning, match="truncated"):
            events = read_jsonl(str(path))
        assert [e["event"] for e in events] == ["A", "B"]
        assert sinks.truncated_line_count == before + 1

    def test_newline_terminated_garbage_still_raises(self, tmp_path):
        # Only the crash-truncation shape is tolerated: a malformed
        # line that *was* fully written (trailing newline) is real
        # corruption and must keep raising, even in final position.
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"event": "A"}\n{oops}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(str(path))


class TestFilterEvents:
    def test_by_name_and_passthrough(self):
        events = [{"event": "A"}, {"event": "B"}, {"event": "A"}]
        assert filter_events(events, "A") == [{"event": "A"}] * 2
        assert filter_events(events) == events
        assert filter_events(events, "C") == []
