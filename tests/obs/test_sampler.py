"""Interval sampler: boundaries, counter deltas, exports."""

import pytest

from repro import SimConfig, run_simulation
from repro.obs.sampler import IntervalSampler


def sampled_result(interval=100, measure=300, **overrides):
    params = dict(
        radix=4, dims=2, routing="cr", load=0.2, message_length=8,
        warmup=50, measure=measure, drain=3000, seed=2,
        sample_interval=interval,
    )
    params.update(overrides)
    return run_simulation(SimConfig(**params), keep_engine=True)


class TestConstruction:
    def test_rejects_nonpositive_interval(self):
        engine = SimConfig(radix=4, dims=2, message_length=8).build()
        with pytest.raises(ValueError):
            IntervalSampler(engine, interval=0)

    def test_config_wires_the_sampler(self):
        engine = SimConfig(
            radix=4, dims=2, message_length=8, sample_interval=50
        ).build()
        assert engine.sampler is not None
        assert engine.sampler.interval == 50


class TestSampling:
    def test_intervals_tile_the_run_contiguously(self):
        result = sampled_result()
        samples = result.report["timeseries"]
        assert samples, "sampled run produced no intervals"
        assert [s["index"] for s in samples] == list(range(len(samples)))
        assert samples[0]["start"] == 0
        for prev, cur in zip(samples, samples[1:]):
            assert cur["start"] == prev["end"]
        assert samples[-1]["end"] == result.cycles_run

    def test_finalize_closes_a_partial_trailing_interval(self):
        # 350 active cycles at interval 100 plus a drain that almost
        # never lands on a boundary: the last sample must be partial.
        result = sampled_result(interval=100, measure=300)
        samples = result.report["timeseries"]
        spans = [s["end"] - s["start"] for s in samples]
        assert all(span == 100 for span in spans[:-1])
        assert 0 < spans[-1] <= 100

    def test_deltas_sum_to_the_run_totals(self):
        result = sampled_result()
        samples = result.report["timeseries"]
        counters = result.stats.counters
        assert (sum(s["created_messages"] for s in samples)
                == counters["messages_created"])
        assert (sum(s["delivered_messages"] for s in samples)
                == counters["messages_delivered"])
        assert (sum(s["kills"] for s in samples) == counters["kills"])
        assert (sum(s["injected_flits"] for s in samples)
                == counters["flits_injected"])

    def test_latency_stats_cover_each_interval_independently(self):
        result = sampled_result()
        samples = result.report["timeseries"]
        delivered = [s for s in samples if s["delivered_messages"]]
        assert delivered
        for sample in delivered:
            assert sample["latency_p99"] >= sample["latency_mean"] > 0

    def test_empty_interval_reports_latency_as_none(self):
        # An interval with no deliveries has no latency distribution:
        # mean/p99 must be None, not a misleading 0.0.
        result = sampled_result(interval=10, load=0.02)
        samples = result.report["timeseries"]
        empty = [s for s in samples if not s["delivered_messages"]]
        assert empty, "run produced no empty windows to check"
        for sample in empty:
            assert sample["latency_mean"] is None
            assert sample["latency_p99"] is None

    def test_interval_longer_than_run_still_emits_final_sample(self):
        # sample_interval far beyond the run length: finalize must
        # close the one partial window covering the entire run.
        result = sampled_result(interval=100_000, measure=300)
        samples = result.report["timeseries"]
        assert len(samples) == 1
        (sample,) = samples
        assert sample["start"] == 0
        assert sample["end"] == result.cycles_run
        assert (sample["delivered_messages"]
                == result.stats.counters["messages_delivered"])

    def test_occupancy_drains_to_zero(self):
        result = sampled_result()
        samples = result.report["timeseries"]
        assert samples[-1]["occupancy"] == 0  # run fully drained
        assert max(s["occupancy"] for s in samples) > 0


class TestListeners:
    def test_listeners_see_every_closed_window_in_order(self):
        calls = []

        class Recorder:
            def on_sample(self, engine, sample):
                calls.append((sample.index, sample.end))

        engine = SimConfig(
            radix=4, dims=2, routing="cr", load=0.2, message_length=8,
            warmup=50, measure=300, drain=3000, seed=2,
            sample_interval=100,
        ).build()
        engine.sampler.listeners.append(Recorder())
        engine.run(20_000)
        engine.sampler.finalize(engine.now)
        assert [index for index, _ in calls] == list(range(len(calls)))
        assert calls == [(s.index, s.end)
                         for s in engine.sampler.samples]


class TestExports:
    def test_series_matches_rows(self):
        result = sampled_result()
        sampler = result.engine.sampler
        assert sampler.series("kills") == [
            s["kills"] for s in sampler.rows()
        ]

    def test_to_csv_round_trip(self, tmp_path):
        from repro import read_csv

        result = sampled_result()
        path = str(tmp_path / "series.csv")
        count = result.engine.sampler.to_csv(path)
        rows = read_csv(path)
        assert count == len(rows) == len(result.report["timeseries"])
        assert rows[0]["start"] == "0"  # read_csv yields strings

    def test_to_svg_renders_one_row_per_metric(self, tmp_path):
        result = sampled_result()
        path = str(tmp_path / "series.svg")
        svg = result.engine.sampler.to_svg(
            path, metrics=("throughput", "occupancy"), title="t"
        )
        assert svg.startswith("<svg")
        assert "throughput" in svg and "occupancy" in svg
        with open(path) as handle:
            assert handle.read() == svg
