"""Distributed tracing: spans, parenting, propagation, thread safety."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    SPAN_STATUSES,
    TRACE_ARM_ENV,
    TRACEPARENT_ENV,
    Span,
    SpanContext,
    Tracer,
    context_from_environ,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    traceparent_environ,
    tracing_armed,
)


class TestTraceparent:
    def test_round_trip(self):
        context = SpanContext(new_trace_id(), new_span_id())
        encoded = format_traceparent(context)
        assert encoded == f"00-{context.trace_id}-{context.span_id}-01"
        assert parse_traceparent(encoded) == context

    def test_whitespace_and_case_tolerated(self):
        context = SpanContext("ab" * 16, "cd" * 8)
        raw = "  " + format_traceparent(context).upper() + "\n"
        assert parse_traceparent(raw) == context

    @pytest.mark.parametrize("bad", [
        "",
        "garbage",
        "00-short-deadbeefdeadbeef-01",
        "00-" + "g" * 32 + "-" + "a" * 16 + "-01",  # non-hex
        "00-" + "a" * 32 + "-" + "b" * 16,  # missing flags
    ])
    def test_malformed_raises(self, bad):
        with pytest.raises(ValueError):
            parse_traceparent(bad)

    def test_all_zero_ids_rejected(self):
        with pytest.raises(ValueError, match="all-zero"):
            parse_traceparent("00-" + "0" * 32 + "-" + "a" * 16 + "-01")
        with pytest.raises(ValueError, match="all-zero"):
            parse_traceparent("00-" + "a" * 32 + "-" + "0" * 16 + "-01")


class TestEnvironPropagation:
    def test_environ_round_trip(self):
        context = SpanContext(new_trace_id(), new_span_id())
        env = traceparent_environ(context, env={})
        assert env[TRACE_ARM_ENV] == "1"
        assert tracing_armed(env)
        assert context_from_environ(env) == context

    def test_unset_and_malformed_yield_none(self):
        assert context_from_environ({}) is None
        assert context_from_environ({TRACEPARENT_ENV: "nope"}) is None

    def test_unarmed(self):
        assert not tracing_armed({})
        assert not tracing_armed({TRACE_ARM_ENV: "0"})


class TestSpan:
    def test_open_then_closed(self):
        tracer = Tracer(worker_id="w")
        span = tracer.start_span("lease p1", kind="lease",
                                 point_id="p1")
        assert span.open and span.status == "open"
        assert span.duration is None
        done = tracer.end_span(span, "ok", attrs={"batch": 3})
        assert not done.open and done.status == "ok"
        assert done.duration >= 0.0
        assert done.attrs["batch"] == 3
        # the original frozen record is untouched
        assert span.open

    def test_dict_round_trip(self):
        tracer = Tracer(worker_id="w")
        done = tracer.end_span(
            tracer.start_span("run", kind="run", point_id="p"), "error",
            attrs={"error": "boom"},
        )
        assert Span.from_dict(done.to_dict()) == done

    def test_invalid_finish_status_rejected(self):
        tracer = Tracer()
        span = tracer.start_span("x")
        for status in ("open", "bogus"):
            with pytest.raises(ValueError):
                tracer.end_span(span, status)
        assert set(SPAN_STATUSES) == {"open", "ok", "error", "aborted"}


class TestTracerParenting:
    def test_nested_spans_parent_to_innermost_open(self):
        tracer = Tracer(worker_id="w")
        outer = tracer.start_span("session", kind="worker")
        inner = tracer.start_span("lease", kind="lease")
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert tracer.current().span_id == inner.span_id
        tracer.end_span(inner)
        assert tracer.current().span_id == outer.span_id

    def test_root_context_ties_into_existing_trace(self):
        root = SpanContext(new_trace_id(), new_span_id())
        tracer = Tracer(worker_id="w", root=root)
        span = tracer.start_span("session", kind="worker")
        assert span.trace_id == root.trace_id
        assert span.parent_id == root.span_id
        assert tracer.trace_id() == root.trace_id

    def test_explicit_parent_wins_over_stack(self):
        tracer = Tracer()
        a = tracer.start_span("a")
        b = tracer.start_span("b")
        child = tracer.start_span("c", parent=a)
        assert child.parent_id == a.span_id != b.span_id

    def test_without_any_parent_a_fresh_trace_starts(self):
        tracer = Tracer()
        span = tracer.start_span("first")
        assert span.parent_id is None
        assert len(span.trace_id) == 32
        assert tracer.trace_id() == span.trace_id

    def test_context_manager_closes_ok_and_error(self):
        tracer = Tracer()
        with tracer.span("fine") as span:
            pass
        assert tracer.current() is None
        with pytest.raises(RuntimeError):
            with tracer.span("broken"):
                raise RuntimeError("boom")
        emitted = []
        tracer.add_sink(emitted.append)
        with pytest.raises(RuntimeError):
            with tracer.span("broken2"):
                raise RuntimeError("boom")
        closed = [s for s in emitted if not s.open]
        assert closed[-1].status == "error"
        assert "boom" in closed[-1].attrs["error"]
        assert span.open  # the as-target is the open record


class TestTracerPlumbing:
    def test_sinks_see_open_and_closed(self):
        seen = []
        tracer = Tracer(sinks=[seen.append])
        span = tracer.start_span("x")
        tracer.end_span(span, "ok")
        assert [s.open for s in seen] == [True, False]
        assert seen[0].span_id == seen[1].span_id

    def test_registry_counts_finished_spans(self):
        registry = MetricsRegistry(prefix="cr_")
        tracer = Tracer(registry=registry)
        tracer.end_span(tracer.start_span("a"))
        tracer.end_span(tracer.start_span("b"))
        text = registry.prometheus_text()
        assert "cr_trace_spans_total 2" in text
        assert tracer.started == tracer.finished == 2

    def test_thread_safety_under_concurrent_spans(self):
        # the fabric's heartbeat thread closes renew spans while the
        # main loop runs points against the same tracer.
        tracer = Tracer(worker_id="w")
        session = tracer.start_span("session", kind="worker")
        errors = []

        def churn():
            try:
                for _ in range(200):
                    span = tracer.start_span("renew", kind="renew",
                                             parent=session)
                    tracer.end_span(span, "ok")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert tracer.finished == 800
        assert tracer.current().span_id == session.span_id
