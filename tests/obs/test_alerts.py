"""Alert rules engine: specs, state machine, events, end-to-end runs."""

import json

import pytest

from repro import SimConfig, run_simulation
from repro.obs import ListSink, attach
from repro.obs.alerts import (
    BUILTIN_RULE_NAMES,
    SEVERITIES,
    AlertEngine,
    AlertRule,
    builtin_rules,
    load_rules,
    make_alert_engine,
    rules_to_json,
)
from repro.obs.events import AlertEvent
from repro.obs.sampler import IntervalSample


def fresh_engine(**overrides):
    params = dict(radix=4, dims=2, routing="cr", message_length=8)
    params.update(overrides)
    return SimConfig(**params).build()


def make_sample(index=0, start=0, end=100, **overrides):
    params = dict(
        index=index, start=start, end=end,
        injected_flits=0, delivered_flits=0,
        created_messages=10, delivered_messages=10, kills=0,
        accepted_load=0.0, throughput=0.0, kill_rate=0.0,
        latency_mean=20.0, latency_p99=30.0, occupancy=0,
    )
    params.update(overrides)
    return IntervalSample(**params)


def feed(alert_engine, engine, samples):
    for index, sample in enumerate(samples):
        alert_engine.on_sample(engine, sample)
    return alert_engine


class TestAlertRule:
    def test_round_trips_through_dict(self):
        rule = AlertRule("r", metric="kill_rate", op=">=", value=1.5,
                         for_intervals=3, severity="critical",
                         description="d")
        data = rule.to_dict()
        assert data["for"] == 3  # JSON uses Prometheus' "for" key
        assert AlertRule.from_dict(data) == rule

    def test_from_dict_accepts_both_for_spellings(self):
        base = {"name": "r", "metric": "kills"}
        assert AlertRule.from_dict(
            {**base, "for": 2}
        ).for_intervals == 2
        assert AlertRule.from_dict(
            {**base, "for_intervals": 2}
        ).for_intervals == 2

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown field"):
            AlertRule.from_dict(
                {"name": "r", "metric": "kills", "threshold": 1}
            )

    @pytest.mark.parametrize("bad", [
        dict(name=""),
        dict(metric=""),
        dict(kind="gradient"),
        dict(op="=="),
        dict(severity="page"),
        dict(for_intervals=0),
        dict(kind="baseline_ratio", value=0.0),
    ])
    def test_validation_rejects(self, bad):
        params = dict(name="r", metric="kills")
        params.update(bad)
        with pytest.raises(ValueError):
            AlertRule(**params)

    def test_describe_names_the_predicate(self):
        rule = AlertRule("r", metric="kill_rate", op=">=", value=1.0,
                         for_intervals=2)
        text = rule.describe(3.25)
        assert "kill_rate >= 1.0" in text
        assert "3.25" in text
        assert "2 intervals" in text

    def test_builtins_are_valid_and_named(self):
        rules = builtin_rules()
        assert tuple(r.name for r in rules) == BUILTIN_RULE_NAMES
        assert "cascade-outage" in BUILTIN_RULE_NAMES
        for rule in rules:
            assert rule.severity in SEVERITIES
            assert rule.description


class TestLoadRules:
    def test_true_and_builtin_mean_the_builtins(self):
        assert load_rules(True) == builtin_rules()
        assert load_rules("builtin") == builtin_rules()

    def test_single_dict_and_rule_pass_through(self):
        rule = AlertRule("r", metric="kills")
        assert load_rules(rule) == [rule]
        assert load_rules({"name": "r", "metric": "kills"}) == [rule]

    def test_json_file_round_trip(self, tmp_path):
        rules = builtin_rules()
        path = tmp_path / "rules.json"
        path.write_text(rules_to_json(rules))
        assert load_rules(str(path)) == rules

    def test_bare_list_document(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([{"name": "r", "metric": "kills"}]))
        assert load_rules(str(path)) == [AlertRule("r", metric="kills")]

    def test_empty_and_garbage_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            load_rules([])
        with pytest.raises(ValueError):
            load_rules(3.14)
        with pytest.raises(ValueError, match="expected dict"):
            load_rules(["not a rule"])

    def test_make_alert_engine_passthrough_and_coercion(self):
        armed = AlertEngine()
        assert make_alert_engine(armed) is armed
        assert [r.name for r in make_alert_engine(True).rules] == list(
            BUILTIN_RULE_NAMES
        )


class TestStateMachine:
    def test_duplicate_rule_names_rejected(self):
        rule = AlertRule("dup", metric="kills")
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine([rule, rule])

    def test_threshold_fires_only_after_for_intervals(self):
        engine = fresh_engine()
        alerts = AlertEngine([AlertRule(
            "storm", metric="kill_rate", op=">=", value=1.0,
            for_intervals=2, severity="critical",
        )])
        feed(alerts, engine, [make_sample(index=0, kill_rate=2.0)])
        assert alerts.firing == []  # one hot window is not enough
        feed(alerts, engine,
             [make_sample(index=1, start=100, end=200, kill_rate=2.0)])
        (episode,) = alerts.firing
        assert episode["rule"] == "storm"
        assert episode["fired_at"] == 200
        assert episode["resolved_at"] is None
        assert "kill_rate >= 1.0" in episode["message"]

    def test_one_cool_window_resets_the_streak(self):
        engine = fresh_engine()
        alerts = AlertEngine([AlertRule(
            "storm", metric="kill_rate", op=">=", value=1.0,
            for_intervals=2,
        )])
        feed(alerts, engine, [
            make_sample(index=0, end=100, kill_rate=2.0),
            make_sample(index=1, start=100, end=200, kill_rate=0.0),
            make_sample(index=2, start=200, end=300, kill_rate=2.0),
        ])
        assert alerts.firing == []  # hysteresis: streak restarted

    def test_resolve_updates_the_episode_in_place(self):
        engine = fresh_engine()
        alerts = AlertEngine([AlertRule(
            "storm", metric="kill_rate", op=">=", value=1.0,
        )])
        feed(alerts, engine, [
            make_sample(index=0, end=100, kill_rate=2.0),
            make_sample(index=1, start=100, end=200, kill_rate=0.0),
        ])
        assert alerts.firing == []
        (row,) = alerts.rows()
        assert row["state"] == "resolved"
        assert row["fired_at"] == 100
        assert row["resolved_at"] == 200

    def test_missing_metric_never_holds(self):
        engine = fresh_engine()
        alerts = AlertEngine([AlertRule(
            "ghost", metric="no_such_metric", op=">", value=0.0,
        )])
        feed(alerts, engine, [make_sample()])
        assert alerts.episodes == []

    def test_absence_fires_on_none_metric(self):
        engine = fresh_engine()
        alerts = AlertEngine([AlertRule(
            "silent", metric="latency_mean", kind="absence",
        )])
        feed(alerts, engine, [
            make_sample(index=0, end=100,
                        delivered_messages=0, latency_mean=None,
                        latency_p99=None),
            make_sample(index=1, start=100, end=200),
        ])
        (row,) = alerts.rows()
        assert row["fired_at"] == 100
        assert row["resolved_at"] == 200

    def test_rate_needs_a_previous_window(self):
        engine = fresh_engine()
        alerts = AlertEngine([AlertRule(
            "ramp", metric="occupancy", kind="rate", value=50.0,
        )])
        feed(alerts, engine, [
            make_sample(index=0, end=100, occupancy=500),  # no baseline
            make_sample(index=1, start=100, end=200, occupancy=520),
            make_sample(index=2, start=200, end=300, occupancy=600),
        ])
        (row,) = alerts.rows()
        assert row["fired_at"] == 300  # only the +80 jump fires

    def test_baseline_ratio_tracks_the_rolling_minimum(self):
        engine = fresh_engine()
        alerts = AlertEngine([AlertRule(
            "saturation", metric="latency_mean", kind="baseline_ratio",
            value=2.0,
        )])
        feed(alerts, engine, [
            make_sample(index=0, end=100, latency_mean=30.0),
            make_sample(index=1, start=100, end=200, latency_mean=20.0),
            make_sample(index=2, start=200, end=300, latency_mean=39.0),
            make_sample(index=3, start=300, end=400, latency_mean=40.0),
        ])
        (row,) = alerts.rows()
        assert row["fired_at"] == 400  # 2x the rolling min of 20

    def test_counter_deltas_enter_the_context(self):
        engine = fresh_engine()
        alerts = AlertEngine([AlertRule(
            "outage", metric="cascade_channel_faults_delta",
            op=">=", value=1.0, severity="critical",
        )])
        engine.stats.counters["cascade_channel_faults"] = 2
        feed(alerts, engine, [make_sample(index=0, end=100)])
        assert [e["rule"] for e in alerts.firing] == ["outage"]
        # No further increment: the delta is 0 and the alert resolves.
        feed(alerts, engine,
             [make_sample(index=1, start=100, end=200)])
        assert alerts.firing == []

    def test_transitions_emit_alert_events_on_the_bus(self):
        engine = fresh_engine()
        sink = ListSink()
        attach(engine, sink)
        alerts = AlertEngine([AlertRule(
            "storm", metric="kill_rate", op=">=", value=1.0,
            severity="critical",
        )])
        feed(alerts, engine, [
            make_sample(index=0, end=100, kill_rate=2.0),
            make_sample(index=1, start=100, end=200, kill_rate=0.0),
        ])
        events = [e for e in sink.events if isinstance(e, AlertEvent)]
        assert [(e.state, e.cycle) for e in events] == [
            ("firing", 100), ("resolved", 200),
        ]
        assert events[0].rule == "storm"
        assert events[0].severity == "critical"

    def test_summary_and_severity_rollup(self):
        engine = fresh_engine()
        alerts = AlertEngine([
            AlertRule("a", metric="kill_rate", op=">=", value=1.0,
                      severity="critical"),
            AlertRule("b", metric="occupancy", op=">", value=100.0,
                      severity="info"),
        ])
        feed(alerts, engine,
             [make_sample(kill_rate=2.0, occupancy=500)])
        assert alerts.firing_by_severity() == {
            "info": 1, "warning": 0, "critical": 1,
        }
        summary = alerts.summary()
        assert summary["rules"] == 2
        assert summary["evaluations"] == 1
        assert summary["fired"] == summary["firing"] == 2


class TestEndToEnd:
    def run_with_alerts(self, alerts=True, **overrides):
        params = dict(
            radix=4, dims=2, routing="cr", load=0.2, message_length=8,
            warmup=50, measure=300, drain=3000, seed=2,
            sample_interval=100, alerts=alerts,
        )
        params.update(overrides)
        return run_simulation(SimConfig(**params), keep_engine=True)

    def test_report_carries_alert_rows_and_summary(self):
        result = self.run_with_alerts()
        assert "alerts" in result.report
        assert "alerts_summary" in result.report
        summary = result.report["alerts_summary"]
        assert summary["rules"] == len(BUILTIN_RULE_NAMES)
        assert (summary["evaluations"]
                == len(result.report["timeseries"]))

    def test_alerts_without_sample_interval_attach_a_sampler(self):
        engine = SimConfig(
            radix=4, dims=2, message_length=8, alerts=True,
        ).build()
        assert engine.sampler is not None
        assert engine.alerts in engine.sampler.listeners

    def test_guaranteed_rule_fires_and_journals(self):
        always = [{"name": "heartbeat", "metric": "delivery_ratio",
                   "op": "<=", "value": 1.0, "severity": "info"}]
        result = self.run_with_alerts(alerts=always)
        rows = result.report["alerts"]
        assert [row["rule"] for row in rows] == ["heartbeat"]
        assert rows[0]["state"] == "firing"  # holds to the very end
        assert rows[0]["fired_at"] == 100  # first window boundary

    def test_fast_engine_sees_identical_alert_timeline(self):
        # The fast engine already wakes at sampler boundaries, so the
        # alert evaluation timeline must match the reference engine's.
        reference = self.run_with_alerts(load=0.35)
        fast = self.run_with_alerts(load=0.35, engine="fast")
        assert fast.report["alerts"] == reference.report["alerts"]

    def test_unarmed_run_has_no_alert_surface(self):
        result = self.run_with_alerts(alerts=None)
        assert "alerts" not in result.report
        assert result.engine.alerts is None
