"""Structured logging: levels, trace correlation, merge, filtering."""

import os

import pytest

from repro.obs.log import (
    LOG_LEVELS,
    StructuredLogger,
    campaign_log_dir,
    campaign_log_path,
    filter_log_records,
    format_log_record,
    level_rank,
    read_campaign_logs,
)
from repro.obs.metrics import MetricsRegistry, parse_prometheus_text
from repro.obs.sinks import read_jsonl
from repro.obs.trace import Tracer


class TestStructuredLogger:
    def test_record_shape(self):
        logger = StructuredLogger(worker_id="w1", clock=lambda: 42.5)
        logger.info("batch_leased", points=3, reclaimed=1)
        record = logger.records[0]
        assert record == {
            "ts": 42.5, "level": "info", "worker_id": "w1",
            "trace_id": None, "span_id": None,
            "event": "batch_leased", "points": 3, "reclaimed": 1,
        }

    def test_level_threshold_drops_below(self):
        logger = StructuredLogger(level="warning")
        logger.debug("a")
        logger.info("b")
        logger.warning("c")
        logger.error("d")
        assert [r["event"] for r in logger.records] == ["c", "d"]
        assert logger.written == 2

    def test_unknown_threshold_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            StructuredLogger(level="loud")

    def test_trace_correlation(self):
        tracer = Tracer(worker_id="w1")
        logger = StructuredLogger(worker_id="w1", tracer=tracer)
        span = tracer.start_span("lease p1", kind="lease")
        logger.info("in_span")
        tracer.end_span(span, "ok")
        logger.info("after_span")
        inside, after = logger.records
        assert inside["trace_id"] == span.trace_id
        assert inside["span_id"] == span.span_id
        # rootless tracer with nothing open: no ids to stamp
        assert after["trace_id"] is None
        assert after["span_id"] is None

    def test_trace_id_survives_between_spans_with_root(self):
        root_tracer = Tracer(worker_id="coord")
        root = root_tracer.start_span("campaign", kind="root")
        tracer = Tracer(worker_id="w1", root=root.context())
        logger = StructuredLogger(worker_id="w1", tracer=tracer)
        logger.info("between_spans")
        assert logger.records[0]["trace_id"] == root.trace_id
        assert logger.records[0]["span_id"] is None

    def test_registry_counts_by_level(self):
        registry = MetricsRegistry(prefix="cr_")
        logger = StructuredLogger(registry=registry, level="debug")
        logger.info("a")
        logger.info("b")
        logger.error("c")
        families = parse_prometheus_text(registry.prometheus_text())
        samples = families["cr_log_records_total"]["samples"]
        assert samples['cr_log_records_total{level="info"}'] == 2
        assert samples['cr_log_records_total{level="error"}'] == 1

    def test_durable_file_round_trip(self, tmp_path):
        path = str(tmp_path / "w1.jsonl")
        with StructuredLogger(path, worker_id="w1") as logger:
            logger.info("worker_started")
            logger.warning("lease_lost", point="p3")
        records = read_jsonl(path)
        assert [r["event"] for r in records] == [
            "worker_started", "lease_lost",
        ]
        assert records[1]["point"] == "p3"

    def test_level_rank_order(self):
        ranks = [level_rank(level) for level in LOG_LEVELS]
        assert ranks == sorted(ranks)
        assert level_rank("unheard-of") == level_rank("debug")


class TestCampaignLogFiles:
    def test_dir_and_path_layout(self, tmp_path):
        db = str(tmp_path / "camp.sqlite")
        assert campaign_log_dir(db, "c1") == str(tmp_path / "c1.logs")
        assert campaign_log_path(db, "c1", "worker-1") == str(
            tmp_path / "c1.logs" / "worker-1.jsonl"
        )
        # hostile worker ids cannot escape the directory
        weird = campaign_log_path(db, "c1", "../../etc/passwd")
        assert os.path.dirname(weird) == str(tmp_path / "c1.logs")
        assert campaign_log_path(db, "c1", "") .endswith("unnamed.jsonl")

    def test_memory_store_has_no_dir(self):
        assert campaign_log_dir(":memory:", "c1") is None
        assert campaign_log_path(":memory:", "c1", "w") is None

    def test_merge_sorts_across_files(self, tmp_path):
        db = str(tmp_path / "camp.sqlite")
        clock_a = iter([3.0, 5.0])
        clock_b = iter([4.0])
        with StructuredLogger(campaign_log_path(db, "c1", "a"),
                              worker_id="a",
                              clock=lambda: next(clock_a)) as logger:
            logger.info("first")
            logger.info("third")
        with StructuredLogger(campaign_log_path(db, "c1", "b"),
                              worker_id="b",
                              clock=lambda: next(clock_b)) as logger:
            logger.info("second")
        merged = read_campaign_logs(campaign_log_dir(db, "c1"))
        assert [r["event"] for r in merged] == [
            "first", "second", "third",
        ]
        assert [r["worker_id"] for r in merged] == ["a", "b", "a"]


class TestFilterAndFormat:
    RECORDS = [
        {"ts": 1.0, "level": "debug", "worker_id": "w1",
         "trace_id": "abcd" * 8, "span_id": None, "event": "a"},
        {"ts": 2.0, "level": "warning", "worker_id": "w2",
         "trace_id": "ffff" * 8, "span_id": None, "event": "b"},
        {"ts": 3.0, "level": "error", "worker_id": "w1",
         "trace_id": None, "span_id": None, "event": "c"},
    ]

    def test_by_worker(self):
        out = filter_log_records(self.RECORDS, worker="w1")
        assert [r["event"] for r in out] == ["a", "c"]

    def test_level_is_a_floor(self):
        out = filter_log_records(self.RECORDS, level="warning")
        assert [r["event"] for r in out] == ["b", "c"]

    def test_by_trace_prefix(self):
        out = filter_log_records(self.RECORDS, trace="abcd")
        assert [r["event"] for r in out] == ["a"]
        assert filter_log_records(self.RECORDS,
                                  trace="abcd" * 8) == [self.RECORDS[0]]
        # a sub-4-char prefix is too ambiguous: exact match only
        assert filter_log_records(self.RECORDS, trace="abc") == []

    def test_filters_compose(self):
        out = filter_log_records(self.RECORDS, worker="w1",
                                 level="error")
        assert [r["event"] for r in out] == ["c"]

    def test_format_line(self):
        line = format_log_record({
            "ts": 30.25, "level": "info", "worker_id": "w1",
            "trace_id": "ab" * 16, "span_id": "cd" * 8,
            "event": "batch_leased", "points": 2,
        })
        assert "INFO" in line
        assert "w1" in line
        assert "batch_leased points=2" in line
        assert f"[span {'cd' * 4}]" in line

    def test_format_tolerates_missing_fields(self):
        line = format_log_record({})
        assert line.startswith("?")
