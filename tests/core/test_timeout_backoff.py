"""Timeout and retransmission-gap policies."""

import random

import pytest

from repro.core.backoff import ExponentialBackoff, StaticGap
from repro.core.timeout import (
    FixedTimeout,
    LengthScaledTimeout,
    PathWideTimeout,
)
from repro.network.message import Message


def msg_with_wire(wire, kills=0):
    msg = Message(0, 1, min(wire, 4))
    msg.begin_attempt(wire, now=0)
    msg.kills = kills
    return msg


class TestFixedTimeout:
    def test_threshold_constant(self):
        policy = FixedTimeout(32)
        assert policy.threshold(msg_with_wire(8), num_vcs=1) == 32
        assert policy.threshold(msg_with_wire(64), num_vcs=4) == 32

    def test_fires_at_threshold(self):
        policy = FixedTimeout(32)
        msg = msg_with_wire(8)
        assert not policy.fires(31, msg, 1)
        assert policy.fires(32, msg, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            FixedTimeout(0)


class TestLengthScaledTimeout:
    def test_paper_rule(self):
        """Fig. 14: timeout = message length x number of VCs."""
        policy = LengthScaledTimeout()
        assert policy.threshold(msg_with_wire(20), num_vcs=2) == 40

    def test_factor(self):
        policy = LengthScaledTimeout(factor=0.5)
        assert policy.threshold(msg_with_wire(20), num_vcs=2) == 20

    def test_minimum_floor(self):
        policy = LengthScaledTimeout(minimum=50)
        assert policy.threshold(msg_with_wire(4), num_vcs=1) == 50

    def test_invalid(self):
        with pytest.raises(ValueError):
            LengthScaledTimeout(factor=0)
        with pytest.raises(ValueError):
            LengthScaledTimeout(minimum=0)


class TestPathWideTimeout:
    def test_stalled_judgement(self):
        monitor = PathWideTimeout(16)
        assert not monitor.stalled(last_advance=100, now=115)
        assert monitor.stalled(last_advance=100, now=116)

    def test_invalid(self):
        with pytest.raises(ValueError):
            PathWideTimeout(0)


class TestStaticGap:
    def test_constant(self):
        policy = StaticGap(32)
        rng = random.Random(0)
        assert policy.gap(msg_with_wire(8, kills=1), rng) == 32
        assert policy.gap(msg_with_wire(8, kills=9), rng) == 32

    def test_zero_allowed(self):
        assert StaticGap(0).gap(msg_with_wire(8, kills=1),
                                random.Random(0)) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            StaticGap(-1)


class TestExponentialBackoff:
    def test_range_grows_with_kills(self):
        policy = ExponentialBackoff(slot_cycles=8, cap=6)
        rng = random.Random(0)
        few = max(policy.gap(msg_with_wire(8, kills=1), rng)
                  for _ in range(200))
        many = max(policy.gap(msg_with_wire(8, kills=6), rng)
                   for _ in range(200))
        assert few <= 8  # 2^1 slots max -> slot values {0, 8}
        assert many > few

    def test_cap_bounds_gap(self):
        policy = ExponentialBackoff(slot_cycles=4, cap=3)
        rng = random.Random(1)
        for _ in range(500):
            gap = policy.gap(msg_with_wire(8, kills=50), rng)
            assert 0 <= gap <= 4 * (2**3 - 1)

    def test_slot_quantisation(self):
        policy = ExponentialBackoff(slot_cycles=16, cap=6)
        rng = random.Random(2)
        for _ in range(100):
            assert policy.gap(msg_with_wire(8, kills=3), rng) % 16 == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            ExponentialBackoff(slot_cycles=0)
        with pytest.raises(ValueError):
            ExponentialBackoff(cap=0)
