"""Drop-at-block protocol (the BBN Butterfly baseline of E19)."""

from repro import SimConfig, run_simulation
from repro.core.protocol import MessagePhase


def drop_config(**overrides):
    base = dict(
        routing="drop", radix=4, dims=2, load=0.2, message_length=8,
        warmup=100, measure=500, drain=5000, seed=9,
        order_preserving=False,
    )
    base.update(overrides)
    return SimConfig(**base)


class TestConfiguration:
    def test_scheme_sets_default_threshold(self):
        engine = drop_config().build()
        assert engine.protocol.drop_at_block == 2

    def test_explicit_threshold(self):
        engine = drop_config(drop_at_block_cycles=7).build()
        assert engine.protocol.drop_at_block == 7

    def test_no_padding(self):
        """Drop-at-block is a PLAIN protocol: no Imin padding."""
        result = run_simulation(drop_config(load=0.05))
        for msg in result.ledger.deliveries:
            assert msg.wire_length == msg.payload_length


class TestBehaviour:
    def test_never_wedges_without_vcs(self):
        """Adaptive routing + 1 VC + drops: deadlock-free by rejection,
        like CR but without the timeout grace period."""
        result = run_simulation(drop_config(load=0.4, drain=10000))
        assert result.drained
        assert result.report["undelivered"] == 0

    def test_drops_counted_separately(self):
        result = run_simulation(drop_config(load=0.3))
        report = result.report
        assert report.get("kills_drop_at_block", 0) > 0
        assert report.get("kills_source_timeout", 0) == 0

    def test_committed_messages_still_droppable(self):
        """Without padding a fully-injected worm's header can still be
        blocked -- drop-at-block rejects it and the sender's retained
        copy is retransmitted (exactly-once to the host regardless)."""
        result = run_simulation(drop_config(load=0.4, drain=10000))
        delivered = result.report["messages_delivered"]
        assert len(result.ledger.delivered_uids) == delivered

    def test_more_drops_with_tighter_threshold(self):
        tight = run_simulation(drop_config(drop_at_block_cycles=1))
        loose = run_simulation(drop_config(drop_at_block_cycles=16))
        assert (
            tight.report.get("kills_drop_at_block", 0)
            > loose.report.get("kills_drop_at_block", 0)
        )

    def test_all_messages_eventually_delivered(self):
        result = run_simulation(drop_config(load=0.25, drain=8000))
        assert result.drained
        for msg in result.ledger.deliveries:
            assert msg.phase is MessagePhase.DELIVERED
