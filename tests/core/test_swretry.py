"""Software ack/retry layer: the baseline FCR replaces."""

import pytest

from repro import SimConfig, SoftwareReliability, run_simulation


def swr_config(**overrides):
    base = dict(
        routing="dor", software_retry=True, order_preserving=False,
        radix=4, dims=2, load=0.1, message_length=8,
        warmup=100, measure=600, drain=8000, seed=6,
    )
    base.update(overrides)
    return SimConfig(**base)


class TestConstruction:
    def test_requires_plain_mode(self):
        config = swr_config(routing="cr")
        with pytest.raises(ValueError, match="PLAIN"):
            config.build()

    def test_validation(self):
        with pytest.raises(ValueError):
            SoftwareReliability(retry_timeout=0)
        with pytest.raises(ValueError):
            SoftwareReliability(ack_length=0)

    def test_attached_by_config(self):
        engine = swr_config().build()
        assert engine.reliability is not None
        assert engine.reliability.retry_timeout == 512


class TestFaultFree:
    def test_every_message_acked_once(self):
        result = run_simulation(swr_config(fault_rate=0.0),
                                keep_engine=True)
        layer = result.engine.reliability
        report = layer.report()
        assert report["duplicates"] == 0
        assert report["corrupt_discards"] == 0
        assert report["failures"] == 0
        # One ACK per host delivery.
        assert report["acks_sent"] == report["host_deliveries"]
        # Everything generated reached the host exactly once.
        created = result.report["messages_created"]
        assert report["host_deliveries"] + report["acks_sent"] == created

    def test_host_latency_below_network_plus_ack(self):
        result = run_simulation(swr_config(fault_rate=0.0),
                                keep_engine=True)
        report = result.engine.reliability.report()
        assert 0 < report["host_latency_mean"] < 500


class TestUnderFaults:
    def test_exactly_once_to_host(self):
        result = run_simulation(swr_config(fault_rate=3e-3),
                                keep_engine=True)
        layer = result.engine.reliability
        report = layer.report()
        # Corruption forced discards and retransmissions...
        assert report["corrupt_discards"] > 0
        assert report["retransmissions"] > 0
        # ...but the host never saw a duplicate (dedup) or corruption
        # (software checksum): logical ids are unique.
        assert len(layer.delivered_logical) == report["host_deliveries"]

    def test_ack_loss_causes_duplicates_not_errors(self):
        result = run_simulation(
            swr_config(fault_rate=8e-3, swr_timeout=128, drain=16000),
            keep_engine=True,
        )
        report = result.engine.reliability.report()
        # High fault rate + aggressive timer: duplicates happen at the
        # network level but never reach the host twice.
        assert report["host_deliveries"] == len(
            result.engine.reliability.delivered_logical
        )

    def test_retry_limit_bounds_attempts(self):
        result = run_simulation(
            swr_config(fault_rate=5e-2, swr_retry_limit=2, drain=12000),
            keep_engine=True,
        )
        report = result.engine.reliability.report()
        # At a 5% flit-hop fault rate almost nothing survives two tries;
        # the limit must convert the hopeless cases into failures
        # rather than retrying forever.
        assert report["failures"] > 0


class TestOverheadAccounting:
    def test_ack_flits_counted_as_injected(self):
        clean = run_simulation(
            swr_config(fault_rate=0.0, software_retry=False),
        )
        with_layer = run_simulation(swr_config(fault_rate=0.0))
        assert (
            with_layer.report["flits_injected"]
            > clean.report["flits_injected"]
        )
