"""Order gate and delivery ledger."""

import pytest

from repro.core.guarantees import (
    DeliveryLedger,
    GuaranteeViolation,
    OrderGate,
)
from repro.network.message import Message


def delivered(src, dst, seq, header_at):
    msg = Message(src, dst, 4, seq=seq)
    msg.header_consumed_at = header_at
    return msg


class TestOrderGate:
    def test_serialises_same_destination(self):
        gate = OrderGate()
        first = Message(0, 5, 4, seq=0)
        second = Message(0, 5, 4, seq=1)
        assert gate.may_start(first)
        gate.on_start(first)
        assert not gate.may_start(second)
        gate.on_commit(first)
        assert gate.may_start(second)

    def test_different_destinations_independent(self):
        gate = OrderGate()
        gate.on_start(Message(0, 5, 4, seq=0))
        assert gate.may_start(Message(0, 6, 4, seq=0))

    def test_holder_may_restart(self):
        """A killed message retries while still holding the gate."""
        gate = OrderGate()
        msg = Message(0, 5, 4, seq=0)
        gate.on_start(msg)
        assert gate.may_start(msg)

    def test_abandon_releases(self):
        gate = OrderGate()
        msg = Message(0, 5, 4, seq=0)
        gate.on_start(msg)
        gate.on_abandon(msg)
        assert gate.may_start(Message(0, 5, 4, seq=1))

    def test_disabled_gate_is_permissive(self):
        gate = OrderGate(enabled=False)
        gate.on_start(Message(0, 5, 4, seq=0))
        assert gate.may_start(Message(0, 5, 4, seq=1))


class TestDeliveryLedger:
    def test_duplicate_delivery_raises(self):
        ledger = DeliveryLedger()
        msg = delivered(0, 1, 0, 10)
        ledger.on_delivery(msg, corrupt=False)
        with pytest.raises(GuaranteeViolation, match="duplicate"):
            ledger.on_delivery(msg, corrupt=False)

    def test_corrupt_counted_without_integrity(self):
        ledger = DeliveryLedger(expect_integrity=False)
        ledger.on_delivery(delivered(0, 1, 0, 10), corrupt=True)
        assert ledger.corrupt_deliveries == 1

    def test_corrupt_raises_with_integrity(self):
        ledger = DeliveryLedger(expect_integrity=True)
        with pytest.raises(GuaranteeViolation, match="corrupt"):
            ledger.on_delivery(delivered(0, 1, 0, 10), corrupt=True)

    def test_fifo_accepts_ordered(self):
        ledger = DeliveryLedger()
        for seq, t in ((0, 10), (1, 20), (2, 30)):
            ledger.on_delivery(delivered(0, 1, seq, t), corrupt=False)
        assert ledger.validate_fifo() == 1

    def test_fifo_rejects_inverted_headers(self):
        ledger = DeliveryLedger()
        ledger.on_delivery(delivered(0, 1, 0, 30), corrupt=False)
        ledger.on_delivery(delivered(0, 1, 1, 20), corrupt=False)
        with pytest.raises(GuaranteeViolation, match="out-of-order"):
            ledger.validate_fifo()

    def test_fifo_counts_pairs(self):
        ledger = DeliveryLedger()
        ledger.on_delivery(delivered(0, 1, 0, 10), corrupt=False)
        ledger.on_delivery(delivered(2, 3, 0, 10), corrupt=False)
        assert ledger.validate_fifo() == 2

    def test_fifo_requires_header_time(self):
        ledger = DeliveryLedger()
        msg = Message(0, 1, 4, seq=0)
        ledger.on_delivery(msg, corrupt=False)
        with pytest.raises(GuaranteeViolation, match="header"):
            ledger.validate_fifo()
