"""Kill, teardown, and retransmission behaviour."""

from repro import (
    Engine,
    Message,
    MinimalAdaptive,
    ProtocolConfig,
    ProtocolMode,
    RandomFree,
    StaticGap,
    FixedTimeout,
    WormholeNetwork,
    torus,
)
from repro.core.protocol import MessagePhase


def cr_engine(radix=4, dims=2, selection=None, **protocol_kwargs):
    topology = torus(radix, dims)
    network = WormholeNetwork(
        topology,
        MinimalAdaptive(topology),
        selection or RandomFree(),
        num_vcs=1,
        buffer_depth=2,
    )
    protocol = ProtocolConfig(mode=ProtocolMode.CR, **protocol_kwargs)
    return Engine(network, protocol=protocol, seed=13, watchdog=5000)


def network_is_clean(engine):
    for router in engine.routers:
        if router.claims or router.out_owner:
            return False
        for port_bufs in router.in_buffers:
            for buf in port_bufs:
                if buf.occupancy or buf.owner is not None:
                    return False
    return True


class TestDeadChannelRecovery:
    def test_kill_and_reroute_around_dead_channel(self):
        """Worms that wander into a dead-end time out, die, and random
        retries eventually find the live minimal path.

        The trap: for (0,0)->(1,1), kill (1,0)->(1,1).  A worm that
        chose dim 0 first reaches (1,0), finds its only productive link
        dead, stalls, and must be killed; only retries that choose dim 1
        first can deliver.  This is the paper's permanent-fault story --
        and why CR pairs recovery with *random* selection (a
        deterministic selector would retry into the trap forever).
        """
        engine = cr_engine(timeout=FixedTimeout(16), backoff=StaticGap(4))
        topology = engine.topology
        src = topology.node_at((0, 0))
        dst = topology.node_at((1, 1))
        trap = topology.node_at((1, 0))
        engine.network.find_link(trap, dst).dead = True
        messages = []
        for seq in range(10):
            msg = Message(src, dst, 4, seq=seq)
            engine.admit(msg)
            messages.append(msg)
        assert engine.run_until_drained(20000)
        assert all(m.delivered for m in messages)
        # With ten messages and 50/50 first-hop choice, some attempts
        # must have entered the trap and been killed.
        assert sum(m.kills for m in messages) >= 1
        assert network_is_clean(engine)

    def test_retry_limit_marks_failed(self):
        engine = cr_engine(
            timeout=FixedTimeout(8),
            backoff=StaticGap(2),
            retry_limit=3,
        )
        topology = engine.topology
        src = topology.node_at((0, 0))
        dst = topology.node_at((0, 1))
        # Sole minimal direction; kill both rings out of the source in
        # dim 1 so every attempt stalls.
        engine.network.find_link(src, dst).dead = True
        msg = Message(src, dst, 4, seq=0)
        engine.admit(msg)
        engine.run_until_drained(4000)
        assert msg.phase is MessagePhase.FAILED
        assert msg.kills == 4  # retry_limit + the final exceeding kill
        assert engine.stats.counters["messages_failed"] == 1
        assert network_is_clean(engine)


class TestKillAccounting:
    def test_kill_statistics_recorded(self):
        engine = cr_engine(timeout=FixedTimeout(8), backoff=StaticGap(2))
        topology = engine.topology
        src = topology.node_at((0, 0))
        mid = topology.node_at((1, 0))
        dst = topology.node_at((2, 0))
        blocker_dst = topology.node_at((3, 0))
        # Park a long worm across src->mid->dst to stall the victim.
        blocker = Message(src, blocker_dst, 60, seq=0)
        engine.admit(blocker)
        for _ in range(3):
            engine.step()
        victim = Message(src, dst, 4, seq=1)
        engine.admit(victim)
        engine.run_until_drained(8000)
        assert victim.delivered
        assert blocker.delivered
        report = engine.stats.report()
        assert report.get("kills", 0) == victim.kills + blocker.kills
        if victim.kills:
            assert report.get("retransmissions", 0) >= 1

    def test_killed_partial_delivery_discarded(self):
        """Headers of killed attempts reach the receiver but only the
        successful attempt delivers (exactly-once)."""
        engine = cr_engine(timeout=FixedTimeout(8), backoff=StaticGap(2))
        topology = engine.topology
        pairs = [
            (topology.node_at((0, 0)), topology.node_at((2, 2))),
            (topology.node_at((2, 0)), topology.node_at((0, 2))),
            (topology.node_at((0, 2)), topology.node_at((2, 0))),
            (topology.node_at((2, 2)), topology.node_at((0, 0))),
        ]
        messages = []
        for i, (src, dst) in enumerate(pairs * 3):
            msg = Message(src, dst, 16, seq=engine.next_seq(src, dst))
            engine.admit(msg)
            messages.append(msg)
        assert engine.run_until_drained(20000)
        delivered = [m for m in messages if m.delivered]
        assert len(delivered) == len(messages)
        assert len(engine.ledger.delivered_uids) == len(messages)
        assert network_is_clean(engine)
