"""PCSManager internals: candidate filtering and backtrack bookkeeping."""

from repro import (
    Engine,
    FirstFree,
    Message,
    MinimalAdaptive,
    ProtocolConfig,
    ProtocolMode,
    WormholeNetwork,
    torus,
)
from repro.core.protocol import MessagePhase


def pcs_engine(pcs_wait=2):
    topology = torus(4, 2)
    network = WormholeNetwork(
        topology, MinimalAdaptive(topology), FirstFree(), num_vcs=1
    )
    protocol = ProtocolConfig(mode=ProtocolMode.PCS, pcs_wait=pcs_wait)
    return Engine(network, protocol=protocol, seed=1, watchdog=5000)


def launch(engine, src, dst, length=4):
    msg = Message(src, dst, length, seq=engine.next_seq(src, dst))
    engine.admit(msg)
    engine.step()  # injector reserves the injection buffer + launches
    assert msg.phase is MessagePhase.PROBING
    return msg


class TestProbeAdvance:
    def test_probe_extends_one_hop_per_cycle(self):
        engine = pcs_engine()
        topology = engine.topology
        msg = launch(engine, 0, topology.node_at((2, 2)))
        lengths = [len(msg.segments)]
        for _ in range(4):
            engine.step()
            if msg.phase is not MessagePhase.PROBING:
                break
            lengths.append(len(msg.segments))
        # Monotone growth while probing, one segment per cycle.
        assert lengths == sorted(lengths)
        assert max(lengths) - lengths[0] >= 2

    def test_circuit_completion_sets_stream_time(self):
        engine = pcs_engine()
        msg = launch(engine, 0, 1)
        for _ in range(20):
            engine.step()
            if msg.phase is MessagePhase.INJECTING:
                break
        assert msg.stream_start_at is not None
        assert msg.stream_start_at >= engine.now

    def test_probe_claims_are_real_reservations(self):
        engine = pcs_engine()
        topology = engine.topology
        msg = launch(engine, 0, topology.node_at((0, 2)))
        for _ in range(3):
            engine.step()
        # Every routed segment's output ownership belongs to the probe.
        for seg in msg.segments:
            if seg.routed:
                owner = seg.router.out_owner[(seg.out_port, seg.out_vc)]
                assert owner is msg


class TestBacktracking:
    def test_dead_end_triggers_immediate_backtrack(self):
        engine = pcs_engine(pcs_wait=50)  # patience high: dead != busy
        topology = engine.topology
        trap = topology.node_at((1, 0))
        dst = topology.node_at((2, 0))
        # Straight-line route with the second hop dead: probe must
        # retreat without waiting out the (long) patience budget.
        engine.network.find_link(trap, dst).dead = True
        engine.network.find_link(
            topology.node_at((3, 0)), dst
        ).dead = True  # block the other way round too
        msg = launch(engine, 0, dst)
        for _ in range(30):
            engine.step()
        assert msg.probe_backtracks >= 1

    def test_tried_ports_not_retried_within_attempt(self):
        engine = pcs_engine(pcs_wait=1)
        topology = engine.topology
        dst = topology.node_at((1, 1))
        msg = launch(engine, 0, dst)
        for _ in range(50):
            engine.step()
            if msg.delivered:
                break
        assert msg.delivered

    def test_exhausted_probe_requeues_with_gap(self):
        engine = pcs_engine(pcs_wait=1)
        topology = engine.topology
        dst = topology.node_at((0, 1))
        # The only minimal link is dead: every attempt fails -- possibly
        # within the very cycle the probe launches (dead-end at source).
        engine.network.find_link(0, dst).dead = True
        msg = Message(0, dst, 4, seq=engine.next_seq(0, dst))
        engine.admit(msg)
        for _ in range(60):
            engine.step()
            if msg.kills >= 1 and msg.phase is MessagePhase.QUEUED:
                break
        assert msg.phase is MessagePhase.QUEUED
        assert msg.kills >= 1
        assert msg.retransmit_at is not None
        # Everything the probe reserved was released.
        for router in engine.routers:
            assert not router.out_owner
