"""Receiver state machine details (driven through a live engine)."""

from repro import (
    Engine,
    FirstFree,
    Message,
    MinimalAdaptive,
    ProtocolConfig,
    ProtocolMode,
    WormholeNetwork,
    torus,
)
from repro.network.flit import FlitKind


def make_engine(mode=ProtocolMode.CR, num_sink=1):
    topology = torus(4, 2)
    network = WormholeNetwork(
        topology,
        MinimalAdaptive(topology),
        FirstFree(),
        num_vcs=1,
        num_sink=num_sink,
    )
    return Engine(
        network,
        protocol=ProtocolConfig(mode=mode),
        seed=8,
        watchdog=5000,
    )


class TestAssembly:
    def test_pad_flits_stripped(self):
        """Delivered payload equals what was sent; pads never surface."""
        engine = make_engine(ProtocolMode.CR)
        msg = Message(0, 5, 3, seq=0)  # heavily padded
        engine.admit(msg)
        assert engine.run_until_drained(2000)
        assert msg.delivered
        assert msg.pad_flits_sent == msg.wire_length - 3
        # The ledger records the message object; payload length intact.
        assert engine.ledger.deliveries[0].payload_length == 3

    def test_header_time_recorded_every_attempt(self):
        engine = make_engine(ProtocolMode.CR)
        msg = Message(0, 5, 3, seq=0)
        engine.admit(msg)
        engine.run_until_drained(2000)
        assert msg.header_consumed_at is not None
        assert msg.header_consumed_at <= msg.committed_at

    def test_assembly_state_cleared_after_delivery(self):
        engine = make_engine(ProtocolMode.CR)
        msg = Message(0, 5, 3, seq=0)
        engine.admit(msg)
        engine.run_until_drained(2000)
        assert engine.nodes[5].receiver.assembly == {}
        assert engine.nodes[5].receiver.staging == []


class TestCorruption:
    def _run_with_corrupted_body(self, mode):
        """Corrupt one body flit in flight by monkeypatching the fault
        model to hit exactly the second flit of the message."""
        from repro.faults.model import FaultModel

        class OneShot(FaultModel):
            def __init__(self):
                self.done = False

            def corrupt(self, flit, channel, rng):
                if (
                    not self.done
                    and flit.kind is FlitKind.BODY
                    and flit.index == 1
                ):
                    self.done = True
                    return True
                return False

        engine = make_engine(mode)
        engine.fault_model = OneShot()
        msg = Message(0, 5, 4, seq=0)
        engine.admit(msg)
        engine.run_until_drained(4000)
        return engine, msg

    def test_cr_delivers_corrupt_payload(self):
        """Without FCR there is no integrity protection: the corrupt
        message is delivered and counted."""
        engine, msg = self._run_with_corrupted_body(ProtocolMode.CR)
        assert msg.delivered
        assert engine.ledger.corrupt_deliveries == 1

    def test_fcr_fkills_and_retries(self):
        engine, msg = self._run_with_corrupted_body(ProtocolMode.FCR)
        assert msg.delivered
        assert msg.fkills == 1
        assert engine.ledger.corrupt_deliveries == 0
        assert engine.stats.counters.get("late_corruption", 0) == 0

    def test_fcr_header_fault_router_kill(self):
        from repro.faults.model import FaultModel

        class HeadShot(FaultModel):
            def __init__(self):
                self.done = False

            def corrupt(self, flit, channel, rng):
                if not self.done and flit.is_head:
                    self.done = True
                    return True
                return False

        engine = make_engine(ProtocolMode.FCR)
        engine.fault_model = HeadShot()
        msg = Message(0, 5, 4, seq=0)
        engine.admit(msg)
        engine.run_until_drained(4000)
        assert msg.delivered
        assert msg.kills >= 1
        assert engine.stats.counters.get("kills_header_fault", 0) == 1


class TestSinkContention:
    def test_single_sink_serialises_arrivals(self):
        """Two worms to the same node with one ejection channel must
        deliver one after the other."""
        engine = make_engine(ProtocolMode.PLAIN, num_sink=1)
        a = Message(1, 0, 10, seq=0)
        b = Message(4, 0, 10, seq=0)
        engine.admit(a)
        engine.admit(b)
        engine.run_until_drained(2000)
        assert a.delivered and b.delivered
        first, second = sorted((a, b), key=lambda m: m.delivered_at)
        # The second tail cannot complete until the first worm released
        # the ejection port.
        assert second.delivered_at >= first.delivered_at + 2

    def test_two_sinks_overlap(self):
        engine = make_engine(ProtocolMode.PLAIN, num_sink=2)
        a = Message(1, 0, 10, seq=0)
        b = Message(4, 0, 10, seq=0)
        engine.admit(a)
        engine.admit(b)
        engine.run_until_drained(2000)
        gap = abs(a.delivered_at - b.delivered_at)
        assert gap <= 3  # delivered nearly simultaneously
