"""Injector state machine details (driven through a live engine)."""

import pytest

from repro import (
    Engine,
    FirstFree,
    Message,
    MinimalAdaptive,
    ProtocolConfig,
    ProtocolMode,
    WormholeNetwork,
    torus,
)
from repro.core.padding import cr_wire_length, fcr_wire_length
from repro.core.protocol import MessagePhase
from repro.network.flit import FlitKind


def make_engine(mode=ProtocolMode.CR, num_inject=1, order=True, **proto):
    topology = torus(4, 2)
    network = WormholeNetwork(
        topology,
        MinimalAdaptive(topology),
        FirstFree(),
        num_vcs=1,
        num_inject=num_inject,
    )
    protocol = ProtocolConfig(mode=mode, order_preserving=order, **proto)
    return Engine(network, protocol=protocol, seed=5, watchdog=5000)


class TestWireSizing:
    @pytest.mark.parametrize("mode,sizer", [
        (ProtocolMode.CR, cr_wire_length),
        (ProtocolMode.FCR, fcr_wire_length),
    ])
    def test_wire_matches_padding_rule(self, mode, sizer):
        engine = make_engine(mode)
        msg = Message(0, 5, 4, seq=0)
        engine.admit(msg)
        engine.step()
        hops = engine.topology.min_distance(0, 5)
        assert msg.wire_length == sizer(4, hops, engine.protocol.padding)

    def test_plain_mode_no_padding(self):
        engine = make_engine(ProtocolMode.PLAIN)
        msg = Message(0, 5, 4, seq=0)
        engine.admit(msg)
        engine.step()
        assert msg.wire_length == 4

    def test_flit_sequence_shape(self):
        """HEAD, BODY x (payload-1), PAD x rest, final flit is tail."""
        engine = make_engine(ProtocolMode.CR)
        injector = engine.nodes[0].injectors[0]
        msg = Message(0, 5, 4, seq=0)
        msg.begin_attempt(12, now=0)
        flits = [injector._make_flit(msg, i) for i in range(12)]
        assert flits[0].kind is FlitKind.HEAD
        assert all(f.kind is FlitKind.BODY for f in flits[1:4])
        assert all(f.kind is FlitKind.PAD for f in flits[4:])
        assert flits[-1].is_tail
        assert not any(f.is_tail for f in flits[:-1])


class TestInjectionFlow:
    def test_one_flit_per_cycle(self):
        engine = make_engine(ProtocolMode.PLAIN)
        msg = Message(0, 5, 6, seq=0)
        engine.admit(msg)
        engine.step()
        assert msg.flits_injected == 1
        engine.step()
        assert msg.flits_injected == 2

    def test_commit_at_last_flit(self):
        engine = make_engine(ProtocolMode.PLAIN)
        msg = Message(0, 1, 3, seq=0)
        engine.admit(msg)
        while msg.flits_injected < 3:
            engine.step()
        assert msg.phase in (MessagePhase.COMMITTED, MessagePhase.DELIVERED)
        assert msg.committed_at is not None
        assert engine.nodes[0].injectors[0].current is None

    def test_injector_busy_flag(self):
        engine = make_engine(ProtocolMode.PLAIN)
        injector = engine.nodes[0].injectors[0]
        assert not injector.busy
        engine.admit(Message(0, 5, 10, seq=0))
        engine.step()
        assert injector.busy

    def test_parallel_injectors_drain_queue_faster(self):
        single = make_engine(ProtocolMode.PLAIN, num_inject=1, order=False)
        double = make_engine(ProtocolMode.PLAIN, num_inject=2, order=False)
        for engine in (single, double):
            for i, dst in enumerate((5, 10, 15, 6)):
                engine.admit(Message(0, dst, 12, seq=i))
            engine.run_until_drained(2000)
        t_single = max(m.delivered_at for m in single.ledger.deliveries)
        t_double = max(m.delivered_at for m in double.ledger.deliveries)
        assert t_double < t_single


class TestOrderGateInteraction:
    def test_same_dst_serialised(self):
        engine = make_engine(ProtocolMode.CR, num_inject=2)
        first = Message(0, 5, 4, seq=0)
        second = Message(0, 5, 4, seq=1)
        engine.admit(first)
        engine.admit(second)
        engine.step()
        injectors = engine.nodes[0].injectors
        active = [inj.current for inj in injectors if inj.current]
        assert active == [first]  # second waits on the gate

    def test_different_dst_parallel(self):
        engine = make_engine(ProtocolMode.CR, num_inject=2)
        a = Message(0, 5, 4, seq=0)
        b = Message(0, 10, 4, seq=0)
        engine.admit(a)
        engine.admit(b)
        engine.step()
        injectors = engine.nodes[0].injectors
        active = {inj.current for inj in injectors if inj.current}
        assert active == {a, b}

    def test_gate_disabled_allows_same_dst_overlap(self):
        engine = make_engine(ProtocolMode.CR, num_inject=2, order=False)
        a = Message(0, 5, 4, seq=0)
        b = Message(0, 5, 4, seq=1)
        engine.admit(a)
        engine.admit(b)
        engine.step()
        injectors = engine.nodes[0].injectors
        active = [inj.current for inj in injectors if inj.current]
        assert len(active) == 2

    def test_backoff_gap_respected(self):
        from repro import FixedTimeout, StaticGap

        engine = make_engine(
            ProtocolMode.CR,
            timeout=FixedTimeout(8),
            backoff=StaticGap(100),
        )
        # Dead-end the sole minimal path so the first attempt dies.
        engine.network.find_link(0, 1).dead = True
        msg = Message(0, 1, 4, seq=0)
        engine.admit(msg)
        killed_at = None
        for _ in range(400):
            engine.step()
            if msg.kills == 1 and killed_at is None:
                killed_at = engine.now
            if msg.attempts == 2:
                break
        assert killed_at is not None
        assert msg.retransmit_at >= killed_at - 1 + 100
