"""KillManager mechanics: wavefronts, guards, resource returns."""

from repro import (
    Engine,
    FirstFree,
    FixedTimeout,
    Message,
    MinimalAdaptive,
    ProtocolConfig,
    ProtocolMode,
    StaticGap,
    WormholeNetwork,
    torus,
)
from repro.core.protocol import KillCause, MessagePhase


def make_engine(**proto):
    topology = torus(4, 2)
    network = WormholeNetwork(
        topology, MinimalAdaptive(topology), FirstFree(), num_vcs=1
    )
    protocol = ProtocolConfig(mode=ProtocolMode.CR, **proto)
    return Engine(network, protocol=protocol, seed=2, watchdog=5000)


def stretched_worm(engine, length=40):
    """Inject a long worm and freeze it mid-flight by a dead channel.

    Callers that want to drive kills manually must configure a timeout
    long enough (e.g. ``FixedTimeout(1000)``) that the source does not
    kill the worm during the stretch steps.
    """
    topology = engine.topology
    src = topology.node_at((0, 0))
    dst = topology.node_at((2, 0))  # straight-line, FirstFree keeps it
    engine.network.find_link(
        topology.node_at((1, 0)), dst
    ).dead = True
    msg = Message(src, dst, length, seq=0)
    engine.admit(msg)
    # Let it stretch and stall.
    for _ in range(10):
        engine.step()
    assert msg.phase is MessagePhase.INJECTING
    return msg


class TestInitiateGuards:
    def test_kill_requires_injecting(self):
        engine = make_engine()
        msg = Message(0, 1, 4, seq=0)
        engine.admit(msg)
        engine.run_until_drained(500)
        assert msg.phase is MessagePhase.DELIVERED
        engine.kills.initiate(
            msg, KillCause.SOURCE_TIMEOUT, backward=False, now=engine.now
        )
        assert msg.phase is MessagePhase.DELIVERED  # no-op
        assert msg.kills == 0

    def test_double_kill_is_single(self):
        engine = make_engine(timeout=FixedTimeout(1000), backoff=StaticGap(500))
        msg = stretched_worm(engine)
        assert msg.phase is MessagePhase.INJECTING
        engine.kills.initiate(
            msg, KillCause.SOURCE_TIMEOUT, backward=False, now=engine.now
        )
        first_kills = msg.kills
        engine.kills.initiate(
            msg, KillCause.SOURCE_TIMEOUT, backward=False, now=engine.now
        )
        assert msg.kills == first_kills == 1

    def test_committed_killable_only_when_allowed(self):
        engine = make_engine()
        msg = Message(0, 1, 4, seq=0)
        engine.admit(msg)
        while not msg.committed:
            engine.step()
        engine.kills.initiate(
            msg, KillCause.PATH_TIMEOUT, backward=False, now=engine.now
        )
        assert msg.phase is MessagePhase.COMMITTED
        engine.kills.initiate(
            msg,
            KillCause.PATH_TIMEOUT,
            backward=False,
            now=engine.now,
            allow_committed=True,
        )
        assert msg.phase is MessagePhase.KILLED


class TestWavefront:
    def test_flush_rate_one_segment_per_cycle(self):
        engine = make_engine(timeout=FixedTimeout(1000), backoff=StaticGap(500))
        msg = stretched_worm(engine)
        engine.kills.initiate(
            msg, KillCause.SOURCE_TIMEOUT, backward=False, now=engine.now
        )
        segments = len(msg.kill_wavefront)
        assert segments >= 2
        for remaining in range(segments - 1, -1, -1):
            engine.step()
            if msg.kill_wavefront is None:
                break
            assert len(msg.kill_wavefront) == remaining

    def test_all_resources_returned_after_flush(self):
        engine = make_engine(timeout=FixedTimeout(1000), backoff=StaticGap(500))
        msg = stretched_worm(engine)
        engine.kills.initiate(
            msg, KillCause.SOURCE_TIMEOUT, backward=False, now=engine.now
        )
        for _ in range(30):
            engine.step()
        assert msg.phase is MessagePhase.QUEUED
        for router in engine.routers:
            assert not router.claims
            assert not router.out_owner
            for port_bufs in router.in_buffers:
                for buf in port_bufs:
                    assert buf.occupancy == 0
                    assert buf.owner is None

    def test_backward_plan_is_reversed(self):
        engine = make_engine(timeout=FixedTimeout(1000), backoff=StaticGap(500))
        msg = stretched_worm(engine)
        forward_order = list(msg.active_segments)
        engine.kills.initiate(
            msg, KillCause.FKILL, backward=True, now=engine.now
        )
        assert msg.kill_wavefront == list(reversed(forward_order))
        assert msg.fkills == 1 and msg.kills == 0

    def test_retransmit_time_includes_gap(self):
        engine = make_engine(timeout=FixedTimeout(1000), backoff=StaticGap(77))
        msg = stretched_worm(engine)
        now = engine.now
        engine.kills.initiate(
            msg, KillCause.SOURCE_TIMEOUT, backward=False, now=now
        )
        assert msg.retransmit_at == now + 77

    def test_kill_reason_recorded(self):
        engine = make_engine(timeout=FixedTimeout(1000), backoff=StaticGap(500))
        msg = stretched_worm(engine)
        engine.kills.initiate(
            msg, KillCause.HEADER_FAULT, backward=True, now=engine.now
        )
        assert msg.kill_reason == "header_fault"
        assert engine.stats.counters["kills_header_fault"] == 1
