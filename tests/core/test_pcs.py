"""Pipelined circuit switching (the E20 baseline)."""

from repro import SimConfig, run_simulation
from repro.core.protocol import MessagePhase


def pcs_config(**overrides):
    base = dict(
        routing="pcs", radix=4, dims=2, load=0.15, message_length=8,
        warmup=100, measure=500, drain=6000, seed=9,
    )
    base.update(overrides)
    return SimConfig(**base)


def clean(engine):
    for router in engine.routers:
        if router.claims or router.out_owner:
            return False
        for port_bufs in router.in_buffers:
            for buf in port_bufs:
                if buf.occupancy or buf.owner is not None:
                    return False
    return True


class TestBasics:
    def test_everything_delivered_and_clean(self):
        result = run_simulation(pcs_config(), keep_engine=True)
        assert result.drained
        assert result.report["undelivered"] == 0
        assert clean(result.engine)

    def test_no_padding(self):
        result = run_simulation(pcs_config(load=0.05))
        for msg in result.ledger.deliveries:
            assert msg.wire_length == msg.payload_length

    def test_setup_latency_floor(self):
        """Even uncontended, PCS pays probe + ack before data moves:
        latency >= ~3x one-way distance + serialisation."""
        result = run_simulation(pcs_config(load=0.02))
        for msg in result.ledger.deliveries:
            hops = result.config.make_topology().min_distance(
                msg.src, msg.dst
            )
            assert msg.network_latency() >= 2 * hops

    def test_circuits_counted(self):
        result = run_simulation(pcs_config())
        report = result.report
        assert report.get("probes_launched", 0) >= \
            report["messages_delivered"]
        assert report.get("circuits_established", 0) >= \
            report["messages_delivered"]

    def test_no_kills_ever(self):
        """Data on a reserved circuit cannot block: no kill machinery."""
        result = run_simulation(pcs_config(load=0.3, drain=10000))
        assert result.report.get("kills_source_timeout", 0) == 0
        assert result.report.get("kills_fkill", 0) == 0


class TestContention:
    def test_backtracks_under_load(self):
        light = run_simulation(pcs_config(load=0.05))
        heavy = run_simulation(pcs_config(load=0.3, drain=10000))
        assert (
            heavy.report.get("probe_backtracks", 0)
            > light.report.get("probe_backtracks", 0)
        )

    def test_probe_failures_retry_and_deliver(self):
        result = run_simulation(pcs_config(load=0.35, drain=12000))
        assert result.report.get("probe_failures", 0) > 0
        assert result.report["undelivered"] == 0
        assert result.drained


class TestFaultTolerance:
    def test_routes_around_dead_links(self):
        """Backtracking search avoids dead channels without data loss."""
        config = pcs_config(load=0.08, permanent_faults=2, drain=20000,
                            misrouting=True)
        result = run_simulation(config, keep_engine=True)
        assert result.drained
        assert result.report["undelivered"] == 0
        assert clean(result.engine)

    def test_dead_end_probe_backtracks(self):
        result = run_simulation(
            pcs_config(load=0.08, permanent_faults=3, drain=20000,
                       seed=4, misrouting=True),
        )
        # With several dead links some probes must have had to retreat.
        assert result.report.get("probe_backtracks", 0) > 0
        assert result.report["undelivered"] == 0


class TestPhases:
    def test_delivered_messages_went_through_probing(self):
        result = run_simulation(pcs_config(load=0.1))
        for msg in result.ledger.deliveries:
            assert msg.phase is MessagePhase.DELIVERED
            assert msg.stream_start_at is not None
            assert msg.committed_at is not None
            assert msg.stream_start_at <= msg.committed_at
