"""Node container: queue, injectors, receiver wiring."""

import pytest

from repro import SimConfig
from repro.core.node import Node
from repro.network.message import Message


def build_node(num_inject=2, queue_cap=4, order=True):
    engine = SimConfig(
        radix=4, dims=2, routing="cr", num_inject=num_inject,
        queue_cap=queue_cap, order_preserving=order,
    ).build()
    return engine.nodes[0], engine


class TestNode:
    def test_injector_per_channel(self):
        node, engine = build_node(num_inject=3)
        assert len(node.injectors) == 3
        channels = {inj.channel for inj in node.injectors}
        assert len(channels) == 3

    def test_enqueue_respects_cap(self):
        node, _ = build_node(queue_cap=2)
        assert node.enqueue(Message(0, 1, 4))
        assert node.enqueue(Message(0, 2, 4))
        assert not node.enqueue(Message(0, 3, 4))
        assert node.backlog == 2

    def test_requeue_bypasses_cap(self):
        """Killed messages re-enter at the front even when full --
        dropping them would lose data."""
        node, _ = build_node(queue_cap=1)
        assert node.enqueue(Message(0, 1, 4))
        retry = Message(0, 2, 4)
        node.queue.appendleft(retry)  # what KillManager._complete does
        assert node.backlog == 2
        assert node.queue[0] is retry

    def test_gate_mode_follows_config(self):
        ordered, _ = build_node(order=True)
        free, _ = build_node(order=False)
        assert ordered.gate.enabled
        assert not free.gate.enabled

    def test_invalid_queue_cap(self):
        engine = SimConfig(radix=4, dims=2).build()
        with pytest.raises(ValueError):
            Node(0, engine.network.injection_channels[0], engine,
                 queue_cap=0)
