"""Imin / padding arithmetic."""

import pytest

from repro.core.padding import (
    PaddingParams,
    cr_min_injection_length,
    cr_wire_length,
    fcr_wire_length,
    padding_overhead,
    path_capacity,
)


class TestPathCapacity:
    def test_formula(self):
        params = PaddingParams(buffer_depth=2, channel_latency=1,
                               eject_slots=1)
        # (hops+1) * (2+1) + 1
        assert path_capacity(0, params) == 4
        assert path_capacity(4, params) == 16

    def test_scales_with_depth(self):
        shallow = PaddingParams(buffer_depth=1)
        deep = PaddingParams(buffer_depth=8)
        assert path_capacity(4, deep) > path_capacity(4, shallow)

    def test_scales_with_latency(self):
        fast = PaddingParams(channel_latency=1)
        slow = PaddingParams(channel_latency=4)
        assert path_capacity(4, slow) > path_capacity(4, fast)

    def test_negative_hops(self):
        with pytest.raises(ValueError):
            path_capacity(-1, PaddingParams())


class TestCrWireLength:
    def test_imin_is_capacity_plus_one(self):
        params = PaddingParams()
        assert (
            cr_min_injection_length(3, params)
            == path_capacity(3, params) + 1
        )

    def test_short_messages_padded(self):
        params = PaddingParams()
        wire = cr_wire_length(4, 3, params)
        assert wire == cr_min_injection_length(3, params)

    def test_long_messages_unpadded(self):
        params = PaddingParams()
        assert cr_wire_length(500, 3, params) == 500

    def test_monotone_in_hops(self):
        params = PaddingParams()
        wires = [cr_wire_length(4, h, params) for h in range(8)]
        assert wires == sorted(wires)

    def test_invalid_payload(self):
        with pytest.raises(ValueError):
            cr_wire_length(0, 3, PaddingParams())


class TestFcrWireLength:
    def test_always_at_least_cr(self):
        params = PaddingParams()
        for hops in range(8):
            for payload in (1, 4, 16, 64):
                assert fcr_wire_length(payload, hops, params) >= \
                    cr_wire_length(payload, hops, params)

    def test_pads_beyond_payload_plus_roundtrip(self):
        params = PaddingParams()
        hops = 4
        wire = fcr_wire_length(16, hops, params)
        # payload + capacity + return trip + slack
        assert wire == 16 + path_capacity(hops, params) + hops + params.slack

    def test_long_messages_still_pay_roundtrip(self):
        # FCR never delivers unpadded: the FKILL window must stay open.
        params = PaddingParams()
        assert fcr_wire_length(1000, 4, params) > 1000

    def test_invalid_payload(self):
        with pytest.raises(ValueError):
            fcr_wire_length(0, 3, PaddingParams())


class TestOverhead:
    def test_zero_when_unpadded(self):
        assert padding_overhead(16, 16) == 0.0

    def test_fraction(self):
        assert padding_overhead(8, 16) == pytest.approx(0.5)

    def test_rejects_wire_shorter_than_payload(self):
        with pytest.raises(ValueError):
            padding_overhead(16, 8)
