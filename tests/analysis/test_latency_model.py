"""Analytical zero-load models, and their agreement with the simulator.

The model-vs-simulator tests are the substrate's timing validation: if
the engine's pipeline (one hop per cycle, one flit per channel per
cycle, injection/ejection stages) drifts, these fail.
"""

import pytest

from repro import PaddingParams, SimConfig, run_simulation, torus
from repro.analysis.latency_model import (
    cr_latency,
    fcr_latency,
    mean_uniform_latency,
    pcs_latency,
    plain_latency,
)


class TestFormulas:
    def test_plain_pipeline(self):
        # 4 hops, 16 flits: header takes 6 channel stages, the tail
        # trails by wire-1.
        assert plain_latency(16, 4) == 6 + 15

    def test_plain_scales_with_channel_latency(self):
        assert plain_latency(16, 4, channel_latency=2) == 12 + 15

    def test_cr_adds_padding(self):
        params = PaddingParams()
        assert cr_latency(4, 4, params) > plain_latency(4, 4)
        # Long messages pay nothing extra.
        assert cr_latency(400, 4, params) == plain_latency(400, 4)

    def test_fcr_exceeds_cr(self):
        params = PaddingParams()
        assert fcr_latency(16, 4, params) > cr_latency(16, 4, params)

    def test_pcs_adds_round_trip(self):
        assert pcs_latency(16, 4) == plain_latency(16, 4) + 8

    def test_validation(self):
        with pytest.raises(ValueError):
            plain_latency(0, 4)
        with pytest.raises(ValueError):
            plain_latency(4, 0)
        with pytest.raises(ValueError):
            mean_uniform_latency(torus(4, 2), 8, scheme="bogus")


class TestModelVsSimulator:
    """At near-zero load, measured network latency must sit within a
    small margin of the closed-form prediction (queueing ~ 0)."""

    LOAD = 0.02

    def _measured(self, scheme, **overrides):
        config = SimConfig(
            routing=scheme, radix=4, dims=2, load=self.LOAD,
            message_length=8, warmup=200, measure=2500, drain=3000,
            seed=7, **overrides,
        )
        result = run_simulation(config)
        return float(result.report["network_latency_mean"])

    @pytest.mark.parametrize("scheme,model_name", [
        ("dor", "plain"),
        ("cr", "cr"),
        ("fcr", "fcr"),
        ("pcs", "pcs"),
    ])
    def test_zero_load_agreement(self, scheme, model_name):
        predicted = mean_uniform_latency(
            torus(4, 2), payload=8, scheme=model_name,
            params=PaddingParams(),
        )
        measured = self._measured(scheme)
        assert measured == pytest.approx(predicted, rel=0.15), (
            f"{scheme}: measured {measured:.1f} vs model {predicted:.1f}"
        )

    def test_model_ordering_matches_simulator(self):
        """fcr > cr > plain at zero load, in both model and sim."""
        m_dor = self._measured("dor")
        m_cr = self._measured("cr")
        m_fcr = self._measured("fcr")
        assert m_dor < m_cr < m_fcr
        params = PaddingParams()
        topo = torus(4, 2)
        assert (
            mean_uniform_latency(topo, 8, "plain", params)
            < mean_uniform_latency(topo, 8, "cr", params)
            < mean_uniform_latency(topo, 8, "fcr", params)
        )
