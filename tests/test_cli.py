"""CLI surface: every subcommand and failure mode."""

import pytest

from repro.cli import main as cli_main
from repro.experiments import REGISTRY


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            cli_main([])

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["experiment", "e99"])

    def test_unknown_routing_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run", "--routing", "banana"])


class TestListCommand:
    def test_lists_every_registered_experiment(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in REGISTRY:
            assert exp_id in out


class TestRunCommand:
    def test_mesh_topology(self, capsys):
        code = cli_main(
            [
                "run", "--routing", "turn", "--topology", "mesh",
                "--radix", "4", "--load", "0.1",
                "--warmup", "50", "--measure", "200", "--drain", "1500",
                "--message-length", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4-ary 2-mesh" in out

    def test_fcr_with_faults(self, capsys):
        code = cli_main(
            [
                "run", "--routing", "fcr", "--radix", "4",
                "--fault-rate", "0.001", "--load", "0.08",
                "--warmup", "50", "--measure", "200", "--drain", "4000",
                "--message-length", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency_mean" in out
        assert "fcr on 4-ary 2-torus" in out


class TestExperimentCommand:
    def test_cheap_experiment_quick_scale(self, capsys):
        assert cli_main(["experiment", "t01"]) == 0
        out = capsys.readouterr().out
        assert "interface" in out
        assert "fcr" in out
