"""CLI surface: every subcommand and failure mode."""

import pytest

from repro.cli import main as cli_main
from repro.experiments import REGISTRY


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            cli_main([])

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["experiment", "e99"])

    def test_unknown_routing_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run", "--routing", "banana"])


class TestListCommand:
    def test_lists_every_registered_experiment(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in REGISTRY:
            assert exp_id in out

    def test_every_experiment_shows_its_description(self, capsys):
        """Users discover scenarios from the list itself: every entry
        carries the one-line description from its module docstring."""
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id, module in REGISTRY.items():
            first_line = (module.__doc__ or "").strip().splitlines()[0]
            assert first_line, f"{exp_id} has no module docstring"
            assert first_line in out


class TestRunCommand:
    def test_mesh_topology(self, capsys):
        code = cli_main(
            [
                "run", "--routing", "turn", "--topology", "mesh",
                "--radix", "4", "--load", "0.1",
                "--warmup", "50", "--measure", "200", "--drain", "1500",
                "--message-length", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4-ary 2-mesh" in out

    def test_fcr_with_faults(self, capsys):
        code = cli_main(
            [
                "run", "--routing", "fcr", "--radix", "4",
                "--fault-rate", "0.001", "--load", "0.08",
                "--warmup", "50", "--measure", "200", "--drain", "4000",
                "--message-length", "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency_mean" in out
        assert "fcr on 4-ary 2-torus" in out

    def test_fast_engine_matches_reference(self, capsys):
        args = [
            "run", "--routing", "cr", "--radix", "4",
            "--load", "0.2", "--warmup", "50", "--measure", "200",
            "--drain", "1500", "--message-length", "8",
        ]
        outputs = []
        for engine in ("reference", "fast"):
            from repro.network.message import reset_uid_counter

            reset_uid_counter()
            assert cli_main(args + ["--engine", engine]) == 0
            outputs.append(capsys.readouterr().out)
        # Flit-identical engines print flit-identical reports.
        assert outputs[0] == outputs[1]
        assert "latency_mean" in outputs[0]

    def test_profile_prints_hotspot_table(self, capsys):
        code = cli_main(
            [
                "run", "--routing", "cr", "--radix", "4",
                "--load", "0.2", "--warmup", "50", "--measure", "200",
                "--drain", "1500", "--message-length", "8",
                "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine phase hotspots" in out
        assert "routing" in out and "switch" in out


class TestSweepCommand:
    ARGS = [
        "sweep", "--routing", "dor", "--radix", "4",
        "--loads", "0.1,0.15", "--warmup", "50", "--measure", "200",
        "--drain", "1500", "--message-length", "8",
    ]

    def test_parallel_no_cache_smoke(self, capsys):
        code = cli_main(self.ARGS + ["--workers", "2", "--no-cache"])
        assert code == 0
        captured = capsys.readouterr()
        assert "dor load sweep" in captured.out
        assert "[2/2]" in captured.err  # per-point progress on stderr

    def test_cache_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert cli_main(self.ARGS + ["--cache-dir", cache_dir]) == 0
        first = capsys.readouterr()
        assert cli_main(self.ARGS + ["--cache-dir", cache_dir]) == 0
        second = capsys.readouterr()
        assert "2 hit(s)" in second.err
        # cached rows render the same table
        assert second.out == first.out


class TestTraceCommand:
    ARGS = [
        "trace", "--routing", "cr", "--radix", "4", "--cycles", "400",
        "--message-length", "8", "--load", "0.3", "--seed", "5",
    ]

    def test_flags_mode_writes_parsable_artifacts(self, tmp_path, capsys):
        import json

        from repro import read_jsonl

        jsonl = str(tmp_path / "run.jsonl")
        perfetto = str(tmp_path / "run.perfetto.json")
        csv_path = str(tmp_path / "series.csv")
        code = cli_main(self.ARGS + [
            "--jsonl", jsonl, "--perfetto", perfetto,
            "--sample-interval", "100", "--series-csv", csv_path,
            "--events", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "buffer occupancy" in out
        assert "busiest link channels" in out
        assert "last 3 event(s)" in out
        events = read_jsonl(jsonl)
        assert events and all("event" in e for e in events)
        with open(perfetto) as handle:
            assert json.load(handle)["traceEvents"]
        with open(csv_path) as handle:
            assert handle.readline().startswith("index,")

    def test_preset_defaults_artifacts_under_results(
        self, tmp_path, monkeypatch, capsys
    ):
        import json
        import os

        from repro import read_jsonl

        monkeypatch.chdir(tmp_path)
        assert cli_main(["trace", "e01", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "e01 (cr, load 0.3)" in out
        jsonl = os.path.join("results", "traces", "e01.jsonl")
        perfetto = os.path.join("results", "traces", "e01.perfetto.json")
        assert read_jsonl(jsonl)
        with open(perfetto) as handle:
            assert json.load(handle)["traceEvents"]

    def test_unknown_preset_fails_with_choices(self, capsys):
        code = cli_main(["trace", "e99"])
        assert code != 0
        err = capsys.readouterr().err
        assert "fault-matrix" in err

    def test_profile_writes_hotspot_and_prometheus(
        self, tmp_path, capsys
    ):
        from repro.obs import parse_prometheus_text

        hotspot = str(tmp_path / "run.hotspot.md")
        prom = str(tmp_path / "run.prom.txt")
        code = cli_main(self.ARGS + [
            "--profile", "--hotspot", hotspot, "--prom", prom,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine phase hotspots" in out
        with open(hotspot) as handle:
            assert handle.read().startswith("# Engine phase hotspots")
        with open(prom) as handle:
            parsed = parse_prometheus_text(handle.read())
        assert "cr_messages_delivered_total" in parsed

    def test_profile_merges_counter_track_into_perfetto(
        self, tmp_path, capsys
    ):
        import json

        perfetto = str(tmp_path / "run.perfetto.json")
        code = cli_main(self.ARGS + [
            "--profile", "100", "--perfetto", perfetto,
        ])
        assert code == 0
        with open(perfetto) as handle:
            entries = json.load(handle)["traceEvents"]
        assert any(e.get("ph") == "C" for e in entries)

    def test_hotspot_without_profile_exits_2(self, capsys):
        code = cli_main(self.ARGS + ["--hotspot"])
        assert code == 2
        assert "--profile" in capsys.readouterr().err


class TestExperimentCommand:
    def test_cheap_experiment_quick_scale(self, capsys):
        assert cli_main(["experiment", "t01"]) == 0
        out = capsys.readouterr().out
        assert "interface" in out
        assert "fcr" in out

    def test_workers_override_accepted(self, capsys):
        assert cli_main(
            ["experiment", "t01", "--workers", "2", "--no-cache"]
        ) == 0
        assert "interface" in capsys.readouterr().out


class TestVerifyCommand:
    def test_list_shows_presets_and_mutations(self, capsys):
        assert cli_main(["verify", "--list"]) == 0
        out = capsys.readouterr().out
        assert "e01" in out
        assert "credit-loss" in out
        assert "kill-protocol" in out

    def test_clean_preset_passes(self, capsys):
        assert cli_main(["verify", "e01", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "pass   e01" in out
        assert "all invariants hold" in out

    def test_mutated_preset_is_caught(self, capsys):
        assert cli_main(
            ["verify", "e01", "--quick", "--mutation", "credit-loss"]
        ) == 0
        out = capsys.readouterr().out
        assert "CAUGHT e01" in out
        assert "caught in 1/1" in out

    def test_unknown_preset_exits_2(self, capsys):
        assert cli_main(["verify", "e99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "e01" in err

    def test_unknown_mutation_exits_2(self, capsys):
        assert cli_main(["verify", "e01", "--mutation", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown mutation" in err
        assert "credit-loss" in err


class TestUsageExitCodes:
    """Consistency pin: misuse exits 2 with a message on stderr.

    argparse gives unknown flags exit 2 for free; the subcommands that
    validate names themselves (trace/verify presets, campaign names)
    must follow the same convention rather than exiting 1.
    """

    @pytest.mark.parametrize("argv", [
        ["run", "--bogus-flag"],
        ["experiment", "t01", "--bogus-flag"],
        ["trace", "--bogus-flag"],
        ["campaign", "run", "fault-matrix", "--bogus-flag"],
        ["verify", "--bogus-flag"],
    ])
    def test_unknown_flag_exits_2(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(argv)
        assert exc.value.code == 2
        assert "usage" in capsys.readouterr().err

    def test_unknown_campaign_name_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["campaign", "run", "no-such-campaign"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "neither a built-in campaign" in err

    def test_unknown_report_campaign_exits_2(self, tmp_path, capsys):
        db = str(tmp_path / "empty.db")
        assert cli_main(
            ["campaign", "report", "missing-a", "missing-b", "--db", db]
        ) == 2
        assert "no stored campaign" in capsys.readouterr().err

    def test_trace_unknown_preset_exits_2(self, capsys):
        assert cli_main(["trace", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["run", "--workload", "zipf"],
        ["sweep", "--loads", "0.1", "--workload", "zipf"],
        ["trace", "--workload", "zipf"],
        ["campaign", "run", "fault-matrix", "--workload", "zipf"],
    ])
    def test_unknown_workload_exits_2(self, argv, capsys):
        assert cli_main(argv) == 2
        err = capsys.readouterr().err
        assert "unknown workload kind" in err
        assert "mmpp" in err  # the message lists the choices

    def test_malformed_cascade_spec_exits_2(self, capsys):
        assert cli_main(
            ["run", "--cascade-faults", "base_hazard"]
        ) == 2
        assert "key=value" in capsys.readouterr().err
