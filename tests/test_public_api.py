"""Public-API hygiene: exports exist, are documented, and round-trip."""

import inspect


import repro


class TestAllList:
    def test_every_name_in_all_exists(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing {name}"

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_every_public_item_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_key_entry_points_present(self):
        for name in (
            "SimConfig", "run_simulation", "Engine", "Message",
            "WormholeNetwork", "ProtocolConfig", "torus",
        ):
            assert name in repro.__all__


class TestModuleDocstrings:
    def test_every_module_has_a_docstring(self):
        import pathlib

        root = pathlib.Path(repro.__file__).parent
        missing = []
        for path in sorted(root.rglob("*.py")):
            text = path.read_text()
            stripped = text.lstrip()
            if not stripped:
                continue  # empty __init__ stubs
            if not stripped.startswith(('"""', "'''", 'r"""')):
                missing.append(str(path.relative_to(root)))
        assert not missing, f"modules without docstrings: {missing}"


class TestVersion:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)
