"""Unit tests for k-ary n-cube topologies (torus and mesh)."""

import pytest

from repro.topology.torus import KAryNCube, mesh, torus


class TestConstruction:
    def test_node_count(self):
        assert torus(4, 2).num_nodes == 16
        assert torus(8, 2).num_nodes == 64
        assert mesh(3, 3).num_nodes == 27

    def test_names(self):
        assert torus(8, 2).name == "8-ary 2-torus"
        assert mesh(4, 3).name == "4-ary 3-mesh"

    def test_invalid_radix(self):
        with pytest.raises(ValueError):
            KAryNCube(1, 2)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            KAryNCube(4, 0)

    def test_degenerate_2ary_torus_rejected(self):
        with pytest.raises(ValueError):
            KAryNCube(2, 3, wrap=True)

    def test_2ary_mesh_allowed(self):
        topo = mesh(2, 3)
        assert topo.num_nodes == 8


class TestCoords:
    def test_roundtrip_all_nodes(self):
        topo = torus(4, 3)
        for node in range(topo.num_nodes):
            assert topo.node_at(topo.coords(node)) == node

    def test_row_major_order(self):
        topo = torus(4, 2)
        assert topo.coords(0) == (0, 0)
        assert topo.coords(1) == (0, 1)
        assert topo.coords(4) == (1, 0)

    def test_out_of_range_node(self):
        with pytest.raises(ValueError):
            torus(4, 2).coords(16)

    def test_bad_coordinate(self):
        with pytest.raises(ValueError):
            torus(4, 2).node_at((4, 0))

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            torus(4, 2).node_at((1, 2, 3))


class TestLinks:
    def test_torus_degree_constant(self):
        topo = torus(4, 2)
        for node in range(topo.num_nodes):
            assert len(topo.links(node)) == 4

    def test_mesh_corner_degree(self):
        topo = mesh(4, 2)
        corner = topo.node_at((0, 0))
        assert len(topo.links(corner)) == 2

    def test_mesh_interior_degree(self):
        topo = mesh(4, 2)
        interior = topo.node_at((1, 1))
        assert len(topo.links(interior)) == 4

    def test_ports_densely_numbered(self):
        topo = mesh(4, 2)
        for node in range(topo.num_nodes):
            ports = [link.port for link in topo.links(node)]
            assert ports == list(range(len(ports)))

    def test_wrap_links_marked(self):
        topo = torus(4, 2)
        edge = topo.node_at((3, 3))
        wraps = [link for link in topo.links(edge) if link.is_wrap]
        assert len(wraps) == 2
        assert all(link.direction == 1 for link in wraps)

    def test_mesh_has_no_wrap_links(self):
        topo = mesh(4, 2)
        for node in range(topo.num_nodes):
            assert not any(link.is_wrap for link in topo.links(node))

    def test_links_are_symmetric(self):
        topo = torus(4, 2)
        for node in range(topo.num_nodes):
            for link in topo.links(node):
                back = [l for l in topo.links(link.dst) if l.dst == node]
                assert back, f"no reverse link for {node}->{link.dst}"


class TestDistance:
    def test_torus_wrap_shortcut(self):
        topo = torus(8, 2)
        a = topo.node_at((0, 0))
        b = topo.node_at((0, 7))
        assert topo.min_distance(a, b) == 1

    def test_mesh_no_shortcut(self):
        topo = mesh(8, 2)
        a = topo.node_at((0, 0))
        b = topo.node_at((0, 7))
        assert topo.min_distance(a, b) == 7

    def test_symmetric(self):
        topo = torus(5, 2)
        for a in range(0, topo.num_nodes, 3):
            for b in range(0, topo.num_nodes, 4):
                assert topo.min_distance(a, b) == topo.min_distance(b, a)

    def test_average_min_distance_torus(self):
        # k-ary 1-torus with k=4: distances 1,2,1 -> mean 4/3.
        topo = torus(4, 1)
        assert topo.average_min_distance() == pytest.approx(4 / 3)


class TestProductiveLinks:
    def test_reduce_distance(self):
        topo = torus(5, 2)
        for src in range(0, topo.num_nodes, 2):
            for dst in range(1, topo.num_nodes, 3):
                if src == dst:
                    continue
                d = topo.min_distance(src, dst)
                for link in topo.productive_links(src, dst):
                    assert topo.min_distance(link.dst, dst) == d - 1

    def test_empty_at_destination(self):
        topo = torus(4, 2)
        assert topo.productive_links(5, 5) == []

    def test_halfway_both_directions(self):
        topo = torus(4, 1)
        links = topo.productive_links(0, 2)  # distance exactly k/2
        directions = sorted(link.direction for link in links)
        assert directions == [-1, 1]

    def test_mesh_single_direction(self):
        topo = mesh(4, 2)
        a = topo.node_at((0, 0))
        b = topo.node_at((0, 3))
        links = topo.productive_links(a, b)
        assert len(links) == 1
        assert links[0].direction == 1


class TestDorLink:
    def test_lowest_dimension_first(self):
        topo = torus(4, 2)
        src = topo.node_at((0, 0))
        dst = topo.node_at((2, 2))
        link = topo.dor_link(src, dst)
        assert link.dim == 0

    def test_second_dim_when_first_aligned(self):
        topo = torus(4, 2)
        src = topo.node_at((2, 0))
        dst = topo.node_at((2, 2))
        link = topo.dor_link(src, dst)
        assert link.dim == 1

    def test_ties_resolve_positive(self):
        topo = torus(4, 1)
        link = topo.dor_link(0, 2)
        assert link.direction == 1

    def test_at_destination_raises(self):
        with pytest.raises(ValueError):
            torus(4, 2).dor_link(3, 3)

    def test_full_dor_walk_terminates(self):
        topo = torus(5, 3)
        src, dst = 0, topo.num_nodes - 1
        node, hops = src, 0
        while node != dst:
            node = topo.dor_link(node, dst).dst
            hops += 1
            assert hops <= topo.min_distance(src, dst)
        assert hops == topo.min_distance(src, dst)
