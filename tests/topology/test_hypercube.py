"""Unit tests for the hypercube topology."""

import pytest

from repro.topology.hypercube import Hypercube


class TestHypercube:
    def test_node_count(self):
        assert Hypercube(4).num_nodes == 16

    def test_degree_equals_dims(self):
        topo = Hypercube(4)
        for node in range(topo.num_nodes):
            assert len(topo.links(node)) == 4

    def test_distance_is_hamming(self):
        topo = Hypercube(4)
        assert topo.min_distance(0b0000, 0b1111) == 4
        assert topo.min_distance(0b1010, 0b1010) == 0
        assert topo.min_distance(0b1010, 0b1000) == 1

    def test_coords_roundtrip(self):
        topo = Hypercube(3)
        for node in range(topo.num_nodes):
            assert topo.node_at(topo.coords(node)) == node

    def test_coords_are_bits(self):
        topo = Hypercube(3)
        assert topo.coords(0b101) == (1, 0, 1)

    def test_productive_links_flip_differing_bits(self):
        topo = Hypercube(4)
        links = topo.productive_links(0b0000, 0b0101)
        dims = sorted(link.dim for link in links)
        assert dims == [0, 2]

    def test_dor_lowest_bit_first(self):
        topo = Hypercube(4)
        link = topo.dor_link(0b0000, 0b1100)
        assert link.dim == 2

    def test_dor_at_destination_raises(self):
        with pytest.raises(ValueError):
            Hypercube(3).dor_link(5, 5)

    def test_dor_walk_is_minimal(self):
        topo = Hypercube(5)
        src, dst = 0b00000, 0b10111
        node, hops = src, 0
        while node != dst:
            node = topo.dor_link(node, dst).dst
            hops += 1
        assert hops == topo.min_distance(src, dst)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Hypercube(0)

    def test_bad_coordinate_value(self):
        with pytest.raises(ValueError):
            Hypercube(3).node_at((0, 2, 0))
