"""Unit tests for the arbitrary-graph topology."""

import pytest

from repro.topology.graph import GraphTopology


def ring(n):
    return GraphTopology.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


class TestConstruction:
    def test_from_edges_bidirectional(self):
        topo = ring(6)
        assert topo.num_nodes == 6
        assert len(topo.links(0)) == 2

    def test_from_edges_directed(self):
        topo = GraphTopology.from_edges(
            3, [(0, 1), (1, 2), (2, 0)], bidirectional=False
        )
        assert len(topo.links(0)) == 1
        assert topo.min_distance(0, 2) == 2
        assert topo.min_distance(2, 0) == 1

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            GraphTopology.from_edges(4, [(0, 1), (2, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            GraphTopology({0: [0, 1], 1: [0]})

    def test_sparse_numbering_rejected(self):
        with pytest.raises(ValueError, match="densely"):
            GraphTopology({0: [2], 2: [0]})

    def test_edge_out_of_range(self):
        with pytest.raises(ValueError):
            GraphTopology({0: [5], 1: [0]})

    def test_from_networkx(self):
        networkx = pytest.importorskip("networkx")
        graph = networkx.petersen_graph()
        topo = GraphTopology.from_networkx(graph)
        assert topo.num_nodes == 10
        assert topo.average_min_distance() > 1


class TestRoutingQueries:
    def test_bfs_distances_on_ring(self):
        topo = ring(8)
        assert topo.min_distance(0, 4) == 4
        assert topo.min_distance(0, 7) == 1

    def test_productive_links_reduce_distance(self):
        topo = ring(7)
        for src in range(7):
            for dst in range(7):
                if src == dst:
                    continue
                d = topo.min_distance(src, dst)
                for link in topo.productive_links(src, dst):
                    assert topo.min_distance(link.dst, dst) == d - 1

    def test_halfway_ring_has_two_choices(self):
        topo = ring(8)
        assert len(topo.productive_links(0, 4)) == 2

    def test_dor_link_deterministic(self):
        topo = ring(8)
        first = topo.dor_link(0, 3)
        assert first == topo.dor_link(0, 3)

    def test_dor_at_destination_raises(self):
        with pytest.raises(ValueError):
            ring(5).dor_link(2, 2)
