"""Trace recording and replay (workload-identical A/B methodology)."""

import pytest

from repro import SimConfig, run_simulation
from repro.traffic.trace import (
    Trace,
    TraceEntry,
    TraceReplayGenerator,
    record_trace,
)


def base_config(**overrides):
    defaults = dict(
        radix=4, dims=2, routing="cr", load=0.15, message_length=8,
        warmup=50, measure=400, drain=4000, seed=19,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestTrace:
    def test_entries_sorted_by_cycle(self):
        trace = Trace(
            [TraceEntry(5, 0, 1, 4), TraceEntry(1, 2, 3, 4),
             TraceEntry(3, 1, 0, 4)]
        )
        assert [e.cycle for e in trace] == [1, 3, 5]

    def test_tuple_roundtrip(self):
        trace = Trace([TraceEntry(1, 0, 1, 8), TraceEntry(2, 3, 0, 4)])
        again = Trace.from_tuples(trace.as_tuples())
        assert again.as_tuples() == trace.as_tuples()

    def test_totals(self):
        trace = Trace([TraceEntry(0, 0, 1, 8), TraceEntry(1, 1, 2, 4)])
        assert len(trace) == 2
        assert trace.total_payload_flits() == 12


class TestRecord:
    def test_recorded_trace_matches_generator_statistics(self):
        config = base_config()
        trace = record_trace(config)
        assert len(trace) > 0
        horizon = config.warmup + config.measure
        assert all(0 <= e.cycle < horizon for e in trace)
        assert all(e.src != e.dst for e in trace)
        assert all(e.length == 8 for e in trace)

    def test_recording_is_deterministic(self):
        config = base_config()
        assert record_trace(config).as_tuples() == \
            record_trace(config).as_tuples()

    def test_seed_changes_trace(self):
        a = record_trace(base_config(seed=1))
        b = record_trace(base_config(seed=2))
        assert a.as_tuples() != b.as_tuples()


class TestReplay:
    def test_replay_offers_identical_workload_to_both_schemes(self):
        trace = record_trace(base_config())
        results = {}
        for scheme in ("cr", "dor"):
            result = run_simulation(
                base_config(routing=scheme, trace=trace)
            )
            results[scheme] = result
        # Both runs created exactly the trace's messages.
        for result in results.values():
            assert result.report["messages_created"] == len(trace)
            assert result.report["undelivered"] == 0
            assert result.drained

    def test_full_queue_slips_but_preserves_workload(self):
        trace = record_trace(base_config(load=0.5))
        result = run_simulation(
            base_config(trace=trace, queue_cap=2, drain=10000)
        )
        assert result.report["messages_created"] == len(trace)
        assert result.report["undelivered"] == 0

    def test_exhausted_flag(self):
        trace = Trace([TraceEntry(0, 0, 1, 4)])
        generator = TraceReplayGenerator(trace)
        engine = base_config().build()
        engine.generator = generator
        engine.run(5)
        assert generator.exhausted
        assert generator.replayed == 1

    def test_replay_determinism_end_to_end(self):
        trace = record_trace(base_config())
        a = run_simulation(base_config(trace=trace))
        b = run_simulation(base_config(trace=trace))
        assert a.latency == b.latency
        assert a.report["kills"] == b.report["kills"]


class TestWorkloadTraceRoundTrip:
    """record_trace -> JSONL -> workload='trace:<path>' replay."""

    def test_jsonl_roundtrip_preserves_entries(self, tmp_path):
        from repro.workload import (
            load_workload_trace,
            save_workload_trace,
        )

        trace = record_trace(base_config())
        path = str(tmp_path / "workload.jsonl")
        assert save_workload_trace(trace, path) == len(trace)
        loaded = load_workload_trace(path)
        assert [
            (e.cycle, e.src, e.dst, e.length) for e in loaded
        ] == list(trace.as_tuples())

    def test_workload_trace_mode_matches_legacy_replay(self, tmp_path):
        from repro.workload import save_workload_trace

        trace = record_trace(base_config())
        path = str(tmp_path / "workload.jsonl")
        save_workload_trace(trace, path)
        legacy = run_simulation(base_config(trace=trace))
        workload = run_simulation(
            base_config(workload=f"trace:{path}")
        )
        # Same scheduled arrivals through either replay path: the
        # delivered workload is identical.
        for key in ("messages_created", "messages_delivered",
                    "undelivered"):
            assert workload.report[key] == legacy.report[key]
        assert workload.report["messages_created"] == len(trace)

    def test_trace_and_workload_are_mutually_exclusive(self):
        trace = record_trace(base_config())
        config = base_config(trace=trace, workload="mmpp")
        with pytest.raises(ValueError, match="workload"):
            config.build()
