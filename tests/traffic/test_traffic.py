"""Traffic patterns, length distributions, load normalisation, generation."""

import random

import pytest

from repro import (
    BimodalLength,
    BitReversal,
    Complement,
    FixedLength,
    Hotspot,
    NearestNeighbour,
    SimConfig,
    Transpose,
    Uniform,
    capacity_flits_per_node_cycle,
    injection_rate,
    make_pattern,
    torus,
)
from repro.topology.hypercube import Hypercube
from repro.traffic.generator import TrafficGenerator


class TestPatterns:
    def setup_method(self):
        self.topo = torus(4, 2)
        self.rng = random.Random(0)

    def test_uniform_never_self(self):
        pattern = Uniform()
        for src in range(self.topo.num_nodes):
            for _ in range(20):
                dst = pattern.destination(self.topo, src, self.rng)
                assert dst != src
                assert 0 <= dst < self.topo.num_nodes

    def test_uniform_covers_all(self):
        pattern = Uniform()
        seen = {
            pattern.destination(self.topo, 0, self.rng) for _ in range(500)
        }
        assert seen == set(range(1, 16))

    def test_transpose(self):
        pattern = Transpose()
        src = self.topo.node_at((1, 3))
        assert pattern.destination(self.topo, src, self.rng) == \
            self.topo.node_at((3, 1))

    def test_transpose_fixed_point_returns_none(self):
        pattern = Transpose()
        diagonal = self.topo.node_at((2, 2))
        assert pattern.destination(self.topo, diagonal, self.rng) is None

    def test_complement(self):
        pattern = Complement()
        src = self.topo.node_at((0, 1))
        assert pattern.destination(self.topo, src, self.rng) == \
            self.topo.node_at((3, 2))

    def test_complement_on_hypercube(self):
        pattern = Complement()
        topo = Hypercube(4)
        assert pattern.destination(topo, 0b0101, self.rng) == 0b1010

    def test_bit_reversal(self):
        pattern = BitReversal()
        assert pattern.destination(self.topo, 0b0001, self.rng) == 0b1000

    def test_bit_reversal_needs_power_of_two(self):
        pattern = BitReversal()
        topo = torus(3, 2)  # 9 nodes
        with pytest.raises(ValueError):
            pattern.destination(topo, 1, self.rng)

    def test_hotspot_fraction(self):
        pattern = Hotspot(hotspot=0, fraction=0.5)
        hits = sum(
            pattern.destination(self.topo, 5, self.rng) == 0
            for _ in range(2000)
        )
        assert 0.4 < hits / 2000 < 0.65

    def test_hotspot_node_sends_elsewhere(self):
        pattern = Hotspot(hotspot=0, fraction=1.0)
        for _ in range(50):
            assert pattern.destination(self.topo, 0, self.rng) != 0

    def test_nearest_neighbour(self):
        pattern = NearestNeighbour()
        for _ in range(50):
            dst = pattern.destination(self.topo, 5, self.rng)
            assert self.topo.min_distance(5, dst) == 1

    def test_factory(self):
        assert isinstance(make_pattern("uniform"), Uniform)
        assert isinstance(
            make_pattern("hotspot", hotspot=3, fraction=0.2), Hotspot
        )
        with pytest.raises(ValueError):
            make_pattern("nope")


class TestLengths:
    def test_fixed(self):
        dist = FixedLength(16)
        assert dist.sample(random.Random(0)) == 16
        assert dist.mean() == 16.0

    def test_fixed_invalid(self):
        with pytest.raises(ValueError):
            FixedLength(0)

    def test_bimodal_mean(self):
        dist = BimodalLength(short=8, long=64, long_fraction=0.25)
        assert dist.mean() == pytest.approx(8 * 0.75 + 64 * 0.25)

    def test_bimodal_samples_both(self):
        dist = BimodalLength(short=8, long=64, long_fraction=0.3)
        rng = random.Random(1)
        values = {dist.sample(rng) for _ in range(200)}
        assert values == {8, 64}

    def test_bimodal_invalid(self):
        with pytest.raises(ValueError):
            BimodalLength(long_fraction=2.0)


class TestLoads:
    def test_torus_capacity_formula(self):
        # k-ary 2-torus: 4 channels/node over avg distance ~2*(k/4), so
        # ~8/k (exactly 8/k when self-pairs are included; the library
        # averages over src != dst, giving a slightly larger distance).
        topo = torus(8, 2)
        assert capacity_flits_per_node_cycle(topo) == \
            pytest.approx(1.0, rel=0.02)
        topo16 = torus(16, 2)
        assert capacity_flits_per_node_cycle(topo16) == \
            pytest.approx(0.5, rel=0.02)

    def test_injection_rate(self):
        topo = torus(8, 2)
        rate = injection_rate(topo, 0.5, mean_message_length=16)
        expected = 0.5 * capacity_flits_per_node_cycle(topo) / 16
        assert rate == pytest.approx(expected)

    def test_invalid_inputs(self):
        topo = torus(4, 2)
        with pytest.raises(ValueError):
            injection_rate(topo, -0.1, 16)
        with pytest.raises(ValueError):
            injection_rate(topo, 0.5, 0.5)


class TestGenerator:
    def test_message_rate_bounds(self):
        with pytest.raises(ValueError):
            TrafficGenerator(Uniform(), FixedLength(8), message_rate=1.5)
        with pytest.raises(ValueError):
            TrafficGenerator(Uniform(), FixedLength(8), message_rate=-0.1)

    def test_generation_volume_and_stop(self):
        config = SimConfig(
            radix=4, dims=2, load=0.2, warmup=0, measure=300,
            drain=0, message_length=8, seed=5,
        )
        engine = config.build()
        engine.run(300)
        created = engine.stats.counters["messages_created"]
        rate = engine.generator.message_rate
        expected = rate * 16 * 300
        assert 0.7 * expected < created < 1.3 * expected
        # Generation must stop after warmup+measure.
        engine.run(100)
        assert engine.stats.counters["messages_created"] == created

    def test_sequence_numbers_per_pair(self):
        config = SimConfig(radix=4, dims=2, load=0.3, warmup=0,
                           measure=400, drain=0, message_length=8, seed=6)
        engine = config.build()
        engine.run(400)
        seqs = {}
        for uid in list(engine.live):
            pass  # live holds uids only; inspect via ledger after drain
        engine.run_until_drained(5000)
        for msg in engine.ledger.deliveries:
            seqs.setdefault((msg.src, msg.dst), []).append(msg.seq)
        for pair, values in seqs.items():
            assert sorted(values) == list(range(len(values)))
