"""Command-line interface: ``cr-sim``.

Examples::

    cr-sim run --routing cr --radix 8 --load 0.3
    cr-sim experiment e01
    cr-sim experiment e07 --scale paper
    cr-sim list
    cr-sim campaign run fault-matrix --workers 0
    cr-sim campaign report fault-matrix fault-matrix-v2
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from .experiments import PAPER, QUICK, REGISTRY
from .sim.config import SCHEMES, SimConfig
from .sim.parallel import DEFAULT_CACHE_DIR, PointStatus, SweepCache
from .sim.simulator import run_simulation
from .stats.report import format_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cr-sim",
        description=(
            "Compressionless Routing simulator "
            "(Kim, Liu & Chien, ISCA 1994 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--engine", default="reference",
            choices=["reference", "fast"],
            help="simulation engine: the reference cycle loop or the "
                 "flit-identical fast engine with event skipping "
                 "(see docs/SIMULATOR.md)",
        )

    def add_serve(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--serve", default=None, metavar="[HOST:]PORT",
            help="serve live telemetry over HTTP while the run "
                 "executes: /metrics (Prometheus), /health, /status "
                 "(port 0 = ephemeral; see docs/OBSERVABILITY.md)",
        )

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument(
        "--routing", default="cr", choices=sorted(SCHEMES)
    )
    run_p.add_argument(
        "--topology", default="torus", choices=["torus", "mesh", "hypercube"]
    )
    run_p.add_argument("--radix", type=int, default=8)
    run_p.add_argument("--dims", type=int, default=2)
    run_p.add_argument("--num-vcs", type=int, default=None)
    run_p.add_argument("--buffer-depth", type=int, default=2)
    run_p.add_argument("--num-inject", type=int, default=1)
    run_p.add_argument("--num-sink", type=int, default=1)
    run_p.add_argument("--message-length", type=int, default=16)
    run_p.add_argument("--pattern", default="uniform")
    run_p.add_argument("--load", type=float, default=0.3)
    run_p.add_argument(
        "--workload", default=None, metavar="SPEC",
        help="production workload spec: bernoulli | geometric | poisson "
             "| mmpp | pareto | incast | client-server | phased | "
             "trace:<path>, with optional k=v args after ':' "
             "(see docs/WORKLOADS.md)",
    )
    run_p.add_argument("--fault-rate", type=float, default=0.0)
    run_p.add_argument("--permanent-faults", type=int, default=0)
    run_p.add_argument(
        "--cascade-faults", default=None, metavar="SPEC",
        help="load-dependent cascading faults: 'cascade' for defaults "
             "or 'k=v,...' LoadDependentFaults kwargs "
             "(see docs/WORKLOADS.md)",
    )
    run_p.add_argument("--warmup", type=int, default=500)
    run_p.add_argument("--measure", type=int, default=2000)
    run_p.add_argument("--drain", type=int, default=4000)
    run_p.add_argument("--seed", type=int, default=42)
    run_p.add_argument(
        "--verify", action="store_true",
        help="arm the runtime protocol-invariant checker "
             "(see docs/VERIFICATION.md)",
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help="arm the engine self-profiler and print the per-phase "
             "hotspot table (see docs/OBSERVABILITY.md)",
    )
    run_p.add_argument(
        "--alerts", nargs="?", const=True, default=None,
        metavar="RULES.json",
        help="arm the alert rules engine: built-in rules, or a JSON "
             "rules file (see docs/OBSERVABILITY.md)",
    )
    run_p.add_argument(
        "--sample-interval", type=int, default=None, metavar="CYCLES",
        help="collect time-series metrics every CYCLES cycles (alerts "
             "and --serve evaluate on these boundaries; default 200 "
             "when either is armed)",
    )
    add_serve(run_p)
    add_engine(run_p)

    exp_p = sub.add_parser("experiment", help="reproduce a table/figure")
    exp_p.add_argument("id", choices=sorted(REGISTRY))
    exp_p.add_argument(
        "--scale", default="quick", choices=["quick", "paper"]
    )
    exp_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep process-pool width (0 = one per CPU; "
             "default: the scale's own setting)",
    )
    exp_p.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and don't write the on-disk sweep result cache",
    )
    exp_p.add_argument(
        "--verify", action="store_true",
        help="arm the invariant checker on every run of the experiment",
    )

    sweep_p = sub.add_parser("sweep", help="latency/throughput load sweep")
    sweep_p.add_argument(
        "--routing", default="cr", choices=sorted(SCHEMES)
    )
    sweep_p.add_argument("--radix", type=int, default=8)
    sweep_p.add_argument("--dims", type=int, default=2)
    sweep_p.add_argument("--num-vcs", type=int, default=None)
    sweep_p.add_argument("--message-length", type=int, default=16)
    sweep_p.add_argument("--pattern", default="uniform")
    sweep_p.add_argument(
        "--workload", default=None, metavar="SPEC",
        help="production workload spec (see cr-sim run --workload)",
    )
    sweep_p.add_argument(
        "--loads",
        default="0.1,0.2,0.3,0.4",
        help="comma-separated load fractions",
    )
    sweep_p.add_argument("--warmup", type=int, default=500)
    sweep_p.add_argument("--measure", type=int, default=2000)
    sweep_p.add_argument("--drain", type=int, default=4000)
    sweep_p.add_argument("--seed", type=int, default=42)
    sweep_p.add_argument("--out", default=None, help="CSV output path")
    sweep_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run sweep points on a process pool of this size "
             "(0 = one worker per CPU; default 1 = serial)",
    )
    sweep_p.add_argument(
        "--no-cache",
        action="store_true",
        help="don't read or write the on-disk sweep result cache",
    )
    sweep_p.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="sweep result cache location (default: %(default)s)",
    )
    add_engine(sweep_p)

    trace_p = sub.add_parser(
        "trace",
        help="run a traced simulation: heat maps, event logs, Perfetto",
    )
    trace_p.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment preset (e.g. e08, fault-matrix; see "
             "repro.obs.trace_experiments); runs it with JSONL + "
             "Perfetto artifacts under results/traces/.  Omit to "
             "configure the run with the flags below.",
    )
    trace_p.add_argument("--routing", default="cr", choices=sorted(SCHEMES))
    trace_p.add_argument("--radix", type=int, default=8)
    trace_p.add_argument("--dims", type=int, default=2)
    trace_p.add_argument("--pattern", default="transpose")
    trace_p.add_argument("--load", type=float, default=0.3)
    trace_p.add_argument(
        "--workload", default=None, metavar="SPEC",
        help="production workload spec (see cr-sim run --workload)",
    )
    trace_p.add_argument("--cycles", type=int, default=1500)
    trace_p.add_argument("--message-length", type=int, default=16)
    trace_p.add_argument("--seed", type=int, default=42)
    trace_p.add_argument(
        "--svg", default=None, help="write a heat-map SVG to this path"
    )
    trace_p.add_argument(
        "--jsonl", nargs="?", const="auto", default=None, metavar="PATH",
        help="record every event as JSON lines (default path: "
             "results/traces/<name>.jsonl)",
    )
    trace_p.add_argument(
        "--perfetto", nargs="?", const="auto", default=None, metavar="PATH",
        help="write a Chrome trace-event file loadable in "
             "ui.perfetto.dev (default path: "
             "results/traces/<name>.perfetto.json)",
    )
    trace_p.add_argument(
        "--events", type=int, default=0, metavar="N",
        help="print the last N events of the run",
    )
    trace_p.add_argument(
        "--sample-interval", type=int, default=None, metavar="CYCLES",
        help="collect time-series metrics every CYCLES cycles",
    )
    trace_p.add_argument(
        "--series-csv", default=None, metavar="PATH",
        help="write the sampled time series as CSV (needs "
             "--sample-interval)",
    )
    trace_p.add_argument(
        "--series-svg", default=None, metavar="PATH",
        help="write sparklines of the sampled series (needs "
             "--sample-interval)",
    )
    trace_p.add_argument(
        "--profile", nargs="?", const=100, type=int, default=None,
        metavar="CYCLES",
        help="arm the engine self-profiler; snapshots every CYCLES "
             "cycles (default 100) merge a per-phase wall-time counter "
             "track into the Perfetto export",
    )
    trace_p.add_argument(
        "--hotspot", nargs="?", const="auto", default=None,
        metavar="PATH",
        help="write the profiler hotspot report as markdown (needs "
             "--profile; default path: results/traces/<name>.hotspot.md)",
    )
    trace_p.add_argument(
        "--prom", nargs="?", const="auto", default=None, metavar="PATH",
        help="write the run's metrics registry in Prometheus text "
             "format (default path: results/traces/<name>.prom.txt)",
    )
    add_serve(trace_p)
    add_engine(trace_p)

    sub.add_parser("list", help="list available experiments")

    camp_p = sub.add_parser(
        "campaign",
        help="orchestrate whole evaluation campaigns (resumable grids)",
    )
    camp_sub = camp_p.add_subparsers(dest="campaign_command", required=True)

    def add_db(p: argparse.ArgumentParser) -> None:
        from .campaign import DEFAULT_DB_PATH

        p.add_argument(
            "--db", default=DEFAULT_DB_PATH,
            help="campaign results database (default: %(default)s)",
        )

    crun_p = camp_sub.add_parser(
        "run", help="run (or resume) a campaign; completed points skip"
    )
    crun_p.add_argument(
        "name",
        help="built-in campaign name or path to a JSON spec file",
    )
    add_db(crun_p)
    crun_p.add_argument(
        "--scale", default="quick", choices=["quick", "paper"],
        help="network/run sizing for built-in campaigns",
    )
    crun_p.add_argument(
        "--quick", action="store_true",
        help="shorthand for --scale quick",
    )
    crun_p.add_argument(
        "--workload", default=None, metavar="SPEC",
        help="override every grid's workload with this spec "
             "(see cr-sim run --workload)",
    )
    crun_p.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width (0 = one per CPU; default 1 = serial)",
    )
    crun_p.add_argument(
        "--workers-fabric", type=int, default=0, metavar="N",
        help="shard the campaign across N lease-based worker "
             "processes (the distributed fabric; survives worker "
             "loss, see docs/SIMULATOR.md). 0 = off (default)",
    )
    crun_p.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="fabric lease time-to-live before a dead worker's "
             "points are reclaimed (default: 15)",
    )
    crun_p.add_argument(
        "--lease-batch", type=int, default=None, metavar="POINTS",
        help="points per fabric lease batch (default: 2)",
    )
    crun_p.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per failing point before recording failure",
    )
    crun_p.add_argument(
        "--sweep-cache", action="store_true",
        help="also reuse the on-disk sweep result cache for points",
    )
    crun_p.add_argument(
        "--verify", action="store_true",
        help="arm the invariant checker on every campaign point "
             "(changes point hashes: unverified points re-run)",
    )
    crun_p.add_argument(
        "--trace", action="store_true",
        help="arm distributed tracing + structured logging: spans "
             "journal into the store for `campaign timeline`, logs "
             "for `campaign logs` (see docs/OBSERVABILITY.md)",
    )
    add_serve(crun_p)

    cworker_p = camp_sub.add_parser(
        "worker",
        help="join a registered campaign as one fabric worker "
             "(run the coordinator first; see docs/SIMULATOR.md)",
    )
    cworker_p.add_argument(
        "name", help="campaign name registered in the store"
    )
    add_db(cworker_p)
    cworker_p.add_argument(
        "--worker-id", default=None,
        help="stable worker identity (default: <hostname>-<pid>)",
    )
    cworker_p.add_argument(
        "--batch", type=int, default=None, metavar="POINTS",
        help="points leased per batch (default: 2)",
    )
    cworker_p.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="lease time-to-live; heartbeat renews at ttl/3 "
             "(default: 15)",
    )
    cworker_p.add_argument(
        "--poll", type=float, default=None, metavar="SECONDS",
        help="idle poll period while other workers hold all pending "
             "points (default: 0.25)",
    )
    cworker_p.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help="attempts across all workers before a failing point is "
             "terminal (default: 3)",
    )
    cworker_p.add_argument(
        "--verify", action="store_true",
        help="arm the invariant checker on every point (must match "
             "the coordinator's --verify)",
    )
    cworker_p.add_argument(
        "--trace", action="store_true",
        help="arm tracing + structured logging (auto-armed when the "
             "coordinator spawned this worker with CR_TRACE=1; the "
             "worker joins the coordinator's trace via CR_TRACEPARENT "
             "or the store's open root span)",
    )

    cstat_p = camp_sub.add_parser(
        "status", help="stored campaigns, or one campaign in detail"
    )
    cstat_p.add_argument("name", nargs="?", default=None)
    add_db(cstat_p)

    cwatch_p = camp_sub.add_parser(
        "watch",
        help="live view of a running campaign from its status.json "
             "heartbeat (never touches the database)",
    )
    cwatch_p.add_argument("name", help="campaign name")
    add_db(cwatch_p)
    cwatch_p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period (default: %(default)s)",
    )
    cwatch_p.add_argument(
        "--once", action="store_true",
        help="print the current status once and exit",
    )
    cwatch_p.add_argument(
        "--status-file", default=None, metavar="PATH",
        help="heartbeat file (default: <db dir>/<name>.status.json)",
    )
    cwatch_p.add_argument(
        "--svg", default=None, metavar="PATH",
        help="also write the heartbeat's rolling series as SVG "
             "sparklines",
    )
    cwatch_p.add_argument(
        "--alerts", action="store_true",
        help="show only the alerts pane (firing alerts render even "
             "from a stale heartbeat, marked as last-known)",
    )
    cwatch_p.add_argument(
        "--stale-after", type=float, default=None, metavar="SECONDS",
        help="heartbeat age past which the STALE banner shows "
             "(default: 15; raise for slow points or remote "
             "filesystems)",
    )

    ctl_p = camp_sub.add_parser(
        "timeline",
        help="merge a traced campaign's spans (all workers + the "
             "coordinator) into one Perfetto timeline",
    )
    ctl_p.add_argument("name", help="campaign name in the store")
    add_db(ctl_p)
    ctl_p.add_argument(
        "--perfetto", nargs="?", const="", default=None, metavar="PATH",
        help="write the merged Chrome-trace/Perfetto JSON (default "
             "path: <db dir>/<name>.timeline.perfetto.json); without "
             "this flag only the span summary prints",
    )

    clog_p = camp_sub.add_parser(
        "logs",
        help="merged structured logs of a traced campaign "
             "(coordinator + every worker, by timestamp)",
    )
    clog_p.add_argument("name", help="campaign name in the store")
    add_db(clog_p)
    clog_p.add_argument(
        "--worker", default=None, metavar="ID",
        help="only records from this worker (e.g. worker-1, "
             "coordinator)",
    )
    clog_p.add_argument(
        "--level", default=None, choices=["debug", "info", "warning",
                                          "error"],
        help="minimum severity to show",
    )
    clog_p.add_argument(
        "--trace", default=None, metavar="TRACE_ID",
        help="only records from this trace (full id or >=4-char "
             "hex prefix)",
    )
    clog_p.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="only the last N matching records",
    )
    clog_p.add_argument(
        "--json", action="store_true",
        help="print raw JSONL records instead of formatted lines",
    )

    crep_p = camp_sub.add_parser(
        "report", help="markdown regression report: baseline vs candidate"
    )
    crep_p.add_argument("baseline", help="baseline campaign name")
    crep_p.add_argument("candidate", help="candidate campaign name")
    add_db(crep_p)
    crep_p.add_argument(
        "--metrics", default="latency_mean,throughput",
        help="comma-separated report metrics (default: %(default)s)",
    )
    crep_p.add_argument(
        "--md", default=None, help="also write the markdown to this path"
    )
    crep_p.add_argument(
        "--csv", default=None, help="also write comparison rows as CSV"
    )

    clist_p = camp_sub.add_parser(
        "list", help="built-in campaigns and their grid sizes"
    )
    clist_p.add_argument(
        "--scale", default="quick", choices=["quick", "paper"]
    )

    verify_p = sub.add_parser(
        "verify",
        help="replay experiment presets under full invariant checking",
    )
    verify_p.add_argument(
        "experiment", nargs="?", default=None,
        help="preset to replay (e.g. e01; see --list); omit to replay "
             "every preset",
    )
    verify_p.add_argument(
        "--list", action="store_true",
        help="list the known presets and seeded mutations, then exit",
    )
    verify_p.add_argument("--seed", type=int, default=42)
    verify_p.add_argument(
        "--check-interval", type=int, default=16, metavar="CYCLES",
        help="cycles between whole-network sweeps (default: %(default)s)",
    )
    verify_p.add_argument(
        "--progress-limit", type=int, default=None, metavar="CYCLES",
        help="liveness threshold (default: half the engine watchdog)",
    )
    verify_p.add_argument(
        "--mutation", default=None, metavar="NAME",
        help="inject this seeded protocol bug; the replay then MUST "
             "trip a checker (differential oracle)",
    )
    verify_p.add_argument(
        "--quick", action="store_true",
        help="shrink the replayed runs (smoke-test sizing)",
    )
    return parser


def _workload_usage_error(args: argparse.Namespace, prog: str):
    """Validate --workload/--cascade-faults eagerly: misuse exits 2."""
    try:
        if getattr(args, "workload", None) is not None:
            from .workload import WorkloadSpec

            WorkloadSpec.parse(args.workload)
        if getattr(args, "cascade_faults", None) is not None:
            from .faults.cascading import make_cascading

            make_cascading(args.cascade_faults)
    except (TypeError, ValueError) as exc:
        print(f"cr-sim {prog}: {exc}", file=sys.stderr)
        return 2
    return None


def _start_server(spec: Optional[str]):
    """Start a telemetry server for --serve and announce its URL."""
    if spec is None:
        return None
    from .obs.server import make_telemetry_server

    try:
        server = make_telemetry_server(spec)
    except (ValueError, OSError) as exc:
        print(f"cr-sim: {exc}", file=sys.stderr)
        raise SystemExit(2)
    print(
        f"  telemetry: {server.url}/metrics  /health  /status",
        file=sys.stderr,
    )
    return server


def _print_alerts(report: Dict[str, Any]) -> None:
    episodes = report.get("alerts")
    if episodes is None:
        return
    if not episodes:
        print("\nalerts: none fired")
        return
    print(f"\nalerts ({len(episodes)} episode(s)):")
    for ep in episodes:
        span = (f"t={ep['fired_at']}..{ep['resolved_at']}"
                if ep["resolved_at"] is not None
                else f"t={ep['fired_at']} (still firing)")
        print(f"  [{ep['severity']}] {ep['rule']} {span}: "
              f"{ep['message']}")


def _cmd_run(args: argparse.Namespace) -> int:
    error = _workload_usage_error(args, "run")
    if error is not None:
        return error
    if args.alerts not in (None, True):
        import os

        if not os.path.exists(args.alerts):
            print(f"cr-sim run: no alert rules file {args.alerts!r}",
                  file=sys.stderr)
            return 2
    server = _start_server(args.serve)
    config = SimConfig(
        topology=args.topology,
        radix=args.radix,
        dims=args.dims,
        routing=args.routing,
        num_vcs=args.num_vcs,
        buffer_depth=args.buffer_depth,
        num_inject=args.num_inject,
        num_sink=args.num_sink,
        message_length=args.message_length,
        pattern=args.pattern,
        load=args.load,
        workload=args.workload,
        fault_rate=args.fault_rate,
        permanent_faults=args.permanent_faults,
        cascade_faults=args.cascade_faults,
        warmup=args.warmup,
        measure=args.measure,
        drain=args.drain,
        seed=args.seed,
        engine=args.engine,
        verify=args.verify or None,
        profile=args.profile,
        alerts=args.alerts,
        serve=server,
        sample_interval=args.sample_interval,
    )
    try:
        result = run_simulation(config, keep_engine=args.profile)
    finally:
        if server is not None:
            server.stop()
    verify_summary = result.report.get("verify")
    rows = [
        {"metric": key, "value": value}
        for key, value in sorted(result.report.items())
        if key not in ("verify", "profile", "alerts", "alerts_summary",
                       "timeseries")
    ]
    print(
        format_table(
            rows,
            ["metric", "value"],
            title=(
                f"{args.routing} on {config.make_topology().name}, "
                f"load {args.load}"
            ),
        )
    )
    _print_alerts(result.report)
    if verify_summary is not None:
        print(
            "\ninvariants verified: " + ", ".join(
                f"{key}={value}"
                for key, value in sorted(verify_summary.items())
            )
        )
    if args.profile and result.engine is not None:
        profiler = result.engine.profiler
        print()
        print(format_table(
            profiler.hotspot_rows(),
            ["phase", "calls", "wall_ms", "share_pct", "mean_us",
             "max_us"],
            title=f"engine phase hotspots ({profiler.cycles} cycles, "
                  f"{profiler.step_wall_ns / 1e6:.1f} ms)",
        ))
    return 0


def _progress_printer(total: int):
    """Per-point status lines on stderr (stdout stays machine-readable)."""
    done = [0]

    def report(status: PointStatus) -> None:
        done[0] += 1
        source = "cache" if status.cached else f"{status.elapsed:.1f}s"
        print(
            f"  [{done[0]}/{total}] point {status.index} done ({source})",
            file=sys.stderr,
        )

    return report


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sim.export import rows_to_csv
    from .sim.sweep import load_sweep

    error = _workload_usage_error(args, "sweep")
    if error is not None:
        return error
    loads = [float(v) for v in args.loads.split(",") if v.strip()]
    base = SimConfig(
        routing=args.routing,
        radix=args.radix,
        dims=args.dims,
        num_vcs=args.num_vcs,
        message_length=args.message_length,
        pattern=args.pattern,
        workload=args.workload,
        warmup=args.warmup,
        measure=args.measure,
        drain=args.drain,
        seed=args.seed,
        engine=args.engine,
    )
    workers = args.workers if args.workers > 0 else None
    cache = None if args.no_cache else SweepCache(args.cache_dir)
    rows = load_sweep(
        base,
        loads,
        label=args.routing,
        workers=workers,
        cache=cache,
        progress=_progress_printer(len(loads)),
    )
    if cache is not None and cache.hits:
        print(
            f"  cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"in {cache.path}",
            file=sys.stderr,
        )
    print(
        format_table(
            rows,
            ["load", "latency_mean", "latency_p95", "throughput",
             "kill_rate", "pad_overhead"],
            title=f"{args.routing} load sweep "
                  f"({args.radix}-ary {args.dims}-torus)",
        )
    )
    if args.out:
        count = rows_to_csv(rows, args.out)
        print(f"\nwrote {count} rows to {args.out}")
    return 0


def _trace_artifact_path(arg: Optional[str], name: str,
                         suffix: str) -> Optional[str]:
    """Resolve --jsonl/--perfetto: None, an explicit path, or 'auto'."""
    import os

    from .obs import DEFAULT_TRACE_DIR

    if arg is None:
        return None
    if arg != "auto":
        return arg
    return os.path.join(DEFAULT_TRACE_DIR, f"{name}{suffix}")


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import event_to_dict, run_traced
    from .stats.trace import (
        channel_heatmap,
        channel_load_stats,
        format_timeline,
        occupancy_snapshot,
    )

    error = _workload_usage_error(args, "trace")
    if error is not None:
        return error
    if args.experiment is not None:
        from .obs import config_for_experiment

        name = args.experiment
        try:
            config = config_for_experiment(name, seed=args.seed)
        except ValueError as exc:
            print(f"cr-sim trace: {exc}", file=sys.stderr)
            return 2
        # A preset run exists to produce artifacts: default both on.
        if args.jsonl is None:
            args.jsonl = "auto"
        if args.perfetto is None:
            args.perfetto = "auto"
        title = f"{name} ({config.routing}, load {config.load})"
    else:
        name = args.routing
        config = SimConfig(
            routing=args.routing,
            radix=args.radix,
            dims=args.dims,
            pattern=args.pattern,
            load=args.load,
            message_length=args.message_length,
            warmup=0,
            measure=args.cycles,
            drain=0,
            seed=args.seed,
        )
        title = f"{args.routing} / {args.pattern} / load {args.load}"
    if args.engine != "reference":
        config = config.with_(engine=args.engine)
    if args.workload is not None:
        config = config.with_(workload=args.workload)
        title += f" / workload {args.workload}"

    if args.hotspot is not None and args.profile is None:
        print("cr-sim trace: --hotspot needs --profile", file=sys.stderr)
        return 2

    server = _start_server(args.serve)
    if server is not None:
        config = config.with_(serve=server)
    try:
        traced = run_traced(
            config,
            jsonl_path=_trace_artifact_path(args.jsonl, name, ".jsonl"),
            perfetto_path=_trace_artifact_path(
                args.perfetto, name, ".perfetto.json"
            ),
            sample_interval=args.sample_interval,
            keep_engine=True,
            profile=args.profile if args.profile is not None else False,
        )
    finally:
        if server is not None:
            server.stop()
    engine = traced.result.engine
    print(f"{title} on {engine.topology.name}, t={engine.now}\n")
    print("buffer occupancy (flits per router):")
    print(occupancy_snapshot(engine))
    print()
    print(
        format_table(
            channel_heatmap(engine, top=8),
            ["link", "dim", "direction", "wrap", "flits", "dead"],
            title="busiest link channels",
        )
    )
    stats = channel_load_stats(engine)
    print(
        f"\nchannel utilisation {stats['utilisation']:.3f} "
        f"flits/channel/cycle, imbalance (max/mean) "
        f"{stats['imbalance']:.2f} over {stats['live_channels']} live "
        f"channel(s) ({stats['dead_channels']} dead)"
    )
    slowest = max(
        engine.ledger.deliveries,
        key=lambda m: m.total_latency() or 0,
        default=None,
    )
    if slowest is not None:
        print("\nslowest delivered message:")
        print(format_timeline(slowest))

    counts = traced.counts()
    if counts:
        print("\nevents: " + ", ".join(
            f"{kind}={count}" for kind, count in sorted(counts.items())
        ))
    if args.events > 0:
        print(f"\nlast {min(args.events, len(traced.events))} event(s):")
        for event in traced.events[-args.events:]:
            fields = event_to_dict(event)
            kind = fields.pop("event")
            cycle = fields.pop("cycle")
            body = ", ".join(f"{k}={v}" for k, v in fields.items())
            print(f"  t={cycle} {kind} ({body})")

    if traced.samples:
        if args.series_csv:
            engine.sampler.to_csv(args.series_csv)
            print(f"\nwrote {len(traced.samples)} samples to "
                  f"{args.series_csv}")
        if args.series_svg:
            engine.sampler.to_svg(args.series_svg, title=title)
            print(f"wrote sparklines to {args.series_svg}")
    elif args.series_csv or args.series_svg:
        print("\n(no samples collected; pass --sample-interval)",
              file=sys.stderr)

    if traced.jsonl_path:
        print(f"\nwrote {len(traced.events)} events to "
              f"{traced.jsonl_path}")
    if traced.perfetto_path:
        print(f"wrote {traced.perfetto_entries} trace entries to "
              f"{traced.perfetto_path} (load at ui.perfetto.dev)")

    profiler = traced.profiler
    if profiler is not None:
        print()
        print(
            format_table(
                profiler.hotspot_rows(),
                ["phase", "calls", "wall_ms", "share_pct", "mean_us",
                 "max_us"],
                title=f"engine phase hotspots ({profiler.cycles} cycles, "
                      f"{profiler.step_wall_ns / 1e6:.1f} ms)",
            )
        )
        hotspot_path = _trace_artifact_path(args.hotspot, name,
                                            ".hotspot.md")
        if hotspot_path:
            import os

            os.makedirs(os.path.dirname(hotspot_path) or ".",
                        exist_ok=True)
            with open(hotspot_path, "w") as handle:
                handle.write(profiler.hotspot_markdown())
            print(f"\nwrote hotspot report to {hotspot_path}")
    prom_path = _trace_artifact_path(args.prom, name, ".prom.txt")
    if prom_path:
        from .obs import engine_metrics

        registry = engine_metrics(engine)
        registry.write_prometheus(prom_path)
        print(f"wrote {len(registry.names())} metric families to "
              f"{prom_path}")

    if args.svg:
        from .stats.svg import render_network_svg

        svg = render_network_svg(engine, title=title)
        with open(args.svg, "w") as handle:
            handle.write(svg)
        print(f"\nwrote heat map to {args.svg}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    module = REGISTRY[args.id]
    scale = PAPER if args.scale == "paper" else QUICK
    if args.workers is not None:
        scale = scale.scaled(
            workers=args.workers if args.workers > 0 else None
        )
    if args.no_cache:
        scale = scale.scaled(cache=False)
    if args.verify:
        scale = scale.scaled(verify=True)
    rows = module.run(scale)
    print(module.table(rows))
    return 0


def _resolve_campaign_spec(name: str, scale_name: str):
    """A built-in campaign by name, or a JSON spec file by path."""
    import json
    import os

    from .campaign import BUILTIN_CAMPAIGNS, CampaignSpec, get_campaign
    from .experiments import PAPER, QUICK

    if name in BUILTIN_CAMPAIGNS:
        return get_campaign(
            name, PAPER if scale_name == "paper" else QUICK
        )
    if os.path.exists(name):
        with open(name, "r", encoding="utf-8") as handle:
            return CampaignSpec.from_dict(json.load(handle))
    print(
        f"cr-sim campaign: {name!r} is neither a built-in campaign "
        f"({sorted(BUILTIN_CAMPAIGNS)}) nor a spec file",
        file=sys.stderr,
    )
    raise SystemExit(2)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from .campaign import CampaignPointStatus, CampaignStore, run_campaign

    error = _workload_usage_error(args, "campaign")
    if error is not None:
        return error
    scale = "quick" if getattr(args, "quick", False) else args.scale
    spec = _resolve_campaign_spec(args.name, scale)
    if getattr(args, "workload", None) is not None:
        from .campaign import CampaignSpec

        data = spec.to_dict()
        if "grids" in data:
            for body in data["grids"].values():
                body.setdefault("base", {})["workload"] = args.workload
        else:
            data.setdefault("base", {})["workload"] = args.workload
        spec = CampaignSpec.from_dict(data)

    fabric_workers = getattr(args, "workers_fabric", 0) or 0
    if fabric_workers <= 0 and (
        getattr(args, "lease_ttl", None) is not None
        or getattr(args, "lease_batch", None) is not None
    ):
        print(
            "cr-sim campaign run: --lease-ttl/--lease-batch need "
            "--workers-fabric N",
            file=sys.stderr,
        )
        return 2
    if fabric_workers > 0:
        return _campaign_run_fabric(args, spec, fabric_workers)

    def report(status: CampaignPointStatus) -> None:
        if status.outcome == "skipped":
            detail = "already stored"
        elif status.outcome == "failed":
            detail = f"FAILED attempt {status.attempt}"
        else:
            detail = f"{status.elapsed:.1f}s"
        print(
            f"  [{status.done}/{status.total}] {status.point_id} "
            f"({detail})",
            file=sys.stderr,
        )

    server = _start_server(getattr(args, "serve", None))
    try:
        with CampaignStore(args.db) as store:
            stats = run_campaign(
                spec,
                store,
                workers=args.workers if args.workers > 0 else None,
                cache=True if args.sweep_cache else None,
                retries=args.retries,
                progress=report,
                verify=args.verify,
                serve=server,
                trace=args.trace,
            )
    finally:
        if server is not None:
            server.stop()
    print(
        f"campaign {spec.name!r}: {stats.ran} point(s) run, "
        f"{stats.skipped} resumed, {stats.failed} failed "
        f"({stats.retried} retries), {stats.wall_time:.1f}s simulated "
        f"-> {args.db}"
    )
    for point_id in stats.failures:
        print(f"  failed: {point_id}", file=sys.stderr)
    return 0 if stats.complete else 1


def _campaign_run_fabric(args: argparse.Namespace, spec,
                         workers: int) -> int:
    """`campaign run --workers-fabric N`: coordinator + N local workers."""
    from .campaign.fabric import (
        DEFAULT_BATCH,
        DEFAULT_TTL,
        run_fabric,
    )

    if args.db == ":memory:":
        print(
            "cr-sim campaign run: the fabric shards across worker "
            "processes, which need a shared on-disk --db (not :memory:)",
            file=sys.stderr,
        )
        return 2

    last = {"done": -1}

    def narrate(status: Dict[str, Any]) -> None:
        if status["done"] == last["done"]:
            return
        last["done"] = status["done"]
        fabric = status["fabric"]
        failed = status["failed"]
        failed_note = f", {failed} failed" if failed else ""
        print(
            f"  [{status['done']}/{status['total']}{failed_note}] "
            f"{fabric['live_workers']} worker(s) live, "
            f"{fabric['leases_held']} lease(s) held, "
            f"{fabric['reclaims']} reclaim(s)",
            file=sys.stderr,
        )

    server = _start_server(getattr(args, "serve", None))
    try:
        stats = run_fabric(
            spec,
            args.db,
            workers=workers,
            batch=args.lease_batch or DEFAULT_BATCH,
            ttl=args.lease_ttl or DEFAULT_TTL,
            max_attempts=args.retries + 1,
            verify=args.verify,
            serve=server,
            on_poll=narrate,
            trace=args.trace,
        )
    finally:
        if server is not None:
            server.stop()
    print(
        f"campaign {spec.name!r}: {stats.ok} point(s) ok, "
        f"{stats.failed} failed across {stats.workers_seen} worker(s) "
        f"({stats.reclaims} lease reclaim(s)), {stats.elapsed:.1f}s "
        f"-> {args.db}"
    )
    for point_id in stats.failures:
        print(f"  failed: {point_id}", file=sys.stderr)
    return 0 if stats.complete else 1


def _cmd_campaign_worker(args: argparse.Namespace) -> int:
    from .campaign.fabric import (
        DEFAULT_BATCH,
        DEFAULT_MAX_ATTEMPTS,
        DEFAULT_POLL,
        DEFAULT_TTL,
        Worker,
    )

    if args.db == ":memory:":
        print(
            "cr-sim campaign worker: fabric workers need a shared "
            "on-disk --db (not :memory:)",
            file=sys.stderr,
        )
        return 2
    worker = Worker(
        args.name,
        args.db,
        worker_id=args.worker_id,
        batch=args.batch if args.batch is not None else DEFAULT_BATCH,
        ttl=args.ttl if args.ttl is not None else DEFAULT_TTL,
        poll=args.poll if args.poll is not None else DEFAULT_POLL,
        max_attempts=(args.max_attempts if args.max_attempts is not None
                      else DEFAULT_MAX_ATTEMPTS),
        verify=args.verify,
        trace=True if args.trace else None,
    )
    try:
        stats = worker.run()
    except LookupError as exc:
        print(f"cr-sim campaign worker: {exc}", file=sys.stderr)
        return 2
    print(
        f"worker {worker.worker_id!r}: {stats.ran} point(s) run, "
        f"{stats.failed} failed attempt(s), {stats.reclaims} lease(s) "
        f"reclaimed over {stats.batches} batch(es); campaign "
        f"{'complete' if stats.complete else 'incomplete'}",
        file=sys.stderr,
    )
    return 0 if stats.complete else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from .campaign import CampaignStore, campaign_markdown

    with CampaignStore(args.db) as store:
        if args.name is None:
            rows = [
                {
                    "campaign": c["name"],
                    "ok": c["ok"],
                    "failed": c["failed"],
                    "description": c["description"],
                }
                for c in store.campaigns()
            ]
            print(format_table(
                rows, ["campaign", "ok", "failed", "description"],
                title=f"stored campaigns in {args.db}",
            ))
        else:
            print(campaign_markdown(store, args.name))
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from .campaign import (
        CampaignStore,
        compare_campaigns,
        comparison_to_csv,
        render_markdown,
    )

    metrics = [m for m in args.metrics.split(",") if m.strip()]
    with CampaignStore(args.db) as store:
        known = {c["name"] for c in store.campaigns()}
        for name in (args.baseline, args.candidate):
            if name not in known:
                print(
                    f"cr-sim campaign report: no stored campaign "
                    f"{name!r} in {args.db} (have: {sorted(known)})",
                    file=sys.stderr,
                )
                return 2
        rows = compare_campaigns(
            store, args.baseline, args.candidate, metrics
        )
    text = render_markdown(rows, args.baseline, args.candidate)
    print(text)
    if args.md:
        with open(args.md, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\nwrote markdown to {args.md}", file=sys.stderr)
    if args.csv:
        count = comparison_to_csv(rows, args.csv)
        print(f"wrote {count} comparison rows to {args.csv}",
              file=sys.stderr)
    return 0


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    from .campaign import campaign_names, get_campaign
    from .experiments import PAPER, QUICK

    scale = PAPER if args.scale == "paper" else QUICK
    rows = []
    for name in campaign_names():
        spec = get_campaign(name, scale)
        rows.append({
            "campaign": name,
            "points": spec.size,
            "grids": len(spec.grids),
            "description": spec.description,
        })
    print(format_table(
        rows, ["campaign", "points", "grids", "description"],
        title=f"built-in campaigns ({scale.name} scale)",
    ))
    return 0


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    import os
    import time

    from .campaign import read_status, render_status, status_path
    from .campaign.monitor import status_svg

    path = args.status_file or status_path(args.db, args.name)
    if path is None:
        print(
            "cr-sim campaign watch: in-memory stores have no status "
            "file; pass --status-file",
            file=sys.stderr,
        )
        return 2

    def render_once() -> Optional[Dict[str, Any]]:
        if not os.path.exists(path):
            return None
        status = read_status(path)
        stale_kw = {}
        if args.stale_after is not None:
            stale_kw["stale_after"] = args.stale_after
        print(render_status(status, alerts_only=args.alerts, **stale_kw))
        if args.svg:
            with open(args.svg, "w", encoding="utf-8") as handle:
                handle.write(status_svg(status))
        return status

    if args.once:
        status = render_once()
        if status is None:
            print(
                f"cr-sim campaign watch: no status file at {path} "
                f"(is the campaign running with a heartbeat?)",
                file=sys.stderr,
            )
            return 2
        return 0

    waited = 0.0
    try:
        while True:
            status = render_once()
            if status is None:
                if waited == 0.0:
                    print(f"waiting for {path} ...", file=sys.stderr)
                waited += args.interval
                if waited > 60.0:
                    print(
                        f"cr-sim campaign watch: gave up after 60s "
                        f"without a status file at {path}",
                        file=sys.stderr,
                    )
                    return 2
            elif status.get("state") == "finished":
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_campaign_timeline(args: argparse.Namespace) -> int:
    from .campaign import CampaignStore
    from .campaign.timeline import (
        timeline_summary,
        write_campaign_timeline,
    )

    with CampaignStore(args.db) as store:
        summary = timeline_summary(store, args.name)
        if summary["spans"] == 0:
            print(
                f"cr-sim campaign timeline: campaign {args.name!r} in "
                f"{args.db} has no journaled spans; run it with "
                f"--trace",
                file=sys.stderr,
            )
            return 2
        kinds = ", ".join(
            f"{kind} {count}"
            for kind, count in sorted(summary["by_kind"].items())
        )
        print(
            f"campaign {args.name!r}: {summary['spans']} span(s) "
            f"across {len(summary['workers'])} process(es), "
            f"{len(summary['traces'])} trace(s), "
            f"{summary['open']} still open"
        )
        print(f"  by kind: {kinds}")
        if args.perfetto is not None:
            try:
                path = write_campaign_timeline(
                    store, args.name, args.perfetto or None
                )
            except ValueError as exc:
                print(f"cr-sim campaign timeline: {exc}",
                      file=sys.stderr)
                return 2
            print(f"wrote merged Perfetto timeline to {path}")
            print("  open it at https://ui.perfetto.dev")
    return 0


def _cmd_campaign_logs(args: argparse.Namespace) -> int:
    import json as json_mod
    import os

    from .obs.log import (
        campaign_log_dir,
        filter_log_records,
        format_log_record,
        read_campaign_logs,
    )

    log_dir = campaign_log_dir(args.db, args.name)
    if log_dir is None:
        print(
            "cr-sim campaign logs: in-memory stores have no log "
            "directory",
            file=sys.stderr,
        )
        return 2
    if not os.path.isdir(log_dir):
        print(
            f"cr-sim campaign logs: no log directory at {log_dir} "
            f"(run the campaign with --trace)",
            file=sys.stderr,
        )
        return 2
    records = read_campaign_logs(log_dir)
    records = filter_log_records(
        records, worker=args.worker, level=args.level, trace=args.trace
    )
    if args.tail is not None and args.tail >= 0:
        records = records[-args.tail:] if args.tail else []
    for record in records:
        if args.json:
            print(json_mod.dumps(record, sort_keys=True))
        else:
            print(format_log_record(record))
    print(f"{len(records)} record(s) from {log_dir}", file=sys.stderr)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.campaign_command == "run":
        return _cmd_campaign_run(args)
    if args.campaign_command == "worker":
        return _cmd_campaign_worker(args)
    if args.campaign_command == "status":
        return _cmd_campaign_status(args)
    if args.campaign_command == "report":
        return _cmd_campaign_report(args)
    if args.campaign_command == "list":
        return _cmd_campaign_list(args)
    if args.campaign_command == "watch":
        return _cmd_campaign_watch(args)
    if args.campaign_command == "timeline":
        return _cmd_campaign_timeline(args)
    if args.campaign_command == "logs":
        return _cmd_campaign_logs(args)
    raise AssertionError(
        f"unhandled campaign command {args.campaign_command}"
    )


def _cmd_verify(args: argparse.Namespace) -> int:
    """Replay experiment presets with every invariant armed.

    Exit status: 0 when every replay behaved as expected -- clean runs
    pass all checkers; with ``--mutation`` at least one replay must
    *trip* a checker (the differential oracle) -- else 1.  Unknown
    presets or mutations exit 2 with a usage message.
    """
    from .obs.tracing import trace_experiments
    from .verify import mutation_names, verify_presets
    from .verify.mutations import MUTATIONS

    if args.list:
        print("experiment presets: " + ", ".join(trace_experiments()))
        print("seeded mutations:")
        for name in mutation_names():
            mutation = MUTATIONS[name]
            print(f"  {name} [{mutation.caught_by}]: "
                  f"{mutation.description}")
        return 0
    if args.experiment is not None:
        if args.experiment not in trace_experiments():
            print(
                f"cr-sim verify: unknown experiment "
                f"{args.experiment!r}; choose from "
                f"{', '.join(trace_experiments())}",
                file=sys.stderr,
            )
            return 2
        experiments = [args.experiment]
    else:
        experiments = trace_experiments()
    if args.mutation is not None and args.mutation not in mutation_names():
        print(
            f"cr-sim verify: unknown mutation {args.mutation!r}; "
            f"choose from {', '.join(mutation_names())}",
            file=sys.stderr,
        )
        return 2
    overrides = (
        {"radix": 4, "warmup": 50, "measure": 400, "drain": 3000}
        if args.quick
        else None
    )
    outcomes = verify_presets(
        experiments,
        seed=args.seed,
        mutation=args.mutation,
        check_interval=args.check_interval,
        progress_limit=args.progress_limit,
        overrides=overrides,
    )
    for outcome in outcomes:
        if outcome.ok:
            detail = (
                f"{outcome.checks} sweeps, {outcome.delivered} "
                f"delivered, drained={outcome.drained}, "
                f"t={outcome.cycles}"
            )
            print(f"pass   {outcome.experiment}: {detail}")
        elif outcome.violation is not None:
            v = outcome.violation
            print(
                f"CAUGHT {outcome.experiment}: [{v.invariant}] "
                f"t={v.cycle}: {v.detail}"
            )
        else:
            print(f"CAUGHT {outcome.experiment}: {outcome.error}")
    if args.mutation is not None:
        caught = sum(1 for outcome in outcomes if outcome.caught)
        print(
            f"\nmutation {args.mutation!r}: caught in {caught}/"
            f"{len(outcomes)} preset(s)"
        )
        return 0 if caught else 1
    clean = all(outcome.ok for outcome in outcomes)
    print(
        f"\n{len(outcomes)} preset(s) replayed under full checking: "
        + ("all invariants hold" if clean else "INVARIANT VIOLATED")
    )
    return 0 if clean else 1


def _cmd_list() -> int:
    rows = [
        {
            "id": key,
            "module": module.__name__.rsplit(".", 1)[-1],
            "what": (module.__doc__ or "").strip().splitlines()[0],
        }
        for key, module in sorted(REGISTRY.items())
    ]
    print(format_table(rows, ["id", "module", "what"]))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "verify":
        return _cmd_verify(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover - manual entry point
    sys.exit(main())
