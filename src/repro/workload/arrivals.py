"""Arrival processes: when does each node offer its next message?

The legacy :class:`~repro.traffic.generator.TrafficGenerator` hard-codes
one arrival model — an independent per-node-per-cycle Bernoulli draw
from a single shared RNG stream.  Production traffic is not Bernoulli:
interarrivals are bursty (on/off sources) and heavy-tailed (a few
sources dominate).  This module factors the *arrival decision* out of
the generator so the workload layer can swap it:

* :class:`BernoulliArrivals` — the back-compat shim.  It reproduces the
  legacy generator's RNG draw sequence *draw for draw* (one shared
  stream, one ``random()`` per node per cycle, destination and length
  sampled from the same stream), so a run with
  ``SimConfig(workload="bernoulli")`` is byte-identical to one with
  ``workload`` unset.
* :class:`GeometricArrivals` — renewal process with geometric
  interarrival gaps (the discrete-time Poisson analogue).  Same mean
  rate as Bernoulli, but arrivals are *scheduled*: idle cycles draw no
  randomness, which lets the fast engine skip straight to the next
  arrival.
* :class:`MMPPArrivals` — Markov-modulated on/off source (a 2-state
  MMPP): geometric dwell times in an ON state (Bernoulli at a boosted
  rate) and an OFF state (silent).  The classic bursty-traffic model.
* :class:`ParetoArrivals` — renewal process with Pareto(alpha)
  interarrivals: heavy-tailed, infinite variance for ``alpha <= 2``.
  Gaps shorter than a cycle batch into multi-message bursts.

Every process except the Bernoulli shim uses *per-node* RNG streams
seeded ``f"{seed}:{node}"``, so node ``i``'s arrival sequence is a pure
function of ``(seed, i)`` — independent of how many other nodes exist
and of what they do (the property tests pin this).
"""

from __future__ import annotations

import abc
import math
import random
from typing import Dict, List

_INF = float("inf")


def _geometric(rng: random.Random, mean: float) -> int:
    """A geometric variate >= 1 with the given mean (inverse CDF)."""
    if mean <= 1.0:
        return 1
    p = 1.0 / mean
    u = rng.random()
    return int(math.log1p(-u) / math.log1p(-p)) + 1


class ArrivalProcess(abc.ABC):
    """Decides, per node, when messages are offered.

    Lifecycle: construct with the target per-node-per-cycle ``rate``,
    then :meth:`bind` to a node count and seed before the first cycle.
    Each active cycle the generator calls :meth:`emits` once per node
    (in node order); destination/length draws for the resulting
    messages use :meth:`rng_for`.

    ``per_cycle_draws`` is the fast-engine contract: ``True`` means the
    process mutates state (or draws randomness) on *every* active
    cycle, so event skipping must fall back to the paced per-cycle
    generator loop; ``False`` means idle cycles are pure no-ops and
    :meth:`next_arrival` names the next cycle anything happens.
    """

    name = "abstract"
    #: True when emits() must run every active cycle (Bernoulli, MMPP).
    per_cycle_draws = True

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError("arrival rate must be >= 0")
        if rate > 1:
            raise ValueError(
                "arrival rate is per node per cycle and must be <= 1"
            )
        self.rate = rate

    @abc.abstractmethod
    def bind(self, num_nodes: int, seed, start: int = 0) -> None:
        """Create RNG state for ``num_nodes`` nodes; arrivals >= start."""

    @abc.abstractmethod
    def emits(self, node: int, now: int) -> int:
        """Messages node ``node`` offers at cycle ``now`` (0, 1, ...)."""

    @abc.abstractmethod
    def rng_for(self, node: int) -> random.Random:
        """The stream destination/length draws use for ``node``."""

    def idle(self) -> bool:
        """True when the process can never emit (zero rate)."""
        return self.rate == 0.0

    def next_arrival(self, now: int) -> float:
        """Earliest cycle >= now with an arrival (scheduled processes).

        Only meaningful when ``per_cycle_draws`` is False; per-cycle
        processes return ``now`` (they may act immediately).
        """
        return now


class BernoulliArrivals(ArrivalProcess):
    """The legacy model, draw-for-draw: shared stream, one draw/node/cycle."""

    name = "bernoulli"
    per_cycle_draws = True

    def bind(self, num_nodes: int, seed, start: int = 0) -> None:
        # One *shared* stream, exactly like TrafficGenerator(seed=...):
        # the node loop interleaves every node's draws on it.
        self._rng = random.Random(seed)

    def emits(self, node: int, now: int) -> int:
        return 0 if self._rng.random() >= self.rate else 1

    def rng_for(self, node: int) -> random.Random:
        return self._rng


class _RenewalArrivals(ArrivalProcess):
    """Shared machinery: per-node next-arrival times from i.i.d. gaps."""

    per_cycle_draws = False

    def bind(self, num_nodes: int, seed, start: int = 0) -> None:
        self._rngs: List[random.Random] = [
            random.Random(f"{seed}:{node}") for node in range(num_nodes)
        ]
        if self.rate == 0.0:
            self._next = [_INF] * num_nodes
            return
        self._next: List[float] = [
            start + self._gap(self._rngs[node])
            for node in range(num_nodes)
        ]

    def _gap(self, rng: random.Random) -> float:
        raise NotImplementedError

    def emits(self, node: int, now: int) -> int:
        if self.rate == 0.0:
            return 0
        count = 0
        nxt = self._next[node]
        if nxt > now:
            return 0
        rng = self._rngs[node]
        while nxt <= now:
            count += 1
            nxt += self._gap(rng)
        self._next[node] = nxt
        return count

    def rng_for(self, node: int) -> random.Random:
        return self._rngs[node]

    def next_arrival(self, now: int) -> float:
        nxt = min(self._next) if self._next else _INF
        return nxt if nxt > now else now


class GeometricArrivals(_RenewalArrivals):
    """Geometric interarrival gaps: the memoryless renewal process."""

    name = "geometric"

    def _gap(self, rng: random.Random) -> float:
        return _geometric(rng, 1.0 / self.rate)


class ParetoArrivals(_RenewalArrivals):
    """Pareto(alpha) interarrival gaps: heavy-tailed bursts and silences.

    The scale ``xm`` is solved so the mean gap is ``1/rate``
    (``mean = alpha * xm / (alpha - 1)``), which needs ``alpha > 1``.
    With ``alpha <= 2`` the gap variance is infinite: most gaps are far
    below the mean (dense bursts), balanced by rare very long silences.
    """

    name = "pareto"

    def __init__(self, rate: float, alpha: float = 1.5) -> None:
        super().__init__(rate)
        if alpha <= 1.0:
            raise ValueError(
                "pareto alpha must be > 1 (finite mean interarrival)"
            )
        self.alpha = alpha
        self.xm = (
            (alpha - 1.0) / (alpha * rate) if rate > 0 else _INF
        )

    def _gap(self, rng: random.Random) -> float:
        u = rng.random()
        return self.xm * (1.0 - u) ** (-1.0 / self.alpha)


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated on/off source (bursty traffic).

    Each node independently alternates between an ON state, where it is
    a Bernoulli source at ``rate_on``, and a silent OFF state.  Dwell
    times are geometric with means ``mean_on`` / ``mean_off`` cycles.
    ``rate_on`` is solved so the long-run mean rate matches ``rate``:
    ``rate_on = rate * (mean_on + mean_off) / mean_on``, capped at 1.0
    (the cap is reported via :attr:`rate_on`; hit it and the achieved
    mean falls short — raise ``mean_on`` instead of the load).
    """

    name = "mmpp"
    per_cycle_draws = True  # dwell counters advance every active cycle

    def __init__(
        self,
        rate: float,
        mean_on: float = 32.0,
        mean_off: float = 96.0,
    ) -> None:
        super().__init__(rate)
        if mean_on < 1.0 or mean_off < 1.0:
            raise ValueError("MMPP dwell means must be >= 1 cycle")
        self.mean_on = mean_on
        self.mean_off = mean_off
        duty = mean_on / (mean_on + mean_off)
        self.rate_on = min(1.0, rate / duty) if rate > 0 else 0.0

    def bind(self, num_nodes: int, seed, start: int = 0) -> None:
        self._rngs = [
            random.Random(f"{seed}:{node}") for node in range(num_nodes)
        ]
        self._on: List[bool] = []
        self._dwell: List[int] = []
        duty = self.mean_on / (self.mean_on + self.mean_off)
        for node in range(num_nodes):
            rng = self._rngs[node]
            on = rng.random() < duty
            self._on.append(on)
            self._dwell.append(
                _geometric(rng, self.mean_on if on else self.mean_off)
            )

    def emits(self, node: int, now: int) -> int:
        rng = self._rngs[node]
        if self._dwell[node] <= 0:
            on = not self._on[node]
            self._on[node] = on
            self._dwell[node] = _geometric(
                rng, self.mean_on if on else self.mean_off
            )
        self._dwell[node] -= 1
        if not self._on[node]:
            return 0
        return 0 if rng.random() >= self.rate_on else 1

    def rng_for(self, node: int) -> random.Random:
        return self._rngs[node]


#: spec-name -> class, for make_arrivals and the CLI/campaign layer.
ARRIVAL_KINDS: Dict[str, type] = {
    BernoulliArrivals.name: BernoulliArrivals,
    GeometricArrivals.name: GeometricArrivals,
    "poisson": GeometricArrivals,  # the discrete-time Poisson analogue
    ParetoArrivals.name: ParetoArrivals,
    MMPPArrivals.name: MMPPArrivals,
}


def make_arrivals(kind: str, rate: float, **kwargs) -> ArrivalProcess:
    """Factory by spec name (mirrors ``make_pattern``)."""
    try:
        cls = ARRIVAL_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown arrival process {kind!r}; "
            f"choose from {sorted(ARRIVAL_KINDS)}"
        ) from None
    return cls(rate, **kwargs)
