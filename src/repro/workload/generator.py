"""The workload generator: open-loop sources + scheduled arrivals + replies.

This is the drop-in ``engine.generator`` the workload layer installs.
It composes three arrival streams:

* **Open-loop sources** — an :class:`~repro.workload.arrivals.ArrivalProcess`
  plus a destination pattern and length distribution, active over a
  ``[start, stop)`` clock window.  Phased workloads are just several
  sources with disjoint windows.
* **Scheduled arrivals** — a static, pre-sorted list of
  ``(cycle, src, dst, length)`` entries: trace replays, incast bursts,
  and phase collectives.  Entries whose cycle passed but could not be
  admitted (full queue) stay pending and re-offer every cycle, exactly
  like :class:`~repro.traffic.trace.TraceReplayGenerator`.
* **Replies** — when a :class:`RequestReply` policy is attached the
  engine points its delivery hook here (``engine.delivery_listener``);
  delivery of a tracked request at a server schedules a reply back to
  the client after ``service_time`` cycles.  Replies are dynamic
  scheduled arrivals (a heap), so they are wake events for the fast
  engine like everything else.

Fast-engine contract (:meth:`skip_state`): the generator classifies the
current cycle as ``busy`` (pending admissions — no skip), ``paced`` (a
per-cycle-draw process is active — run generator draws every cycle), or
``at`` (pure scheduled future work — skip straight to it).  The
reference engine never calls it; both engines tick() identically.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Set

from ..network.message import Message
from ..traffic.lengths import LengthDistribution
from ..traffic.patterns import TrafficPattern
from .arrivals import ArrivalProcess, BernoulliArrivals

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.engine import Engine
    from ..topology.base import Topology

_INF = float("inf")


@dataclass(frozen=True)
class ScheduledArrival:
    """One pre-planned message arrival (trace entry, burst, collective)."""

    cycle: int
    src: int
    dst: int
    length: int
    #: True when delivery at ``dst`` should trigger a reply.
    request: bool = False
    #: True when this arrival is a server's reply (accounting only).
    reply: bool = False


@dataclass
class OpenLoopSource:
    """One stochastic source: process x pattern x lengths over a window."""

    process: ArrivalProcess
    pattern: TrafficPattern
    lengths: LengthDistribution
    start: int = 0
    stop: Optional[int] = None  # exclusive; None = never stops
    #: admitted messages to a server count as requests (client-server).
    track_requests: bool = False

    def active(self, now: int) -> bool:
        if now < self.start:
            return False
        return self.stop is None or now < self.stop


class RequestReply:
    """Server-side reply policy for client-server workloads.

    Delivery of a tracked request at ``server`` schedules a reply to
    the request's source ``service_time`` cycles later; the reply's
    length is drawn from a deterministic per-server RNG stream, so the
    reply traffic is a pure function of the delivery sequence (which is
    itself deterministic per seed — both engines agree event-for-event).
    """

    def __init__(
        self,
        servers: Sequence[int],
        lengths: LengthDistribution,
        service_time: int = 8,
        seed=0,
    ) -> None:
        if service_time < 0:
            raise ValueError("service_time must be >= 0")
        self.servers = tuple(sorted(set(servers)))
        if not self.servers:
            raise ValueError("request/reply needs at least one server")
        self.server_set = frozenset(self.servers)
        self.lengths = lengths
        self.service_time = service_time
        self._rngs = {
            server: random.Random(f"{seed}:server:{server}")
            for server in self.servers
        }

    def reply_length(self, server: int) -> int:
        return self.lengths.sample(self._rngs[server])


class WorkloadGenerator:
    """Drop-in traffic generator driven by the workload layer."""

    def __init__(
        self,
        topology: "Topology",
        sources: Iterable[OpenLoopSource] = (),
        scheduled: Iterable[ScheduledArrival] = (),
        request_reply: Optional[RequestReply] = None,
        seed=0,
    ) -> None:
        self.topology = topology
        self.num_nodes = topology.num_nodes
        self.sources: List[OpenLoopSource] = list(sources)
        self._entries: List[ScheduledArrival] = sorted(
            scheduled, key=lambda e: e.cycle
        )
        self._cursor = 0
        self._pending: List[ScheduledArrival] = []
        # Replies scheduled at delivery time: (due, seq, server, client,
        # length).  The seq breaks ties deterministically.
        self._replies: List[tuple] = []
        self._reply_seq = 0
        self.request_reply = request_reply
        self._outstanding: Set[int] = set()
        for source in self.sources:
            source.process.bind(self.num_nodes, seed, source.start)
        self.generated = 0
        self.replayed = 0
        self.requests_sent = 0
        self.replies_sent = 0
        self._engine: Optional["Engine"] = None

    # -- engine integration --------------------------------------------

    @property
    def wants_delivery_hook(self) -> bool:
        """True when build() must set ``engine.delivery_listener``."""
        return self.request_reply is not None

    def tick(self, engine: "Engine", now: int) -> None:
        self._engine = engine
        if self._pending or self._replies or \
                self._cursor < len(self._entries):
            self._admit_scheduled(engine, now)
        # Open-loop generation.  For a single Bernoulli source over
        # [0, stop_at) this loop is draw-for-draw identical to
        # TrafficGenerator.tick (same stream, same draw order, same
        # admission calls) — the back-compat tests pin it byte-for-byte.
        topology = self.topology
        for source in self.sources:
            if not source.active(now):
                continue
            process = source.process
            if process.idle():
                continue
            pattern = source.pattern
            lengths = source.lengths
            track = source.track_requests and self.request_reply is not None
            if type(process) is BernoulliArrivals and not track:
                # Hot path for the back-compat shim: inline the shared
                # stream draw loop (same draws as process.emits, minus
                # the per-node method dispatch) so workload="bernoulli"
                # costs the same as the legacy generator.
                rng = process._rng
                rate = process.rate
                rnd = rng.random
                for src in range(self.num_nodes):
                    if rnd() >= rate:
                        continue
                    dst = pattern.destination(topology, src, rng)
                    if dst is None or dst == src:
                        continue
                    message = Message(
                        src,
                        dst,
                        lengths.sample(rng),
                        created_at=now,
                        seq=engine.next_seq(src, dst),
                    )
                    if engine.admit(message):
                        self.generated += 1
                continue
            for src in range(self.num_nodes):
                for _ in range(process.emits(src, now)):
                    rng = process.rng_for(src)
                    dst = pattern.destination(topology, src, rng)
                    if dst is None or dst == src:
                        continue
                    message = Message(
                        src,
                        dst,
                        lengths.sample(rng),
                        created_at=now,
                        seq=engine.next_seq(src, dst),
                    )
                    if engine.admit(message):
                        self.generated += 1
                        if track and dst in self.request_reply.server_set:
                            self._outstanding.add(message.uid)
                            self.requests_sent += 1
                            engine.stats.counters["workload_requests"] += 1

    def on_delivered(self, message: "Message", now: int) -> None:
        """Receiver delivery hook: schedule the reply for a request."""
        rr = self.request_reply
        if rr is None or message.uid not in self._outstanding:
            return
        self._outstanding.discard(message.uid)
        due = now + rr.service_time
        heapq.heappush(
            self._replies,
            (due, self._reply_seq, message.dst, message.src,
             rr.reply_length(message.dst)),
        )
        self._reply_seq += 1

    @property
    def exhausted(self) -> bool:
        """False while the workload still owes scheduled arrivals.

        Owed work: unreached/unadmitted scheduled entries, queued
        replies, and in-flight requests (their delivery will schedule a
        reply).  Stochastic sources do not count — like the legacy
        generator they are silenced during the drain phase.  Requests
        that died (abandoned at the retry limit) are pruned against the
        engine's live set so an undeliverable request cannot wedge the
        drain loop.
        """
        if self._pending or self._replies or \
                self._cursor < len(self._entries):
            return False
        if self._outstanding:
            engine = self._engine
            if engine is not None:
                self._outstanding &= engine.live
            if self._outstanding:
                return False
        return True

    def skip_state(self, now: int):
        """Fast-engine wake protocol: ('busy'|'paced'|'at', cycle).

        ``busy``: a due arrival could not be admitted — re-offer every
        cycle, no skipping.  ``paced``: a per-cycle-draw process is
        active, so the generator must tick every cycle (the fast engine
        runs its paced loop).  ``at``: nothing happens before the
        returned cycle — scheduled entries, queued replies, and future
        source windows are all wake events.
        """
        if self._pending:
            return ("busy", now)
        nxt = _INF
        if self._cursor < len(self._entries):
            nxt = self._entries[self._cursor].cycle
        if self._replies and self._replies[0][0] < nxt:
            nxt = self._replies[0][0]
        for source in self.sources:
            process = source.process
            if process.idle():
                continue
            if source.stop is not None and now >= source.stop:
                continue
            if now < source.start:
                if source.start < nxt:
                    nxt = source.start
                continue
            if process.per_cycle_draws:
                return ("paced", now)
            arrival = process.next_arrival(now)
            if source.stop is not None and arrival >= source.stop:
                continue
            if arrival < nxt:
                nxt = arrival
        return ("at", nxt)

    # -- internals ------------------------------------------------------

    def _admit_scheduled(self, engine: "Engine", now: int) -> None:
        entries = self._entries
        while self._cursor < len(entries) and \
                entries[self._cursor].cycle <= now:
            self._pending.append(entries[self._cursor])
            self._cursor += 1
        while self._replies and self._replies[0][0] <= now:
            due, _, server, client, length = heapq.heappop(self._replies)
            self._pending.append(
                ScheduledArrival(due, server, client, length, reply=True)
            )
        if not self._pending:
            return
        still_pending: List[ScheduledArrival] = []
        track = self.request_reply is not None
        for entry in self._pending:
            message = Message(
                entry.src,
                entry.dst,
                entry.length,
                created_at=entry.cycle,
                seq=engine.next_seq(entry.src, entry.dst),
            )
            if engine.admit(message):
                self.generated += 1
                self.replayed += 1
                if entry.reply:
                    self.replies_sent += 1
                    engine.stats.counters["workload_replies"] += 1
                elif track and entry.request:
                    self._outstanding.add(message.uid)
                    self.requests_sent += 1
                    engine.stats.counters["workload_requests"] += 1
            else:
                still_pending.append(entry)
        self._pending = still_pending
