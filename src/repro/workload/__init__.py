"""Production-shaped workloads layered above ``repro.traffic``.

The traffic layer answers *where* messages go (patterns) and *how big*
they are (lengths); this package answers *when* they arrive and *why*:
stochastic arrival processes (Bernoulli, geometric/Poisson, bursty MMPP,
heavy-tailed Pareto), semi-open client-server request/reply loops,
N-to-1 incast bursts, phase-scheduled collectives, and trace replay —
all behind one drop-in :class:`WorkloadGenerator` selected by
``SimConfig(workload=...)`` / ``cr-sim ... --workload``.

See ``docs/WORKLOADS.md`` for the model semantics and hazard math of
the companion :class:`repro.faults.cascading.LoadDependentFaults`.
"""

from .arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BernoulliArrivals,
    GeometricArrivals,
    MMPPArrivals,
    ParetoArrivals,
    make_arrivals,
)
from .generator import (
    OpenLoopSource,
    RequestReply,
    ScheduledArrival,
    WorkloadGenerator,
)
from .spec import (
    WORKLOAD_KINDS,
    WorkloadSpec,
    build_workload,
    incast_bursts,
    load_workload_trace,
    save_workload_trace,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "BernoulliArrivals",
    "GeometricArrivals",
    "MMPPArrivals",
    "ParetoArrivals",
    "make_arrivals",
    "OpenLoopSource",
    "RequestReply",
    "ScheduledArrival",
    "WorkloadGenerator",
    "WORKLOAD_KINDS",
    "WorkloadSpec",
    "build_workload",
    "incast_bursts",
    "load_workload_trace",
    "save_workload_trace",
]
