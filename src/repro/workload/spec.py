"""Workload specifications: strings/dicts -> WorkloadGenerator.

``SimConfig(workload=...)`` (and ``cr-sim ... --workload``, and campaign
grid axes) accept a compact spec in three equivalent forms:

* a string — ``"mmpp"``, ``"pareto:alpha=1.4"``,
  ``"incast:period=64,fanin=8"``, ``"client-server:servers=4,service=8"``,
  ``"phased"``, ``"trace:results/workload.jsonl"``;
* a dict — ``{"kind": "mmpp", "mean_on": 16}`` (what a JSON campaign
  spec carries);
* a :class:`WorkloadSpec` instance.

The spec's ``kind`` selects a builder; every builder receives the
surrounding config's pattern, length distribution, derived per-node
message rate, seed, and generation window, so workload specs compose
with the existing ``pattern``/``load``/``lengths`` fields instead of
replacing them.

Kinds
-----
``bernoulli``/``geometric``/``poisson``/``pareto``/``mmpp``
    One open-loop source with that arrival process.  ``bernoulli`` is
    the draw-for-draw back-compat shim (byte-identical to ``workload``
    unset).
``incast``
    Periodic N-to-1 bursts: every ``period`` cycles, ``fanin`` distinct
    clients each fire one message at a sink (rotating through
    ``sinks``).  Defaults size the burst so the mean offered rate
    matches the config's ``load``.
``client-server``
    Semi-open loop: clients issue requests to ``servers`` server nodes
    under an open-loop ``process`` (at half the configured rate — the
    replies are the other half); delivery of a request schedules a
    reply after ``service`` cycles (see
    :class:`~repro.workload.generator.RequestReply`).
``phased``
    ``warmup -> burst -> collective``, driven off the engine clock: a
    gentle uniform phase, an MMPP burst phase, then periodic
    all-to-all collective exchanges over the configured pattern.
``trace``
    Replays ``(cycle, src, dst, length)`` JSONL records (see
    :func:`load_workload_trace` / :func:`save_workload_trace`) — or
    inline ``entries`` tuples — as scheduled arrivals.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Tuple

from ..traffic.lengths import LengthDistribution
from ..traffic.patterns import Incast, TrafficPattern, make_pattern
from .arrivals import ARRIVAL_KINDS, MMPPArrivals, make_arrivals
from .generator import (
    OpenLoopSource,
    RequestReply,
    ScheduledArrival,
    WorkloadGenerator,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.config import SimConfig
    from ..topology.base import Topology

_OPEN_LOOP_KINDS = tuple(sorted(ARRIVAL_KINDS))
WORKLOAD_KINDS: Tuple[str, ...] = _OPEN_LOOP_KINDS + (
    "incast", "client-server", "phased", "trace",
)


def _coerce(text: str) -> Any:
    """Parse a spec parameter value: int, float, or bare string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


@dataclass(frozen=True)
class WorkloadSpec:
    """A parsed workload description: kind + keyword parameters."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; "
                f"choose from {sorted(WORKLOAD_KINDS)}"
            )

    @classmethod
    def parse(cls, value: Any) -> "WorkloadSpec":
        """Coerce a string / dict / WorkloadSpec into a WorkloadSpec."""
        if isinstance(value, WorkloadSpec):
            return value
        if isinstance(value, dict):
            data = dict(value)
            try:
                kind = data.pop("kind")
            except KeyError:
                raise ValueError(
                    "workload dict needs a 'kind' key"
                ) from None
            return cls(kind=kind, params=data)
        if isinstance(value, str):
            kind, _, args = value.partition(":")
            if kind == "trace":
                # The argument is a path (may contain ':' on Windows
                # or '=' in odd filenames; take it verbatim).
                return cls(kind="trace", params={"path": args})
            params: Dict[str, Any] = {}
            if args:
                for item in args.split(","):
                    if not item.strip():
                        continue
                    key, sep, text = item.partition("=")
                    if not sep:
                        raise ValueError(
                            f"workload parameter {item!r} is not "
                            f"'key=value'"
                        )
                    params[key.strip()] = _coerce(text.strip())
            return cls(kind=kind, params=params)
        raise TypeError(
            f"workload must be a string, dict, or WorkloadSpec "
            f"(got {type(value).__name__})"
        )


def build_workload(config: "SimConfig",
                   topology: "Topology") -> WorkloadGenerator:
    """Construct the generator a config's ``workload`` field describes."""
    from ..traffic.loads import injection_rate

    spec = WorkloadSpec.parse(config.workload)
    lengths = config.make_lengths()
    rate = min(injection_rate(topology, config.load, lengths.mean()), 1.0)
    pattern = make_pattern(config.pattern, **config.pattern_kwargs)
    stop = config.warmup + config.measure
    seed = config.seed + 1  # the legacy generator's stream namespace
    params = dict(spec.params)
    if spec.kind in ARRIVAL_KINDS:
        return _build_open_loop(
            spec.kind, params, topology, pattern, lengths, rate, seed,
            stop,
        )
    if spec.kind == "incast":
        return _build_incast(
            params, topology, lengths, rate, seed, stop
        )
    if spec.kind == "client-server":
        return _build_client_server(
            params, topology, lengths, rate, seed, stop
        )
    if spec.kind == "phased":
        return _build_phased(
            params, topology, pattern, lengths, rate, seed, stop
        )
    assert spec.kind == "trace"
    return _build_trace(params, topology, seed)


# -- builders -----------------------------------------------------------


def _build_open_loop(kind, params, topology, pattern, lengths, rate,
                     seed, stop) -> WorkloadGenerator:
    process = make_arrivals(kind, rate, **params)
    source = OpenLoopSource(process, pattern, lengths, start=0, stop=stop)
    return WorkloadGenerator(topology, sources=[source], seed=seed)


def _pick_sinks(params, topology) -> List[int]:
    sinks = params.pop("sinks", None)
    if sinks is None:
        count = int(params.pop("num_sinks", 1))
        step = max(1, topology.num_nodes // max(1, count))
        return [(i * step) % topology.num_nodes for i in range(count)]
    if isinstance(sinks, int):
        return [sinks]
    if isinstance(sinks, str):
        return [int(s) for s in sinks.split("+") if s.strip()]
    return [int(s) for s in sinks]


def incast_bursts(
    topology: "Topology",
    lengths: LengthDistribution,
    rate: float,
    seed,
    start: int,
    stop: int,
    period: int,
    fanin: int,
    sinks: Iterable[int],
    request: bool = False,
) -> List[ScheduledArrival]:
    """Precompute periodic N-to-1 bursts as scheduled arrivals.

    Every ``period`` cycles ``fanin`` distinct clients (drawn from a
    deterministic RNG) each send one message to the burst's sink;
    bursts rotate through ``sinks``.  All entries are known up front,
    so the whole workload is wake events for the fast engine.
    """
    sinks = list(sinks)
    rng = random.Random(f"{seed}:incast")
    clients = [n for n in range(topology.num_nodes) if n not in set(sinks)]
    fanin = max(1, min(fanin, len(clients)))
    entries: List[ScheduledArrival] = []
    for index, cycle in enumerate(range(start, stop, period)):
        sink = sinks[index % len(sinks)]
        for src in rng.sample(clients, fanin):
            entries.append(ScheduledArrival(
                cycle, src, sink, lengths.sample(rng), request=request,
            ))
    return entries


def _build_incast(params, topology, lengths, rate, seed,
                  stop) -> WorkloadGenerator:
    sinks = _pick_sinks(params, topology)
    period = int(params.pop("period", 64))
    if period < 1:
        raise ValueError("incast period must be >= 1")
    # Default burst size targets the configured offered load.
    default_fanin = max(1, round(rate * topology.num_nodes * period))
    fanin = int(params.pop("fanin", default_fanin))
    start = int(params.pop("start", 0))
    if params:
        raise ValueError(f"unknown incast parameters {sorted(params)}")
    entries = incast_bursts(
        topology, lengths, rate, seed, start, stop, period, fanin, sinks,
    )
    return WorkloadGenerator(topology, scheduled=entries, seed=seed)


def _build_client_server(params, topology, lengths, rate, seed,
                         stop) -> WorkloadGenerator:
    num_servers = int(params.pop("servers", max(1, topology.num_nodes // 16)))
    service = int(params.pop("service", 8))
    process_kind = params.pop("process", "bernoulli")
    servers = _pick_sinks({"num_sinks": num_servers}, topology)
    # Requests run at half the configured rate; replies (one per
    # delivered request) supply the other half, keeping total offered
    # load near the config's ``load``.
    process = make_arrivals(process_kind, rate / 2.0, **params)
    source = OpenLoopSource(
        process,
        Incast(sinks=servers),
        lengths,
        start=0,
        stop=stop,
        track_requests=True,
    )
    reply = RequestReply(
        servers, lengths, service_time=service, seed=seed,
    )
    return WorkloadGenerator(
        topology, sources=[source], request_reply=reply, seed=seed,
    )


def _build_phased(params, topology, pattern, lengths, rate, seed,
                  stop) -> WorkloadGenerator:
    """warmup -> burst -> collective, windows split over [0, stop)."""
    warmup_frac = float(params.pop("warmup_frac", 1 / 3))
    burst_frac = float(params.pop("burst_frac", 1 / 3))
    interval = int(params.pop("collective_interval", 48))
    mean_on = float(params.pop("mean_on", 24.0))
    mean_off = float(params.pop("mean_off", 72.0))
    if params:
        raise ValueError(f"unknown phased parameters {sorted(params)}")
    t1 = int(stop * warmup_frac)
    t2 = t1 + int(stop * burst_frac)
    sources = [
        # Phase 1: gentle warmup at reduced uniform load.
        OpenLoopSource(
            make_arrivals("geometric", rate * 0.5),
            pattern, lengths, start=0, stop=t1,
        ),
        # Phase 2: bursty on/off sources at the full configured rate.
        OpenLoopSource(
            MMPPArrivals(rate, mean_on=mean_on, mean_off=mean_off),
            pattern, lengths, start=t1, stop=t2,
        ),
    ]
    # Phase 3: periodic collective exchanges — every node sends one
    # message to its pattern partner, all on the same cycle.
    rng = random.Random(f"{seed}:collective")
    entries: List[ScheduledArrival] = []
    for cycle in range(t2, stop, interval):
        for src in range(topology.num_nodes):
            dst = pattern.destination(topology, src, rng)
            if dst is None or dst == src:
                continue
            entries.append(ScheduledArrival(
                cycle, src, dst, lengths.sample(rng)
            ))
    return WorkloadGenerator(
        topology, sources=sources, scheduled=entries, seed=seed,
    )


def _build_trace(params, topology, seed) -> WorkloadGenerator:
    entries = params.pop("entries", None)
    path = params.pop("path", "")
    if params:
        raise ValueError(f"unknown trace parameters {sorted(params)}")
    if entries is None:
        if not path:
            raise ValueError(
                "trace workload needs a JSONL path "
                "('trace:<path>') or inline 'entries'"
            )
        arrivals = load_workload_trace(path)
    else:
        arrivals = [
            entry if isinstance(entry, ScheduledArrival)
            else ScheduledArrival(*entry)
            for entry in entries
        ]
    return WorkloadGenerator(topology, scheduled=arrivals, seed=seed)


# -- JSONL workload traces ----------------------------------------------


def load_workload_trace(path: str) -> List[ScheduledArrival]:
    """Read a ``(cycle, src, dst, length)`` JSONL workload trace."""
    from ..obs.sinks import read_jsonl

    entries: List[ScheduledArrival] = []
    for record in read_jsonl(path):
        entries.append(ScheduledArrival(
            cycle=int(record["cycle"]),
            src=int(record["src"]),
            dst=int(record["dst"]),
            length=int(record["length"]),
        ))
    return entries


def save_workload_trace(entries, path: str) -> int:
    """Write arrivals (ScheduledArrival / TraceEntry / tuples) as JSONL."""
    import os

    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for entry in entries:
            if isinstance(entry, tuple):
                cycle, src, dst, length = entry
            else:
                cycle, src, dst, length = (
                    entry.cycle, entry.src, entry.dst, entry.length
                )
            handle.write(json.dumps({
                "cycle": cycle, "src": src, "dst": dst, "length": length,
            }) + "\n")
            count += 1
    return count
