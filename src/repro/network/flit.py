"""Flit: the flow-control unit of a wormhole network.

A message is transmitted as a sequence of flits.  The first flit is the
*header* (it carries routing information and acquires channels as it
advances); subsequent flits are *body* flits; Compressionless Routing
appends *pad* flits to short messages so that the tail cannot leave the
source before the header has been consumed at the destination.  The final
flit of the sequence -- whatever its kind -- is flagged as the *tail*; it
releases channels as it passes.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .message import Message


class FlitKind(enum.Enum):
    """Classification of a flit within its message."""

    HEAD = "head"
    BODY = "body"
    PAD = "pad"


class Flit:
    """One flow-control unit.

    Attributes
    ----------
    message:
        The message this flit belongs to.
    kind:
        HEAD, BODY, or PAD.
    index:
        Position within the wire sequence of the current transmission
        attempt (0 for the header).
    is_tail:
        True for the last flit of the transmission attempt.
    corrupted:
        Set by the transient-fault model when a link traversal damages
        the flit.  Detected by per-flit check codes at routers (headers)
        or at the receiving network interface (body/pad flits).
    """

    __slots__ = ("message", "kind", "index", "is_tail", "corrupted")

    def __init__(
        self,
        message: "Message",
        kind: FlitKind,
        index: int,
        is_tail: bool = False,
    ) -> None:
        self.message = message
        self.kind = kind
        self.index = index
        self.is_tail = is_tail
        self.corrupted = False

    @property
    def is_head(self) -> bool:
        """True if this flit is the message header."""
        return self.kind is FlitKind.HEAD

    @property
    def is_payload(self) -> bool:
        """True if this flit carries message data (header or body)."""
        return self.kind is not FlitKind.PAD

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tail = ",tail" if self.is_tail else ""
        return (
            f"Flit(msg={self.message.uid}, {self.kind.value}"
            f"[{self.index}]{tail})"
        )
