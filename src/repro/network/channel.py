"""Physical channels with credit-based flow control.

A channel moves at most one flit per cycle (its virtual channels
multiplex the same wires).  The sender holds one credit counter per VC,
initialised to the downstream buffer depth; a credit is consumed when a
flit is sent and returned (after the channel's reverse latency) when the
downstream buffer pops a flit.  This credit loop is the "tight coupling
between wormhole routers" that Compressionless Routing exploits: a
blocked header anywhere on the path starves the source of credits within
a bounded number of cycles.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .buffer import VCBuffer
    from .flit import Flit

_chan_uid = itertools.count()


class Channel:
    """A unidirectional physical channel between two network endpoints.

    The channel may be a router-to-router link, an injection channel
    (source interface to router), or an ejection channel (router to
    receiving interface).  ``sinks`` holds one VCBuffer per VC for link
    and injection channels; ejection channels instead deliver flits to a
    receiver via the engine (``sinks`` empty, ``is_ejection`` True).

    Topological metadata (``dim``, ``direction``, ``is_wrap``) is filled
    in by the topology builder and consulted by routing functions (e.g.
    the dateline rule for deadlock-free dimension-order routing in tori).
    """

    __slots__ = (
        "uid",
        "src_node",
        "dst_node",
        "src_port",
        "dst_port",
        "num_vcs",
        "latency",
        "credits",
        "_pending",
        "dim",
        "direction",
        "is_wrap",
        "is_ejection",
        "is_injection",
        "dead",
        "sinks",
        "flits_carried",
    )

    def __init__(
        self,
        src_node: int,
        dst_node: int,
        num_vcs: int,
        latency: int = 1,
        is_ejection: bool = False,
        is_injection: bool = False,
    ) -> None:
        if num_vcs < 1:
            raise ValueError("a channel needs at least one virtual channel")
        if latency < 1:
            raise ValueError("channel latency must be >= 1")
        self.uid = next(_chan_uid)
        self.src_node = src_node
        self.dst_node = dst_node
        # Port indices at each endpoint router; filled in by the builder.
        self.src_port = -1
        self.dst_port = -1
        self.num_vcs = num_vcs
        self.latency = latency
        self.credits: List[int] = [0] * num_vcs
        self._pending: List[Tuple[int, int]] = []  # (ready_cycle, vc)
        self.dim = -1
        self.direction = 0
        self.is_wrap = False
        self.is_ejection = is_ejection
        self.is_injection = is_injection
        self.dead = False
        self.sinks: List[Optional["VCBuffer"]] = [None] * num_vcs
        self.flits_carried = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_sink(self, vc: int, buffer: "VCBuffer") -> None:
        """Connect VC ``vc`` to its downstream buffer and size credits."""
        self.sinks[vc] = buffer
        self.credits[vc] = buffer.depth
        buffer.feeder = self

    def set_eject_capacity(self, slots: int) -> None:
        """Size credits of an ejection channel (receiver staging slots)."""
        if not self.is_ejection:
            raise RuntimeError("set_eject_capacity on a non-ejection channel")
        for vc in range(self.num_vcs):
            self.credits[vc] = slots

    # ------------------------------------------------------------------
    # Credit flow
    # ------------------------------------------------------------------

    def can_send(self, vc: int) -> bool:
        """True if a flit may be launched on ``vc`` this cycle."""
        return not self.dead and self.credits[vc] > 0

    def consume_credit(self, vc: int) -> None:
        if self.credits[vc] <= 0:
            raise RuntimeError(f"credit underflow on channel {self.uid} vc {vc}")
        self.credits[vc] -= 1

    def return_credit(self, vc: int, now: int) -> None:
        """Schedule a credit to become available after reverse latency."""
        self._pending.append((now + self.latency, vc))

    def pending_credits(self, vc: int) -> int:
        """Credits in flight back to the sender on ``vc`` (not yet due)."""
        return sum(1 for _, pending_vc in self._pending if pending_vc == vc)

    def tick(self, now: int) -> None:
        """Make due credits available (called at the start of each cycle)."""
        if not self._pending:
            return
        still_pending = []
        for ready, vc in self._pending:
            if ready <= now:
                self.credits[vc] += 1
            else:
                still_pending.append((ready, vc))
        self._pending = still_pending

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------

    def send(self, vc: int, flit: "Flit", now: int) -> None:
        """Launch ``flit`` on ``vc``; it arrives after ``latency`` cycles.

        Ejection channels do not stage into a VCBuffer; the engine routes
        their flits to the node's receiver instead.
        """
        self.consume_credit(vc)
        self.flits_carried += 1
        if not self.is_ejection:
            sink = self.sinks[vc]
            if sink is None:
                raise RuntimeError(
                    f"channel {self.uid} vc {vc} has no attached sink"
                )
            sink.stage(flit, now + self.latency)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = (
            "ej" if self.is_ejection else "inj" if self.is_injection else "link"
        )
        return (
            f"Channel#{self.uid}({kind} {self.src_node}->{self.dst_node}, "
            f"vcs={self.num_vcs}, credits={self.credits})"
        )
