"""Cycle-accurate wormhole-network substrate."""
