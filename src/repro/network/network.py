"""Network assembly: routers, link channels, injection/ejection wiring.

The builder instantiates one router per topology node, wires a link
channel per topology edge (output-port numbering matches the topology's
``LinkSpec.port``), and then attaches the node interfaces: ``num_inject``
injection channels (each feeding its own input port on the router) and
``num_sink`` ejection channels -- the paper's "source and sink channels",
swept in Fig. 14(e,f).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from .channel import Channel
from .router import Router

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..routing.base import RoutingFunction
    from ..routing.selection import SelectionPolicy
    from ..topology.base import Topology


class WormholeNetwork:
    """Routers plus channels for a topology; no protocol state."""

    def __init__(
        self,
        topology: "Topology",
        routing: "RoutingFunction",
        selection: "SelectionPolicy",
        num_vcs: int = 1,
        buffer_depth: int = 2,
        channel_latency: int = 1,
        num_inject: int = 1,
        num_sink: int = 1,
        eject_slots: int = 2,
        channel_factory=None,
    ) -> None:
        if num_vcs < routing.min_vcs():
            raise ValueError(
                f"{routing.name} routing needs >= {routing.min_vcs()} VCs, "
                f"got {num_vcs}"
            )
        if buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        if num_inject < 1 or num_sink < 1:
            raise ValueError("need at least one injection and one sink channel")
        self.topology = topology
        self.routing = routing
        self.selection = selection
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.channel_latency = channel_latency
        self.num_inject = num_inject
        self.num_sink = num_sink
        self.eject_slots = eject_slots
        # Channel subclass to instantiate everywhere (the fast engine
        # swaps in its ledger-reporting channel); must be construction-
        # compatible with Channel.
        self._channel_factory = channel_factory or Channel

        n = topology.num_nodes
        self.routers: List[Router] = [Router(i, num_vcs) for i in range(n)]
        self.link_channels: List[Channel] = []
        self.injection_channels: Dict[int, List[Channel]] = {}
        self.ejection_channels: Dict[int, List[Channel]] = {}

        self._wire_links()
        self._wire_interfaces()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def _wire_links(self) -> None:
        latency = self.channel_latency
        for node in range(self.topology.num_nodes):
            router = self.routers[node]
            for spec in self.topology.links(node):
                channel = self._channel_factory(
                    node, spec.dst, self.num_vcs, latency
                )
                channel.dim = spec.dim
                channel.direction = spec.direction
                channel.is_wrap = spec.is_wrap
                port = router.add_output_channel(channel)
                if port != spec.port:
                    raise RuntimeError(
                        f"output port mismatch at node {node}: "
                        f"{port} != {spec.port}"
                    )
                self.link_channels.append(channel)
        # Input ports are created in a second pass so that every router's
        # link outputs are registered first (ejection ports come after).
        for channel in self.link_channels:
            dst_router = self.routers[channel.dst_node]
            in_port = dst_router.add_input_port(self.buffer_depth)
            channel.dst_port = in_port
            for vc in range(self.num_vcs):
                channel.attach_sink(vc, dst_router.in_buffers[in_port][vc])
        for router in self.routers:
            router.num_link_in = len(router.in_buffers)
            router.num_link_out = len(router.out_channels)

    def _wire_interfaces(self) -> None:
        latency = self.channel_latency
        for node in range(self.topology.num_nodes):
            router = self.routers[node]
            ejectors = []
            for _ in range(self.num_sink):
                channel = self._channel_factory(
                    node, node, 1, latency, is_ejection=True
                )
                router.add_output_channel(channel)
                channel.set_eject_capacity(self.eject_slots)
                ejectors.append(channel)
            self.ejection_channels[node] = ejectors
            injectors = []
            for _ in range(self.num_inject):
                channel = self._channel_factory(
                    node, node, self.num_vcs, latency, is_injection=True
                )
                in_port = router.add_input_port(self.buffer_depth)
                channel.dst_port = in_port
                for vc in range(self.num_vcs):
                    channel.attach_sink(vc, router.in_buffers[in_port][vc])
                injectors.append(channel)
            self.injection_channels[node] = injectors

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def all_channels(self) -> List[Channel]:
        out = list(self.link_channels)
        for node in range(self.topology.num_nodes):
            out.extend(self.ejection_channels[node])
            out.extend(self.injection_channels[node])
        return out

    def find_link(self, src: int, dst: int) -> Channel:
        """The link channel from ``src`` to ``dst`` (for fault injection)."""
        for channel in self.link_channels:
            if channel.src_node == src and channel.dst_node == dst:
                return channel
        raise KeyError(f"no link {src}->{dst} in {self.topology.name}")

    def total_buffer_flits(self) -> int:
        """Total input buffering in the network (cost accounting)."""
        return sum(
            buf.depth
            for router in self.routers
            for port in router.in_buffers
            for buf in port
        )
