"""The cycle engine: drives every network component in lockstep.

Each cycle runs fixed phases over state as of the cycle start (arrivals
and credits are staged with latency, so intra-cycle evaluation order
cannot leak information):

1.  credit ticks           -- due credits become spendable,
2.  arrival merges         -- in-flight flits land in buffers (corrupted
                              headers trigger router kills under FCR),
3.  receivers              -- consume ejected flits, deliver / FKILL,
4.  kill wavefronts        -- flush one worm segment per dying message,
5.  traffic generation     -- new messages enter node queues,
6.  injectors              -- start/stream/stall-count/kill,
7.  routing                -- blocked headers try to claim output VCs,
8.  switch                 -- one flit per physical channel moves,
9.  path-wide monitor      -- the E10 ablation's per-router timeout,
10. watchdog               -- detect a wedged network (true deadlock).

The watchdog is a simulator safety net, not part of CR: with CR/FCR it
never fires (timeouts guarantee progress); with naive adaptive routing
and PLAIN injection it fires quickly -- that *is* the deadlock CR breaks,
and the deadlock-demonstration example relies on it.
"""

from __future__ import annotations

import random
from time import perf_counter_ns
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from ..core.guarantees import DeliveryLedger
from ..core.kill import KillManager
from ..core.node import Node
from ..core.pcs import PCSManager
from ..core.protocol import KillCause, MessagePhase, ProtocolConfig, ProtocolMode
from ..stats.collector import StatsCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults.model import FaultModel
    from ..network.buffer import VCBuffer
    from ..network.message import Message
    from ..routing.base import Candidate
    from ..traffic.generator import TrafficGenerator
    from .network import WormholeNetwork

_LIVE_PHASES = (MessagePhase.INJECTING, MessagePhase.COMMITTED)


class NetworkDeadlockError(RuntimeError):
    """The network made no progress for the watchdog interval.

    ``report`` carries a :class:`repro.obs.forensics.DeadlockReport`
    (wait-for graph, occupancy snapshot, stalled injectors, recent
    events) built at the moment the watchdog fired.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class OrderedSet:
    """Insertion-ordered set over an ordered dict.

    Plain ``set`` iteration order depends on object id() values, which
    vary run to run; everything the engine iterates must be ordered so
    that a seeded run is bit-for-bit reproducible.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: Dict[object, None] = {}

    def add(self, item) -> None:
        self._items[item] = None

    def discard(self, item) -> None:
        self._items.pop(item, None)

    def __contains__(self, item) -> bool:
        return item in self._items

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)


class Engine:
    """Owns all mutable simulation state and the main loop."""

    def __init__(
        self,
        network: "WormholeNetwork",
        protocol: Optional[ProtocolConfig] = None,
        seed: int = 0,
        stats: Optional[StatsCollector] = None,
        ledger: Optional[DeliveryLedger] = None,
        fault_model: Optional["FaultModel"] = None,
        generator: Optional["TrafficGenerator"] = None,
        watchdog: int = 20000,
        queue_cap: int = 64,
    ) -> None:
        self.network = network
        self.topology = network.topology
        self.routing = network.routing
        self.selection = network.selection
        self.routers = network.routers
        self.num_vcs = network.num_vcs
        self.protocol = protocol or ProtocolConfig()
        self.rng = random.Random(seed)
        self.stats = stats or StatsCollector(self.topology.num_nodes)
        self.ledger = ledger or DeliveryLedger(
            expect_integrity=self.protocol.mode is ProtocolMode.FCR
        )
        self.fault_model = fault_model
        self.generator = generator
        self.watchdog = watchdog
        self.now = 0
        self.last_progress = 0
        self.kills = KillManager(self)
        self.pcs = (
            PCSManager(self)
            if self.protocol.mode is ProtocolMode.PCS
            else None
        )
        # Ordered sets (insertion-ordered dicts): iteration order must be
        # deterministic for reproducible runs, which id()-hashed sets are
        # not across processes.
        self.route_pending: "OrderedSet[VCBuffer]" = OrderedSet()
        self._arrival_buffers: "OrderedSet[VCBuffer]" = OrderedSet()
        self.live: Set[int] = set()
        self.injecting: "OrderedSet[Message]" = OrderedSet()
        # Every message with a worm in the network (including committed
        # ones still draining) -- scanned by the path-wide monitor.
        self.in_flight: "OrderedSet[Message]" = OrderedSet()
        self.nodes: List[Node] = [
            Node(
                node,
                network.injection_channels[node],
                self,
                queue_cap=queue_cap,
                order_preserving=self.protocol.order_preserving,
            )
            for node in range(self.topology.num_nodes)
        ]
        self._all_channels = network.all_channels()
        self._pair_seq: Dict[tuple, int] = {}
        # Observability (repro.obs): both stay None unless attached, so
        # untraced runs pay one is-None check per potential emit site.
        self.bus = None
        self.sampler = None
        # Invariant checking (repro.verify): same guard discipline;
        # armed by SimConfig(verify=...).
        self.checker = None
        # Optional application-layer reliability protocol (the software
        # retry baseline); set via SoftwareReliability.attach().
        self.reliability = None
        # Self-profiling (repro.obs.profile): same guard discipline --
        # one is-None check per step dispatches to the timed copy.
        self.profiler = None
        # Alert rules engine (repro.obs.alerts) and telemetry publisher
        # (repro.obs.server): both ride the sampler's listener list, so
        # the per-cycle path never touches them; the attributes exist so
        # exporters and reports can find them on any engine.
        self.alerts = None
        self.telemetry = None
        # Workload delivery hook (repro.workload): object with
        # on_delivered(message, now), called by receivers when a whole
        # message arrives -- how client-server replies get scheduled.
        self.delivery_listener = None

    # ------------------------------------------------------------------
    # Message admission (traffic generators and examples use this)
    # ------------------------------------------------------------------

    def next_seq(self, src: int, dst: int) -> int:
        """Per-pair sequence number (order-preservation bookkeeping)."""
        key = (src, dst)
        seq = self._pair_seq.get(key, 0)
        self._pair_seq[key] = seq + 1
        return seq

    def admit(self, message: "Message") -> bool:
        """Offer a message to its source node's queue.

        Returns False when the queue is full (blocked source); the
        message is then discarded and does not count as offered traffic.
        """
        node = self.nodes[message.src]
        if not node.enqueue(message):
            self.stats.on_generation_blocked()
            return False
        self.stats.on_created(message, self.now)
        if self.bus is not None:
            from ..obs.events import MessageCreated

            self.bus.emit(MessageCreated(
                self.now, message.uid, message.src, message.dst,
                message.payload_length,
            ))
        self.live.add(message.uid)
        if self.reliability is not None:
            self.reliability.on_admitted(message, self.now)
        return True

    # ------------------------------------------------------------------
    # Engine hooks used by interfaces and the kill manager
    # ------------------------------------------------------------------

    def note_arrival(self, buffer: "VCBuffer") -> None:
        self._arrival_buffers.add(buffer)

    def mark_progress(self, now: int) -> None:
        self.last_progress = now

    def abort_injection(self, message: "Message") -> None:
        for injector in self.nodes[message.src].injectors:
            injector.abort(message)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def run_until_drained(self, max_cycles: int) -> bool:
        """Run with generation off until no work remains.

        "Drained" means no live messages in the network *and* no
        outstanding obligations in an attached reliability layer (which
        may still owe retransmissions after the network goes quiet).
        Returns True if drained, False on the cycle budget.
        """
        generator = self.generator
        # Stochastic generators are silenced during the drain; a trace
        # replay that still owes arrivals (full queues made it slip) is
        # part of the workload and keeps running.
        replaying = getattr(generator, "exhausted", None) is False
        if not replaying:
            self.generator = None
        try:
            for _ in range(max_cycles):
                if self._drained():
                    return True
                self.step()
            return self._drained()
        finally:
            self.generator = generator

    def _drained(self) -> bool:
        if self.live:
            return False
        if getattr(self.generator, "exhausted", True) is False:
            return False  # a trace replay still owes arrivals
        return self.reliability is None or not self.reliability.outstanding

    def step(self) -> None:
        if self.profiler is not None:
            self._step_profiled()
            return
        now = self.now
        for channel in self._all_channels:
            channel.tick(now)
        if self.fault_model is not None:
            self.fault_model.on_cycle(now, self.network)
        self._merge_arrivals(now)
        for node in self.nodes:
            node.receiver.process(now)
        self.kills.advance(now)
        if self.generator is not None:
            self.generator.tick(self, now)
        if self.reliability is not None:
            self.reliability.tick(now)
        for node in self.nodes:
            for injector in node.injectors:
                injector.step(now)
        if self.pcs is not None:
            self.pcs.step(now)
        self._route_headers(now)
        self._switch(now)
        self._path_wide_monitor(now)
        self._drop_at_block_monitor(now)
        self._watchdog_check(now)
        if self.sampler is not None:
            self.sampler.on_cycle(now)
        if self.checker is not None:
            self.checker.on_cycle_end(now)
        self.now = now + 1

    def _step_profiled(self) -> None:
        # Timed copy of step(): identical phase order and side effects,
        # each phase bracketed with perf_counter_ns.  Kept separate so
        # the unprofiled path stays guard-only.  Any change to step()
        # must be mirrored here (tests assert profiled and plain runs
        # produce identical reports).
        clock = perf_counter_ns
        phases = self.profiler.phases
        now = self.now
        step_start = clock()

        t0 = clock()
        for channel in self._all_channels:
            channel.tick(now)
        phases["credit"].record(clock() - t0)

        if self.fault_model is not None:
            t0 = clock()
            self.fault_model.on_cycle(now, self.network)
            phases["fault"].record(clock() - t0)

        t0 = clock()
        self._merge_arrivals(now)
        phases["arrival"].record(clock() - t0)

        t0 = clock()
        for node in self.nodes:
            node.receiver.process(now)
        phases["ejection"].record(clock() - t0)

        t0 = clock()
        self.kills.advance(now)
        phases["kill"].record(clock() - t0)

        if self.generator is not None or self.reliability is not None:
            t0 = clock()
            if self.generator is not None:
                self.generator.tick(self, now)
            if self.reliability is not None:
                self.reliability.tick(now)
            phases["traffic"].record(clock() - t0)

        t0 = clock()
        for node in self.nodes:
            for injector in node.injectors:
                injector.step(now)
        if self.pcs is not None:
            self.pcs.step(now)
        phases["injection"].record(clock() - t0)

        t0 = clock()
        self._route_headers(now)
        phases["routing"].record(clock() - t0)

        t0 = clock()
        self._switch(now)
        phases["switch"].record(clock() - t0)

        t0 = clock()
        self._path_wide_monitor(now)
        self._drop_at_block_monitor(now)
        self._watchdog_check(now)
        phases["monitor"].record(clock() - t0)

        if self.sampler is not None:
            t0 = clock()
            self.sampler.on_cycle(now)
            phases["sampler"].record(clock() - t0)

        if self.checker is not None:
            t0 = clock()
            self.checker.on_cycle_end(now)
            phases["checker"].record(clock() - t0)

        self.now = now + 1
        self.profiler.on_step_end(now, clock() - step_start)

    # ------------------------------------------------------------------
    # Phase 2: arrivals
    # ------------------------------------------------------------------

    def _merge_arrivals(self, now: int) -> None:
        if not self._arrival_buffers:
            return
        fcr = self.protocol.mode is ProtocolMode.FCR
        done = []
        for buffer in self._arrival_buffers:
            arrived = buffer.merge_incoming(now)
            if arrived:
                self.mark_progress(now)
                for flit in arrived:
                    if not flit.is_head:
                        continue
                    message = flit.message
                    if message.phase not in _LIVE_PHASES:
                        continue
                    if fcr and flit.corrupted:
                        # Per-flit check code fails at the router: the
                        # router initiates a backward kill to the source.
                        self.kills.initiate(
                            message,
                            KillCause.HEADER_FAULT,
                            backward=True,
                            now=now,
                        )
                    else:
                        self.route_pending.add(buffer)
            if not buffer.incoming:
                done.append(buffer)
        for buffer in done:
            self._arrival_buffers.discard(buffer)

    # ------------------------------------------------------------------
    # Phase 7: routing (header output-VC allocation)
    # ------------------------------------------------------------------

    def _route_headers(self, now: int) -> None:
        if not self.route_pending:
            return
        pending = list(self.route_pending)
        if len(pending) > 1:
            self.rng.shuffle(pending)
        for buffer in pending:
            head = buffer.head()
            if head is None or not head.is_head:
                self.route_pending.discard(buffer)
                continue
            if buffer.routed:
                # Already holds an output (a PCS probe reserved it, or a
                # stale queue entry): nothing to allocate.
                self.route_pending.discard(buffer)
                continue
            message = head.message
            if message.phase not in _LIVE_PHASES:
                self.route_pending.discard(buffer)
                continue
            if self._grant(buffer, message):
                buffer.route_stall_since = None
                self.route_pending.discard(buffer)
            elif buffer.route_stall_since is None:
                buffer.route_stall_since = now

    def _grant(self, buffer: "VCBuffer", message: "Message") -> bool:
        from ..routing.base import Candidate

        router = buffer.router
        if router.node_id == message.dst:
            tiers = [[Candidate(port, 0) for port in router.eject_ports]]
        else:
            tiers = self.routing.candidates(router, message)
        for tier in tiers:
            free = [
                cand
                for cand in tier
                if router.output_free(cand.port, cand.vc)
                and not router.out_channels[cand.port].dead
            ]
            if not free:
                continue
            choice = self.selection.pick(free, router, message, self.rng)
            router.claim_output(choice.port, choice.vc, buffer, message)
            if choice.is_escape:
                message.escape_hops += 1
                message.used_escape = True
                self.stats.on_escape_grant(message)
            if choice.is_misroute:
                message.misroutes_used += 1
                self.stats.counters["misroute_hops"] += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Phase 8: switch traversal (one flit per physical channel)
    # ------------------------------------------------------------------

    def _switch(self, now: int) -> None:
        for router in self.routers:
            claims = router.claims
            if not claims:
                continue
            by_port: Dict[int, List] = {}
            for (port, vc), buffer in claims.items():
                if not buffer.fifo:
                    continue
                owner = buffer.owner
                if owner is None or owner.phase not in _LIVE_PHASES:
                    continue
                if not router.out_channels[port].can_send(vc):
                    continue
                by_port.setdefault(port, []).append((vc, buffer))
            if not by_port:
                continue
            used_inputs: Set[int] = set()
            for port in sorted(by_port):
                entries = [
                    (vc, buffer)
                    for vc, buffer in by_port[port]
                    if buffer.port not in used_inputs
                ]
                if not entries:
                    continue
                # Full deterministic tie-break: out-VC, then input port
                # and input VC, so equal-priority entries never fall
                # back to dict insertion order (trace diffs between
                # engine implementations must be order-stable).
                entries.sort(key=lambda e: (e[0], e[1].port, e[1].vc))
                vc, buffer = entries[router.rotate(port, len(entries))]
                used_inputs.add(buffer.port)
                self._transfer(router, port, vc, buffer, now)

    def _transfer(self, router, port: int, vc: int, buffer, now: int) -> None:
        flit = buffer.pop(now)
        message = flit.message
        channel = router.out_channels[port]
        if (
            self.fault_model is not None
            and not channel.is_ejection
            and not channel.is_injection
            and self.fault_model.corrupt(flit, channel, self.rng)
        ):
            flit.corrupted = True
            self.stats.on_fault_injected()
            if self.bus is not None:
                from ..obs.events import FaultActivated

                self.bus.emit(FaultActivated(
                    now, "transient", channel.src_node, channel.dst_node,
                    uid=message.uid,
                ))
        channel.send(vc, flit, now)
        if channel.is_ejection:
            self.nodes[router.node_id].receiver.stage(
                flit, now + channel.latency, channel
            )
        else:
            self.note_arrival(channel.sinks[vc])
        if flit.is_head and not channel.is_ejection and self.pcs is None:
            # Under PCS the probe acquired the path (and advanced the
            # header routing state) before any data flit moved.
            self.routing.on_header_hop(message, channel)
            sink = channel.sinks[vc]
            sink.acquire(message, now)
            message.segments.append(sink)
        if flit.is_tail:
            buffer.release()
            feeder = buffer.feeder
            if feeder is not None and not feeder.is_injection:
                self.routers[feeder.src_node].release_output_if(
                    feeder.src_port, buffer.vc, message
                )
            message.tail_seg += 1
            if channel.is_ejection:
                router.release_output(port, vc)
            else:
                router.retire_claim(port, vc)
        self.mark_progress(now)

    # ------------------------------------------------------------------
    # Phase 9: path-wide timeout (E10 ablation)
    # ------------------------------------------------------------------

    def _path_wide_monitor(self, now: int) -> None:
        monitor = self.protocol.path_wide
        if monitor is None or not self.in_flight:
            return
        for message in list(self.in_flight):
            for buffer in message.active_segments:
                if monitor.stalled(buffer.last_advance, now):
                    # A router only sees local stalling; it cannot tell a
                    # potential deadlock from sink contention, nor an
                    # uncommitted worm from a committed one.
                    self.kills.initiate(
                        message,
                        KillCause.PATH_TIMEOUT,
                        backward=False,
                        now=now,
                        allow_committed=True,
                    )
                    break

    # ------------------------------------------------------------------
    # Drop-at-block monitor (E19 baseline: BBN Butterfly lineage)
    # ------------------------------------------------------------------

    def _drop_at_block_monitor(self, now: int) -> None:
        threshold = self.protocol.drop_at_block
        if threshold is None or not self.in_flight:
            return
        for message in list(self.in_flight):
            segments = message.active_segments
            if not segments:
                continue
            head_buffer = segments[-1]
            stalled_since = head_buffer.route_stall_since
            if (
                stalled_since is not None
                and now - stalled_since >= threshold
            ):
                # The blocking router rejects the message outright; the
                # sender (which keeps a copy until delivery, as the BBN
                # software did) retransmits after a gap.
                self.kills.initiate(
                    message,
                    KillCause.DROP_AT_BLOCK,
                    backward=False,
                    now=now,
                    allow_committed=True,
                )

    # ------------------------------------------------------------------
    # Phase 10: watchdog
    # ------------------------------------------------------------------

    def _watchdog_check(self, now: int) -> None:
        if not self.live:
            self.last_progress = now
            return
        if now - self.last_progress > self.watchdog:
            from ..obs.forensics import build_deadlock_report

            in_flight = sum(
                1 for m in self.injecting if m.phase in _LIVE_PHASES
            )
            report = build_deadlock_report(self, now)
            raise NetworkDeadlockError(
                f"no progress for {self.watchdog} cycles at t={now}: "
                f"{len(self.live)} live messages, {in_flight} injecting "
                f"({self.routing.name} routing, "
                f"{self.protocol.mode.value} protocol)\n"
                + report.format(),
                report=report,
            )
