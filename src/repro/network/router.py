"""Wormhole router: input VC buffers, output ownership, switch state.

A router is mostly passive state; the engine drives the per-cycle phases.
It owns:

* ``in_buffers[port][vc]`` -- the input virtual-channel buffers (link
  ports first, then injection ports, in wiring order),
* ``out_channels[port]`` -- outgoing channels (link ports first, matching
  the topology's ``LinkSpec.port`` numbering, then ejection ports),
* ``out_owner[(port, vc)]`` -- which worm currently holds each output VC
  (wormhole channel ownership), and
* ``claims[(port, vc)]`` -- the input buffer through which the owning
  worm's flits flow, i.e. the switch-allocation requests.

Ownership of a link output VC is released when the worm's tail pops out
of the *downstream* input buffer (not when it leaves this router): the
downstream buffer may still hold flits of the old worm, and a new header
must not be routed into a non-empty buffer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from .buffer import VCBuffer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .channel import Channel
    from .message import Message


class Router:
    """Per-node switching element."""

    def __init__(self, node_id: int, num_vcs: int) -> None:
        if num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        self.node_id = node_id
        self.num_vcs = num_vcs
        self.in_buffers: List[List[VCBuffer]] = []
        self.out_channels: List["Channel"] = []
        self.eject_ports: List[int] = []
        self.num_link_in = 0
        self.num_link_out = 0
        self.out_owner: Dict[Tuple[int, int], "Message"] = {}
        self.claims: Dict[Tuple[int, int], VCBuffer] = {}
        self._rr: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Wiring (builder API)
    # ------------------------------------------------------------------

    def add_input_port(self, buffer_depth: int) -> int:
        """Create a new input port with one buffer per VC; returns index."""
        port = len(self.in_buffers)
        self.in_buffers.append(
            [VCBuffer(self, port, vc, buffer_depth) for vc in range(self.num_vcs)]
        )
        return port

    def add_output_channel(self, channel: "Channel") -> int:
        """Register an outgoing channel; returns its output-port index."""
        port = len(self.out_channels)
        self.out_channels.append(channel)
        channel.src_port = port
        if channel.is_ejection:
            self.eject_ports.append(port)
        return port

    # ------------------------------------------------------------------
    # Output ownership
    # ------------------------------------------------------------------

    def output_free(self, port: int, vc: int) -> bool:
        return (port, vc) not in self.out_owner

    def claim_output(
        self, port: int, vc: int, buffer: VCBuffer, message: "Message"
    ) -> None:
        key = (port, vc)
        if key in self.out_owner:
            raise RuntimeError(
                f"output {key} at router {self.node_id} already owned by "
                f"message {self.out_owner[key].uid}"
            )
        self.out_owner[key] = message
        self.claims[key] = buffer
        buffer.routed = True
        buffer.out_port = port
        buffer.out_vc = vc

    def release_output(self, port: int, vc: int) -> None:
        """Drop ownership of an output VC (idempotent: kills may race
        the normal tail release)."""
        key = (port, vc)
        self.out_owner.pop(key, None)
        self.claims.pop(key, None)

    def release_output_if(
        self, port: int, vc: int, message: "Message"
    ) -> None:
        """Release an output VC only if ``message`` still owns it.

        Kill wavefronts release claims segment by segment while new worms
        may already be claiming the freed resources; the ownership check
        prevents a flush from evicting a newcomer.
        """
        key = (port, vc)
        if self.out_owner.get(key) is message:
            del self.out_owner[key]
            self.claims.pop(key, None)

    def retire_claim(self, port: int, vc: int) -> None:
        """Stop switching through an output whose tail has left this
        router, while keeping ownership until the downstream buffer
        drains (a new header must not enter a non-empty buffer)."""
        self.claims.pop((port, vc), None)

    # ------------------------------------------------------------------
    # Switch arbitration helper
    # ------------------------------------------------------------------

    def rotate(self, port: int, count: int) -> int:
        """Round-robin pointer for output ``port`` over ``count`` requests."""
        idx = self._rr.get(port, 0) % count
        self._rr[port] = idx + 1
        return idx

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Router({self.node_id}, ports={len(self.in_buffers)}in/"
            f"{len(self.out_channels)}out, claims={len(self.claims)})"
        )
