"""Input virtual-channel buffer: the unit of wormhole resource ownership.

Every router input port owns ``num_vcs`` of these.  A worm acquires a
VCBuffer when its header is routed into it and holds it until the tail
passes (or a kill wavefront flushes it).  The buffer also records the
state the switch allocator needs: which (output port, output VC) the worm
holds at this router, and when a flit last advanced (for the path-wide
timeout ablation).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .channel import Channel
    from .flit import Flit
    from .message import Message
    from .router import Router


class VCBuffer:
    """A FIFO flit buffer on one virtual channel of a router input port."""

    __slots__ = (
        "router",
        "port",
        "vc",
        "depth",
        "fifo",
        "incoming",
        "feeder",
        "owner",
        "out_port",
        "out_vc",
        "routed",
        "last_advance",
        "route_stall_since",
    )

    def __init__(self, router: "Router", port: int, vc: int, depth: int) -> None:
        if depth < 1:
            raise ValueError("buffer depth must be >= 1")
        self.router = router
        self.port = port
        self.vc = vc
        self.depth = depth
        self.fifo: Deque["Flit"] = deque()
        self.incoming: List[Tuple[int, "Flit"]] = []
        self.feeder: Optional["Channel"] = None
        self.owner: Optional["Message"] = None
        self.out_port: Optional[int] = None
        self.out_vc: Optional[int] = None
        self.routed = False
        self.last_advance = 0
        self.route_stall_since: Optional[int] = None

    # ------------------------------------------------------------------
    # Flit movement
    # ------------------------------------------------------------------

    def stage(self, flit: "Flit", arrival: int) -> None:
        """Stage a flit that will become visible at cycle ``arrival``."""
        self.incoming.append((arrival, flit))

    def merge_incoming(self, now: int) -> List["Flit"]:
        """Move staged flits whose arrival time has come into the FIFO.

        Returns the flits that arrived this cycle (the engine uses this
        to attach worm segments and detect corrupted headers).
        """
        if not self.incoming:
            return []
        arrived = [f for (t, f) in self.incoming if t <= now]
        if not arrived:
            return []
        self.incoming = [(t, f) for (t, f) in self.incoming if t > now]
        self.fifo.extend(arrived)
        return arrived

    def head(self) -> Optional["Flit"]:
        """The flit available for forwarding this cycle, if any."""
        if self.fifo:
            return self.fifo[0]
        return None

    def pop(self, now: int) -> "Flit":
        """Remove and return the head flit, crediting the feeder."""
        flit = self.fifo.popleft()
        self.last_advance = now
        if self.feeder is not None:
            self.feeder.return_credit(self.vc, now)
        return flit

    # ------------------------------------------------------------------
    # Worm ownership
    # ------------------------------------------------------------------

    def acquire(self, message: "Message", now: int = 0) -> None:
        """Bind this buffer to a worm (header has been routed into it).

        ``now`` seeds the local-progress clock used by the path-wide
        timeout ablation.
        """
        if self.owner is not None:
            raise RuntimeError(
                f"buffer {self!r} already owned by msg {self.owner.uid}"
            )
        self.owner = message
        self.routed = False
        self.out_port = None
        self.out_vc = None
        self.route_stall_since = None
        self.last_advance = now

    def release(self) -> None:
        """Unbind after the tail has been forwarded (or a flush)."""
        self.owner = None
        self.routed = False
        self.out_port = None
        self.out_vc = None
        self.route_stall_since = None

    def flush_owner(self, now: int) -> int:
        """Drop every flit of the owning worm and release the buffer.

        Used by kill wavefronts.  Credits for dropped flits are returned
        to the feeder so the upstream sender's view stays consistent.
        Returns the number of flits dropped.
        """
        dropped = len(self.fifo)
        if self.feeder is not None:
            for _ in range(dropped):
                self.feeder.return_credit(self.vc, now)
        self.fifo.clear()
        # In-flight flits headed here also die with the worm.
        stale = len(self.incoming)
        if stale:
            if self.feeder is not None:
                for _ in range(stale):
                    self.feeder.return_credit(self.vc, now)
            self.incoming.clear()
            dropped += stale
        self.release()
        return dropped

    @property
    def occupancy(self) -> int:
        """Flits visible plus in flight toward this buffer."""
        return len(self.fifo) + len(self.incoming)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        own = self.owner.uid if self.owner is not None else None
        return (
            f"VCBuffer(r={self.router.node_id}, port={self.port}, "
            f"vc={self.vc}, occ={self.occupancy}/{self.depth}, owner={own})"
        )
