"""Drop-in fast engine: identical protocol behaviour, far fewer cycles.

``FastEngine`` is a second implementation of :class:`Engine` selected
via ``SimConfig(engine="fast")``.  It produces *flit-for-flit identical*
runs — same events, same reports, same RNG draw sequence — by running
the exact same per-cycle phase functions as the reference engine, but
only where work can exist:

* **Batched credit processing.**  Channels built as
  :class:`LedgerChannel` register every scheduled credit return in a
  shared :class:`CreditLedger` bucketed by due cycle, so each cycle
  ticks only the channels with a credit maturing *now* instead of
  sweeping every channel in the network.  The ledger also maintains a
  struct-of-arrays mirror (per-channel pending counts and earliest due
  cycles, numpy-backed when available) used by the differential
  equivalence snapshots and the benchmarks.

* **Activity sets.**  Receivers, injectors, and switch stages are only
  visited for nodes that can actually do something (staged arrivals,
  queued or streaming messages, live output claims).  Inactive
  components are exactly the ones whose reference-phase calls are
  no-ops that draw no randomness, so pruning them cannot change the
  run.

* **Precomputed routing relations.**  :class:`RoutingTable` memoises
  ``routing.candidates`` under keys that capture every message-state
  input of the relation (destination, DOR lane/dateline state,
  exhausted misroute budgets), falling back to live calls for
  relations that read live network state.  The cached tiers are the
  real function's own output, so there is no re-implementation to
  drift.

* **Event skipping.**  When the network is quiescent — no arrivals
  staged, no kill wavefronts, no worms in flight, every queued message
  parked behind a retransmission gap — the clock jumps directly to the
  next cycle where anything can happen: the earliest retransmission,
  trace arrival, scheduled fault, sampler/checker boundary, or the
  watchdog horizon.  While a stochastic generator is active the engine
  instead runs a *paced* loop that performs only the generator draws
  (exactly the reference RNG sequence) until a message is admitted.

Configurations the fast path cannot accelerate faithfully — PCS probe
circuits, the software-retry reliability layer, or networks built
without :class:`LedgerChannel` — transparently fall back to the
reference ``Engine.step`` per cycle, so ``engine="fast"`` is always
safe to request.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

try:  # pragma: no cover - exercised implicitly on both kinds of host
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback
    _np = None

from ..core.kill import KillManager
from ..core.protocol import KillCause, ProtocolMode
from ..faults.cascading import LoadDependentFaults
from ..faults.model import CompositeFaultModel, FaultModel
from ..faults.permanent import PermanentFaultSchedule
from ..routing.base import Candidate
from ..routing.dor import DimensionOrder
from ..routing.minimal_adaptive import MinimalAdaptive
from ..routing.misrouting import MisroutingAdaptive
from ..traffic.generator import TrafficGenerator
from ..traffic.trace import TraceReplayGenerator
from .channel import Channel
from .engine import Engine, _LIVE_PHASES
from .flit import Flit, FlitKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.node import Node
    from ..network.buffer import VCBuffer
    from ..network.message import Message
    from ..network.router import Router

_INF = float("inf")
_HEAD = FlitKind.HEAD
_BODY = FlitKind.BODY
_PAD = FlitKind.PAD


class LedgerChannel(Channel):
    """A channel that reports scheduled credit returns to a ledger.

    Behaviourally identical to :class:`Channel`; the only addition is
    that ``return_credit`` registers the due cycle with the engine's
    :class:`CreditLedger` so the fast path can tick exactly the
    channels with credits maturing on a given cycle.
    """

    __slots__ = ("ledger",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ledger: Optional["CreditLedger"] = None

    def return_credit(self, vc: int, now: int) -> None:
        due = now + self.latency
        self._pending.append((due, vc))
        if self.ledger is not None:
            self.ledger.register(due, self)


class CreditLedger:
    """Credit returns bucketed by due cycle.

    ``drain(now)`` ticks only the channels holding a credit due at
    ``now`` — the engine never sweeps the full channel list.
    ``drain_range(upto)`` settles a skipped span in one call;
    ``forget(upto)`` discards buckets already settled by a reference
    full-sweep step (fallback mode) so they cannot accumulate.

    The hot path keeps nothing but the buckets; the struct-of-arrays
    view (:meth:`soa`) is materialised on demand for snapshots and
    benchmarks, never per credit.
    """

    def __init__(self, channels: List[Channel]) -> None:
        self.channels = list(channels)
        self._buckets: Dict[int, List[Channel]] = {}

    def register(self, due: int, channel: Channel) -> None:
        bucket = self._buckets.get(due)
        if bucket is None:
            self._buckets[due] = [channel]
        else:
            bucket.append(channel)

    def drain(self, now: int) -> None:
        """Release the credits due exactly at ``now``."""
        bucket = self._buckets.pop(now, None)
        if not bucket:
            return
        if len(bucket) > 1:
            bucket = dict.fromkeys(bucket)
        for channel in bucket:
            pending = channel._pending
            if pending and pending[-1][0] <= now:
                # Due cycles are appended in nondecreasing order, so a
                # due last entry means the whole list is due: bulk-
                # release without rebuilding (what tick() would leave).
                credits = channel.credits
                for _, vc in pending:
                    credits[vc] += 1
                pending.clear()
            else:
                channel.tick(now)

    def drain_range(self, upto: int) -> None:
        """Release every credit due at or before ``upto`` (skip close)."""
        due_cycles = [due for due in self._buckets if due <= upto]
        if not due_cycles:
            return
        touched: Dict[int, Channel] = {}
        for due in due_cycles:
            for channel in self._buckets.pop(due):
                touched[id(channel)] = channel
        for channel in touched.values():
            channel.tick(upto)

    def forget(self, upto: int) -> None:
        """Drop buckets settled elsewhere (reference full-sweep steps)."""
        for due in [due for due in self._buckets if due <= upto]:
            del self._buckets[due]

    def soa(self):
        """Per-channel (pending_count, earliest_due) arrays, on demand.

        numpy int64 arrays when numpy is importable, plain lists
        otherwise; ``earliest_due`` is -1 for channels with no credit
        in flight.
        """
        counts = [len(ch._pending) for ch in self.channels]
        earliest = [
            min(due for due, _ in ch._pending) if ch._pending else -1
            for ch in self.channels
        ]
        if _np is not None:
            return (
                _np.array(counts, dtype=_np.int64),
                _np.array(earliest, dtype=_np.int64),
            )
        return counts, earliest


def channel_state(engine: Engine):
    """A struct-of-arrays snapshot of all channel state for an engine.

    Returns ``{"credits", "flits_carried", "pending"}``; each value is
    a numpy array when numpy is available (credits as an
    ``(n_channels, max_vcs)`` matrix padded with -1), otherwise nested
    lists.  Two runs are channel-state identical iff the snapshots
    compare equal — the flat form the differential tests diff without
    walking object graphs.
    """
    channels = engine._all_channels
    n = len(channels)
    max_vcs = max(ch.num_vcs for ch in channels) if channels else 0
    credits_rows = [
        list(ch.credits) + [-1] * (max_vcs - ch.num_vcs) for ch in channels
    ]
    carried = [ch.flits_carried for ch in channels]
    pending = [len(ch._pending) for ch in channels]
    if _np is not None:
        return {
            "credits": _np.array(credits_rows, dtype=_np.int64).reshape(
                n, max_vcs
            ),
            "flits_carried": _np.array(carried, dtype=_np.int64),
            "pending": _np.array(pending, dtype=_np.int64),
        }
    return {
        "credits": credits_rows,
        "flits_carried": carried,
        "pending": pending,
    }


class RoutingTable:
    """Memoised routing relation lookups for the known-pure relations.

    Caches the *actual output* of ``routing.candidates`` under keys
    that capture every message-dependent input of the relation:

    * minimal adaptive (and its naive twin): ``(node, dst)``;
    * dimension-order: ``(node, dst, lane)`` plus the dateline state
      when dateline VCs are in play;
    * misrouting-adaptive with an exhausted budget: ``(node, dst)``
      (the relation then reduces to minimal); with budget remaining it
      reads live channel-death state, so those calls stay live.

    Any other relation — or a routing object whose ``candidates`` has
    been instance-patched (the mutation harness does this) — is called
    live every time.  Kind detection is deferred to the first lookup so
    patches applied after construction are honoured.
    """

    __slots__ = ("routing", "_kind", "_resolved", "_cache")

    def __init__(self, routing) -> None:
        self.routing = routing
        self._kind = "live"
        self._resolved = False
        self._cache: Dict[tuple, List[List[Candidate]]] = {}

    def _resolve(self) -> None:
        routing = self.routing
        kind = "live"
        if "candidates" not in vars(routing):
            impl = type(routing).candidates
            if impl is MisroutingAdaptive.candidates:
                kind = "misroute"
            elif impl is MinimalAdaptive.candidates:
                kind = "minimal"
            elif impl is DimensionOrder.candidates:
                kind = "dor"
        self._kind = kind
        self._resolved = True

    def candidates(
        self, router: "Router", message: "Message"
    ) -> List[List[Candidate]]:
        if not self._resolved:
            self._resolve()
        kind = self._kind
        routing = self.routing
        if kind == "minimal":
            key = (router.node_id, message.dst)
        elif kind == "dor":
            lane = message.lane % routing.num_lanes(router.num_vcs)
            if routing.vc_classes == 2:
                key = (
                    router.node_id,
                    message.dst,
                    lane,
                    message.dor_dim,
                    message.dateline_bit,
                )
            else:
                key = (router.node_id, message.dst, lane)
        elif kind == "misroute":
            if message.misroutes_used < message.misroute_budget:
                # Budget remaining: the detour tier depends on live
                # channel-death state, so ask the relation directly.
                return routing.candidates(router, message)
            key = (router.node_id, message.dst)
        else:
            return routing.candidates(router, message)
        tiers = self._cache.get(key)
        if tiers is None:
            tiers = routing.candidates(router, message)
            self._cache[key] = tiers
        return tiers


class _FastKillManager(KillManager):
    """KillManager that re-activates a node when a retry is requeued.

    A completed kill wavefront appends the message back onto its source
    node's queue without going through ``Engine.admit``, which is the
    fast engine's only other wake-up point for injection activity.
    """

    def _complete(self, message: "Message", now: int) -> None:
        super()._complete(message, now)
        self.engine._active_inj.add(message.src)


class FastEngine(Engine):
    """Event-skipping engine, flit-for-flit identical to :class:`Engine`.

    All protocol components (injectors, receivers, kill manager,
    routers, channels) are the reference implementations; this class
    only reorganises *when* their per-cycle hooks run.  See the module
    docstring for the mechanisms and their exactness arguments.
    """

    def __init__(self, network, **kwargs) -> None:
        super().__init__(network, **kwargs)
        # Same construction-time state, plus a kill manager that wakes
        # the source node when a killed message is requeued.
        self.kills = _FastKillManager(self)
        self._table = RoutingTable(self.routing)
        self._eject_cache: Dict[int, List[List[Candidate]]] = {}
        self.credit_ledger = CreditLedger(self._all_channels)
        fast_ok = True
        for chan in self._all_channels:
            if isinstance(chan, LedgerChannel):
                chan.ledger = self.credit_ledger
            else:
                fast_ok = False
        #: True when every channel reports credits to the ledger; the
        #: fast per-cycle path and event skipping require it.
        self._fast_ok = fast_ok
        # Direct handles on the ledger buckets and the OrderedSet
        # backing dicts for the inlined transfer/injection pipelines.
        self._credit_buckets = self.credit_ledger._buckets
        self._arrival_items = self._arrival_buffers._items
        self._route_items = self.route_pending._items
        self._in_run = False
        self._active_recv: Set[int] = set()
        self._active_inj: Set[int] = set()
        self._active_switch: Set[int] = set()
        #: cycles elided by event skipping (diagnostics / benchmarks).
        self.cycles_skipped = 0

    # ------------------------------------------------------------------
    # Activity bookkeeping
    # ------------------------------------------------------------------

    def _seed_active(self) -> None:
        """Rescan engine state into the activity sets.

        Called on entry to ``run``/``run_until_drained`` and before any
        externally driven ``step()``, so state planted between runs
        (tests enqueue messages by hand) is picked up.
        """
        self._active_recv = {
            node.node_id for node in self.nodes if node.receiver.staging
        }
        self._active_switch = {
            router.node_id for router in self.routers if router.claims
        }
        active_inj = set()
        for node in self.nodes:
            if node.queue or any(
                injector.current is not None for injector in node.injectors
            ):
                active_inj.add(node.node_id)
        self._active_inj = active_inj

    def admit(self, message: "Message") -> bool:
        admitted = Engine.admit(self, message)
        if admitted:
            self._active_inj.add(message.src)
        return admitted

    def _transfer(self, router, port: int, vc: int, buffer, now: int) -> None:
        Engine._transfer(self, router, port, vc, buffer, now)
        if router.out_channels[port].is_ejection:
            self._active_recv.add(router.node_id)

    # ------------------------------------------------------------------
    # Arrivals: inlined single-flit merge (the overwhelmingly common
    # case with unit channel latency)
    # ------------------------------------------------------------------

    def _merge_arrivals(self, now: int) -> None:
        buffers = self._arrival_buffers
        if not buffers:
            return
        fcr = self.protocol.mode is ProtocolMode.FCR
        route_items = self._route_items
        done = []
        for buffer in buffers:
            incoming = buffer.incoming
            if len(incoming) == 1:
                # The overwhelmingly common case with unit latency:
                # one flit, due now, head handling fully specialised.
                due, flit = incoming[0]
                if due > now:
                    continue
                del incoming[0]
                buffer.fifo.append(flit)
                self.last_progress = now
                if flit.kind is _HEAD:
                    message = flit.message
                    if message.phase in _LIVE_PHASES:
                        if fcr and flit.corrupted:
                            self.kills.initiate(
                                message,
                                KillCause.HEADER_FAULT,
                                backward=True,
                                now=now,
                            )
                        else:
                            route_items[buffer] = None
                done.append(buffer)
                continue
            arrived = buffer.merge_incoming(now)
            if arrived:
                self.last_progress = now
                for flit in arrived:
                    if flit.kind is not _HEAD:
                        continue
                    message = flit.message
                    if message.phase not in _LIVE_PHASES:
                        continue
                    if fcr and flit.corrupted:
                        self.kills.initiate(
                            message,
                            KillCause.HEADER_FAULT,
                            backward=True,
                            now=now,
                        )
                    else:
                        route_items[buffer] = None
            if not buffer.incoming:
                done.append(buffer)
        items = self._arrival_items
        for buffer in done:
            del items[buffer]

    # ------------------------------------------------------------------
    # Routing: memoised relation, same grant logic
    # ------------------------------------------------------------------

    def _route_headers(self, now: int) -> None:
        # Reference body with the head()/is_head calls and OrderedSet
        # discards inlined; the shuffle draw is unchanged.
        route_items = self._route_items
        if not route_items:
            return
        pending = list(route_items)
        if len(pending) > 1:
            self.rng.shuffle(pending)
        pop = route_items.pop
        for buffer in pending:
            fifo = buffer.fifo
            head = fifo[0] if fifo else None
            if head is None or head.kind is not _HEAD:
                pop(buffer, None)
                continue
            if buffer.routed:
                # Already holds an output (a PCS probe reserved it, or
                # a stale queue entry): nothing to allocate.
                pop(buffer, None)
                continue
            message = head.message
            if message.phase not in _LIVE_PHASES:
                pop(buffer, None)
                continue
            if self._grant(buffer, message):
                buffer.route_stall_since = None
                pop(buffer, None)
            elif buffer.route_stall_since is None:
                buffer.route_stall_since = now

    def _grant(self, buffer: "VCBuffer", message: "Message") -> bool:
        router = buffer.router
        if router.node_id == message.dst:
            tiers = self._eject_cache.get(router.node_id)
            if tiers is None:
                tiers = [[Candidate(port, 0) for port in router.eject_ports]]
                self._eject_cache[router.node_id] = tiers
        else:
            tiers = self._table.candidates(router, message)
        out_owner = router.out_owner
        out_channels = router.out_channels
        for tier in tiers:
            free = [
                cand
                for cand in tier
                if (cand.port, cand.vc) not in out_owner
                and not out_channels[cand.port].dead
            ]
            if not free:
                continue
            choice = self.selection.pick(free, router, message, self.rng)
            router.claim_output(choice.port, choice.vc, buffer, message)
            self._active_switch.add(router.node_id)
            if choice.is_escape:
                message.escape_hops += 1
                message.used_escape = True
                self.stats.on_escape_grant(message)
            if choice.is_misroute:
                message.misroutes_used += 1
                self.stats.counters["misroute_hops"] += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Switch: only routers holding claims
    # ------------------------------------------------------------------

    def _switch(self, now: int) -> None:
        if self.pcs is not None:
            # PCS probes create claims outside _grant; the activity set
            # cannot see them, so run the reference full sweep.
            Engine._switch(self, now)
            return
        active = self._active_switch
        if not active:
            return
        # The inlined transfer pipeline is legal only while _transfer
        # has not been instance-patched (the mutation harness wraps it
        # to plant credit bugs) and every channel reports to the ledger.
        inline = self._fast_ok and "_transfer" not in vars(self)
        transfer = self._transfer_fast if inline else self._transfer
        routers = self.routers
        # Ascending node id matches the reference router order; routers
        # outside the set hold no claims, so the reference loop skips
        # them with zero side effects.
        for node_id in sorted(active):
            router = routers[node_id]
            claims = router.claims
            if not claims:
                active.discard(node_id)
                continue
            out_channels = router.out_channels
            rr = router._rr
            if len(claims) == 1:
                # One claim: arbitration is trivial, skip the grouping
                # machinery (the round-robin pointer still advances
                # exactly as the reference's rotate(port, 1) would).
                ((port, vc), buffer), = claims.items()
                if not buffer.fifo:
                    continue
                owner = buffer.owner
                if owner is None or owner.phase not in _LIVE_PHASES:
                    continue
                channel = out_channels[port]
                if channel.dead or channel.credits[vc] <= 0:
                    continue
                rr[port] = 1  # rotate(port, 1): index 0, pointer -> 1
                transfer(router, port, vc, buffer, now)
                continue
            # Claims are keyed (port, vc) and an output VC is claimed
            # by at most one input, so sorting the items gives exactly
            # the reference's per-port arbitration order: ports
            # ascending, and within a port the entries already sorted
            # by the deterministic (vc, in_port, in_vc) tie-break (vc
            # alone is unique per port).  One pass with a flush on
            # port change replaces the by_port dict + per-port sort;
            # each port's winner lands in used_inputs before the next
            # port's entries are filtered, as in the reference.
            used_inputs: Set[int] = set()
            entries: List = []
            cur_port = -1
            for (port, vc), buffer in sorted(claims.items()):
                if port != cur_port:
                    if entries:
                        count = len(entries)
                        idx = rr.get(cur_port, 0) % count
                        rr[cur_port] = idx + 1
                        won_vc, won = entries[idx]
                        used_inputs.add(won.port)
                        transfer(router, cur_port, won_vc, won, now)
                        entries = []
                    cur_port = port
                if not buffer.fifo:
                    continue
                owner = buffer.owner
                if owner is None or owner.phase not in _LIVE_PHASES:
                    continue
                channel = out_channels[port]
                if channel.dead or channel.credits[vc] <= 0:
                    continue
                if buffer.port in used_inputs:
                    continue
                entries.append((vc, buffer))
            if entries:
                count = len(entries)
                idx = rr.get(cur_port, 0) % count
                rr[cur_port] = idx + 1
                won_vc, won = entries[idx]
                transfer(router, cur_port, won_vc, won, now)

    def _transfer_fast(
        self, router, port: int, vc: int, buffer, now: int
    ) -> None:
        """Inlined ``Engine._transfer`` + ``VCBuffer.pop`` + ``Channel.send``.

        Flattens the per-flit call chain (pop → return_credit → send →
        stage → note_arrival → mark_progress) into one frame.  Used
        only when ``_transfer`` is unpatched and PCS is off; every
        branch below mirrors the reference methods line for line, so
        the two paths are observationally identical.
        """
        # VCBuffer.pop
        flit = buffer.fifo.popleft()
        buffer.last_advance = now
        feeder = buffer.feeder
        if feeder is not None:
            # LedgerChannel.return_credit
            due = now + feeder.latency
            feeder._pending.append((due, buffer.vc))
            buckets = self._credit_buckets
            bucket = buckets.get(due)
            if bucket is None:
                buckets[due] = [feeder]
            else:
                bucket.append(feeder)
        message = flit.message
        channel = router.out_channels[port]
        is_ejection = channel.is_ejection
        fault_model = self.fault_model
        if (
            fault_model is not None
            and not is_ejection
            and not channel.is_injection
            and fault_model.corrupt(flit, channel, self.rng)
        ):
            flit.corrupted = True
            self.stats.on_fault_injected()
            if self.bus is not None:
                from ..obs.events import FaultActivated

                self.bus.emit(FaultActivated(
                    now, "transient", channel.src_node, channel.dst_node,
                    uid=message.uid,
                ))
        # Channel.send (credits checked by can_send in _switch)
        channel.credits[vc] -= 1
        channel.flits_carried += 1
        if is_ejection:
            self.nodes[router.node_id].receiver.stage(
                flit, now + channel.latency, channel
            )
            self._active_recv.add(router.node_id)
        else:
            sink = channel.sinks[vc]
            # VCBuffer.stage + Engine.note_arrival
            sink.incoming.append((now + channel.latency, flit))
            self._arrival_items[sink] = None
            if flit.kind is _HEAD:
                self.routing.on_header_hop(message, channel)
                sink.acquire(message, now)
                message.segments.append(sink)
        if flit.is_tail:
            buffer.release()
            if feeder is not None and not feeder.is_injection:
                self.routers[feeder.src_node].release_output_if(
                    feeder.src_port, buffer.vc, message
                )
            message.tail_seg += 1
            if is_ejection:
                router.release_output(port, vc)
            else:
                router.retire_claim(port, vc)
        self.last_progress = now

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self) -> None:
        if not self._in_run:
            self._seed_active()
        self._step_once()

    def _step_once(self) -> None:
        fallback = (
            not self._fast_ok
            or self.pcs is not None
            or self.reliability is not None
        )
        if self.profiler is not None:
            if fallback:
                Engine._step_profiled(self)
                self.credit_ledger.forget(self.now - 1)
            else:
                self._fast_step_profiled()
            return
        if fallback:
            Engine.step(self)
            self.credit_ledger.forget(self.now - 1)
            return
        self._fast_step()

    def _step_injectors(self, now: int) -> None:
        active = self._active_inj
        if not active:
            return
        stats = self.stats
        arrival_items = self._arrival_items
        # Ascending node id matches the reference node order; inactive
        # nodes (empty queue, idle injectors) step to a no-op there and
        # draw no randomness.
        for node_id in sorted(active):
            node = self.nodes[node_id]
            busy = False
            for injector in node.injectors:
                if injector.current is None:
                    injector._try_start(now)
                message = injector.current
                if message is None:
                    continue
                if "_try_send" in injector.__dict__:
                    # Instance-patched send (test harnesses): dispatch
                    # through the patch, exactly like Injector.step.
                    injector._try_send(now)
                    if injector.current is not None:
                        busy = True
                    continue
                # Inlined Injector._try_send, non-PCS streaming path
                # (_step_injectors only runs when self.pcs is None).
                channel = injector.channel
                vc = injector.vc
                if channel.dead or channel.credits[vc] <= 0:
                    injector.stall += 1
                    stats.on_injection_stall()
                    if injector.stall == 1 and self.bus is not None:
                        from ..obs.events import InjectionStalled

                        self.bus.emit(
                            InjectionStalled(now, message.uid, message.src)
                        )
                    injector._check_timeout(message, now)
                    if injector.current is not None:
                        busy = True
                    continue
                index = injector.next_index
                if index == 0:
                    kind = _HEAD
                elif index < message.payload_length:
                    kind = _BODY
                else:
                    kind = _PAD
                is_tail = index == message.wire_length - 1
                flit = Flit(message, kind, index, is_tail=is_tail)
                # Channel.send (can_send just checked above)
                channel.credits[vc] -= 1
                channel.flits_carried += 1
                sink = channel.sinks[vc]
                sink.incoming.append((now + channel.latency, flit))
                arrival_items[sink] = None  # Engine.note_arrival
                if index == 0:
                    sink.acquire(message, now)
                    message.segments.append(sink)
                if kind is _PAD:
                    message.pad_flits_sent += 1
                    stats.on_flit_injected(True)
                else:
                    stats.on_flit_injected(False)
                message.flits_injected += 1
                self.last_progress = now
                injector.stall = 0
                injector.next_index = index + 1
                if is_tail:
                    injector._commit(message, now)
                else:
                    busy = True
            if not busy and not node.queue:
                active.discard(node_id)

    def _process_receivers(self, now: int) -> None:
        recv = self._active_recv
        if not recv:
            return
        stats = self.stats
        checker = self.checker
        buckets = self._credit_buckets
        for node_id in sorted(recv):
            receiver = self.nodes[node_id].receiver
            if "process" in receiver.__dict__:
                # Instance-patched process (the mutation harness plants
                # ejection bugs here): dispatch through the patch.
                receiver.process(now)
                if not receiver.staging:
                    recv.discard(node_id)
                continue
            # Inlined Receiver.process.  Arrival stamps are appended in
            # nondecreasing order, so the common all-ready case is a
            # whole-list take with no rebuild.
            staging = receiver.staging
            if staging and staging[0][0] <= now:
                if staging[-1][0] <= now:
                    ready = staging
                    receiver.staging = []
                else:
                    ready = [e for e in staging if e[0] <= now]
                    receiver.staging = [e for e in staging if e[0] > now]
                stats.on_flits_ejected(len(ready))
                for _, flit, channel in ready:
                    # LedgerChannel.return_credit(0, now); _fast_ok
                    # guarantees every channel reports to the ledger.
                    due = now + channel.latency
                    channel._pending.append((due, 0))
                    bucket = buckets.get(due)
                    if bucket is None:
                        buckets[due] = [channel]
                    else:
                        bucket.append(channel)
                    # _consume is a no-op for an uncorrupted non-head
                    # non-tail flit of a live message (the bulk of a
                    # worm) — skip the call for exactly that case.
                    if (
                        flit.is_tail
                        or flit.corrupted
                        or flit.kind is _HEAD
                        or flit.message.phase not in _LIVE_PHASES
                    ):
                        receiver._consume(flit, now)
                if checker is not None:
                    checker.on_flits_consumed(len(ready))
                self.last_progress = now
            if not receiver.staging:
                recv.discard(node_id)

    def _fast_step(self) -> None:
        now = self.now
        self.credit_ledger.drain(now)
        if self.fault_model is not None:
            self.fault_model.on_cycle(now, self.network)
        self._merge_arrivals(now)
        self._process_receivers(now)
        self.kills.advance(now)
        if self.generator is not None:
            self.generator.tick(self, now)
        self._step_injectors(now)
        self._route_headers(now)
        self._switch(now)
        self._path_wide_monitor(now)
        self._drop_at_block_monitor(now)
        self._watchdog_check(now)
        if self.sampler is not None:
            self.sampler.on_cycle(now)
        if self.checker is not None:
            self.checker.on_cycle_end(now)
        self.now = now + 1

    def _fast_step_profiled(self) -> None:
        # Timed copy of _fast_step (mirrors Engine._step_profiled's
        # discipline: identical order and side effects, phases
        # bracketed with perf_counter_ns).
        clock = perf_counter_ns
        phases = self.profiler.phases
        now = self.now
        step_start = clock()

        t0 = clock()
        self.credit_ledger.drain(now)
        phases["credit"].record(clock() - t0)

        if self.fault_model is not None:
            t0 = clock()
            self.fault_model.on_cycle(now, self.network)
            phases["fault"].record(clock() - t0)

        t0 = clock()
        self._merge_arrivals(now)
        phases["arrival"].record(clock() - t0)

        t0 = clock()
        self._process_receivers(now)
        phases["ejection"].record(clock() - t0)

        t0 = clock()
        self.kills.advance(now)
        phases["kill"].record(clock() - t0)

        if self.generator is not None:
            t0 = clock()
            self.generator.tick(self, now)
            phases["traffic"].record(clock() - t0)

        t0 = clock()
        self._step_injectors(now)
        phases["injection"].record(clock() - t0)

        t0 = clock()
        self._route_headers(now)
        phases["routing"].record(clock() - t0)

        t0 = clock()
        self._switch(now)
        phases["switch"].record(clock() - t0)

        t0 = clock()
        self._path_wide_monitor(now)
        self._drop_at_block_monitor(now)
        self._watchdog_check(now)
        phases["monitor"].record(clock() - t0)

        if self.sampler is not None:
            t0 = clock()
            self.sampler.on_cycle(now)
            phases["sampler"].record(clock() - t0)

        if self.checker is not None:
            t0 = clock()
            self.checker.on_cycle_end(now)
            phases["checker"].record(clock() - t0)

        self.now = now + 1
        self.profiler.on_step_end(now, clock() - step_start)

    # ------------------------------------------------------------------
    # Main loops with event skipping
    # ------------------------------------------------------------------

    def run(self, cycles: int) -> None:
        self._seed_active()
        self._in_run = True
        try:
            remaining = cycles
            while remaining > 0:
                skipped = self._try_skip(remaining)
                if skipped:
                    remaining -= skipped
                    continue
                self._step_once()
                remaining -= 1
        finally:
            self._in_run = False

    def run_until_drained(self, max_cycles: int) -> bool:
        generator = self.generator
        replaying = getattr(generator, "exhausted", None) is False
        if not replaying:
            self.generator = None
        self._seed_active()
        self._in_run = True
        try:
            remaining = max_cycles
            while remaining > 0:
                if self._drained():
                    return True
                skipped = self._try_skip(remaining)
                if skipped:
                    remaining -= skipped
                    continue
                self._step_once()
                remaining -= 1
            return self._drained()
        finally:
            self._in_run = False
            self.generator = generator

    # ------------------------------------------------------------------
    # Event skipping
    # ------------------------------------------------------------------

    def _try_skip(self, limit: int) -> int:
        """Skip to the next cycle where anything can happen.

        Returns the number of cycles elided (0 when the network is not
        quiescent, a cap lands on the current cycle, or the
        configuration requires the reference fallback).  Every phase of
        a skipped reference cycle is provably a no-op that draws no
        randomness; see the individual conditions.
        """
        if (
            not self._fast_ok
            or self.pcs is not None
            or self.reliability is not None
        ):
            return 0
        if (
            self.kills.dying
            or self._arrival_buffers
            or self.route_pending
            or self.in_flight
            or self.injecting
        ):
            return 0
        # Receivers: any staged flit (even a future arrival) keeps the
        # per-cycle loop running.
        recv = self._active_recv
        if recv:
            for node_id in sorted(recv):
                if self.nodes[node_id].receiver.staging:
                    return 0
                recv.discard(node_id)
        # Switch: a surviving output claim means a worm still owns
        # resources somewhere.
        switch = self._active_switch
        if switch:
            for node_id in sorted(switch):
                if self.routers[node_id].claims:
                    return 0
                switch.discard(node_id)
        now = self.now
        # Injection: every active node must be parked — no streaming
        # injector, nothing startable before a known wake cycle.
        wake = _INF
        inj = self._active_inj
        if inj:
            for node_id in sorted(inj):
                node = self.nodes[node_id]
                if any(
                    injector.current is not None
                    for injector in node.injectors
                ):
                    return 0
                if not node.queue:
                    inj.discard(node_id)
                    continue
                node_wake = self._node_wake(node, now)
                if node_wake <= now:
                    return 0
                if node_wake < wake:
                    wake = node_wake
        # Traffic generation.
        paced = False
        trace_next = _INF
        generator = self.generator
        if generator is not None:
            kind = type(generator)
            if kind is TrafficGenerator:
                if generator.message_rate > 0.0 and (
                    generator.stop_at is None or now < generator.stop_at
                ):
                    paced = True
            elif kind is TraceReplayGenerator:
                if generator._pending:
                    return 0
                entries = generator.trace.entries
                if generator._cursor < len(entries):
                    trace_next = entries[generator._cursor].cycle
            else:
                skip_state = getattr(generator, "skip_state", None)
                if skip_state is None:
                    # Unknown generator: assume it may act on any cycle.
                    return 0
                # Workload protocol: the generator classifies this
                # cycle itself (see WorkloadGenerator.skip_state).
                state, cycle = skip_state(now)
                if state == "busy":
                    return 0
                if state == "paced":
                    paced = True
                elif cycle < trace_next:
                    trace_next = cycle
        fault_next = self._fault_next_event(self.fault_model)
        if fault_next is None:
            return 0
        # The skip target: the earliest cycle any actor, monitor, or
        # periodic hook must observe.  That cycle itself is stepped.
        target = now + limit
        if wake < target:
            target = int(wake)
        if trace_next < target:
            target = int(trace_next)
        if fault_next < target:
            target = int(fault_next)
        if self.live:
            horizon = self.last_progress + self.watchdog + 1
            if horizon < target:
                target = horizon
        sampler = self.sampler
        if sampler is not None:
            boundary = sampler._start + sampler.interval - 1
            if boundary < target:
                target = boundary
        checker = self.checker
        if checker is not None:
            sweep = checker._last_check + checker.config.check_interval
            if sweep < target:
                target = sweep
        if paced:
            if self.profiler is not None:
                # Profiled runs keep per-cycle generator phases timed.
                return 0
            return self._paced_skip(target)
        count = target - now
        if count <= 0:
            return 0
        if self.profiler is not None:
            t0 = perf_counter_ns()
            self._finish_skip(target)
            self.profiler.on_idle(count, perf_counter_ns() - t0)
        else:
            self._finish_skip(target)
        self.cycles_skipped += count
        return count

    def _finish_skip(self, target: int) -> None:
        # Credits maturing inside the span are unobservable (nothing
        # sends, so nobody reads credit counts) — settle them at the
        # last skipped cycle so the target cycle's drain sees only its
        # own bucket.
        self.credit_ledger.drain_range(target - 1)
        if not self.live:
            # The reference watchdog refreshes last_progress on every
            # live-free cycle; mirror its value at the last skipped one.
            self.last_progress = target - 1
        self.now = target

    def _paced_skip(self, target: int) -> int:
        """Advance cycle-by-cycle running only the generator draws.

        Used while a Bernoulli generator is active and the rest of the
        network is quiescent: every other reference phase is a no-op
        (the caps in ``_try_skip`` bound the span), but the generator's
        per-node RNG draws must happen each cycle to keep the stream
        identical.  The first cycle that admits a message finishes as a
        full reference cycle.
        """
        generator = self.generator
        ledger = self.credit_ledger
        count = 0
        cycle = self.now
        while cycle < target:
            self.now = cycle  # admit() stamps stats/events with now
            ledger.drain(cycle)
            before = generator.generated
            generator.tick(self, cycle)
            if generator.generated != before:
                self._post_traffic(cycle)
                self.now = cycle + 1
                self.cycles_skipped += count
                return count + 1
            if not self.live:
                self.last_progress = cycle
            cycle += 1
            count += 1
        self.now = cycle
        self.cycles_skipped += count
        return count

    def _post_traffic(self, now: int) -> None:
        """The reference phases that follow traffic generation."""
        self._step_injectors(now)
        self._route_headers(now)
        self._switch(now)
        self._path_wide_monitor(now)
        self._drop_at_block_monitor(now)
        self._watchdog_check(now)
        if self.sampler is not None:
            self.sampler.on_cycle(now)
        if self.checker is not None:
            self.checker.on_cycle_end(now)

    def _node_wake(self, node: "Node", now: int):
        """When this parked node could next start a message.

        Mirrors ``Injector._try_start``'s scan exactly (window, order
        gate, retransmission gap, lane availability): returns ``now``
        when something could start immediately, the earliest
        retransmission deadline among messages the scan would reach, or
        infinity when only external activity can unblock the node.
        """
        window = self.protocol.injection_scan_window
        gate = node.gate
        wake = _INF
        seen_dsts: Set[int] = set()
        lane_free: Optional[bool] = None
        for index, message in enumerate(node.queue):
            if index >= window:
                break
            if gate.enabled:
                if message.dst in seen_dsts:
                    continue
                seen_dsts.add(message.dst)
            retransmit_at = message.retransmit_at
            if retransmit_at is not None and retransmit_at > now:
                if retransmit_at < wake:
                    wake = retransmit_at
                continue
            if not gate.may_start(message):
                continue
            if lane_free is None:
                lane_free = self._any_free_injection_vc(node)
            if lane_free:
                return now
            # No free injection lane: the reference scan stops here.
            break
        return wake

    @staticmethod
    def _any_free_injection_vc(node: "Node") -> bool:
        for injector in node.injectors:
            for sink in injector.channel.sinks:
                if sink is not None and sink.owner is None:
                    return True
        return False

    def _fault_next_event(self, model: Optional[FaultModel]):
        """Next cycle the fault model acts, inf if never, None if unknown."""
        if model is None:
            return _INF
        cls = type(model)
        if cls.on_cycle is FaultModel.on_cycle:
            # Base no-op hook (NoFaults, TransientFaults, ...): the
            # model only acts per-transfer, and nothing transfers
            # during a skip.
            return _INF
        if cls is PermanentFaultSchedule:
            pending = model.pending
            return pending[0].cycle if pending else _INF
        if cls is CompositeFaultModel:
            nxt = _INF
            for child in model.models:
                child_next = self._fault_next_event(child)
                if child_next is None:
                    return None
                if child_next < nxt:
                    nxt = child_next
            return nxt
        if cls is LoadDependentFaults:
            # Acts only on check_interval boundaries; off-boundary
            # cycles are provable no-ops (see repro.faults.cascading).
            return model.next_event(self.now)
        # Unknown on_cycle override: its hook may act any cycle, so
        # event skipping is off (the fast per-cycle path still runs it).
        return None
