"""Message: the unit of communication handed to the network by a node.

A message is injected as a worm of flits.  Under Compressionless Routing a
message passes through a small state machine (see
:class:`repro.core.protocol.MessagePhase`): it may be killed and
retransmitted several times before it *commits* (tail leaves the source)
and is finally *delivered* (tail consumed at the destination).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, List, Optional

from ..core.protocol import MessagePhase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .buffer import VCBuffer

_uid_counter = itertools.count()


def _next_uid() -> int:
    return next(_uid_counter)


def reset_uid_counter() -> None:
    """Restart message uid numbering (used by tests for determinism)."""
    global _uid_counter
    _uid_counter = itertools.count()


class Message:
    """A point-to-point message.

    Attributes
    ----------
    uid:
        Globally unique integer identity (stable across retransmissions).
    src, dst:
        Source and destination node ids.
    payload_length:
        Number of payload flits, header included (the paper's "message
        length").
    seq:
        Per (src, dst) sequence number, used to check the
        order-preservation guarantee.
    wire_length:
        Total flits of the current transmission attempt (payload plus
        padding); set by the injector at the start of each attempt.
    phase:
        Current protocol phase.
    segments:
        Ordered list of the input-VC buffers the current worm has been
        routed into, source side first.  ``tail_seg`` is the index of the
        first segment the tail has not yet passed; the worm therefore
        occupies ``segments[tail_seg:]``.
    """

    __slots__ = (
        "uid",
        "src",
        "dst",
        "payload_length",
        "seq",
        "wire_length",
        "phase",
        "segments",
        "tail_seg",
        "attempts",
        "kills",
        "fkills",
        "pad_flits_sent",
        "created_at",
        "first_inject_at",
        "inject_start_at",
        "committed_at",
        "delivered_at",
        "header_consumed_at",
        "flits_injected",
        "dateline_bit",
        "dor_dim",
        "lane",
        "escape_hops",
        "used_escape",
        "misroute_budget",
        "misroutes_used",
        "measured",
        "kill_wavefront",
        "kill_reason",
        "kill_history",
        "retransmit_at",
        "app",
        "stream_start_at",
        "probe_tried",
        "probe_wait",
        "probe_backtracks",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        payload_length: int,
        created_at: int = 0,
        seq: int = 0,
    ) -> None:
        if payload_length < 1:
            raise ValueError("payload_length must be >= 1 (the header)")
        if src == dst:
            raise ValueError("source and destination must differ")
        self.uid = _next_uid()
        self.src = src
        self.dst = dst
        self.payload_length = payload_length
        self.seq = seq
        self.wire_length = payload_length
        self.phase = MessagePhase.QUEUED
        self.segments: List["VCBuffer"] = []
        self.tail_seg = 0
        self.attempts = 0
        self.kills = 0
        self.fkills = 0
        self.pad_flits_sent = 0
        self.created_at = created_at
        self.first_inject_at: Optional[int] = None
        self.inject_start_at: Optional[int] = None
        self.committed_at: Optional[int] = None
        self.delivered_at: Optional[int] = None
        self.header_consumed_at: Optional[int] = None
        self.flits_injected = 0
        # Header routing state (mutated as the header advances).
        self.dateline_bit = 0
        self.dor_dim = 0
        self.lane = 0
        # Duato instrumentation: escape-channel usage (PDS estimation).
        self.escape_hops = 0
        self.used_escape = False
        # Misrouting (non-minimal fault-tolerant routing) accounting.
        self.misroute_budget = 0
        self.misroutes_used = 0
        # Statistics bookkeeping.
        self.measured = True
        # Kill bookkeeping.  ``kill_history`` records every kill across
        # attempts as (cycle, cause) and survives begin_attempt resets.
        self.kill_wavefront: Optional[int] = None
        self.kill_reason: Optional[str] = None
        self.kill_history: List[tuple] = []
        self.retransmit_at: Optional[int] = None
        # Application-layer tag (used by the software-retry baseline).
        self.app: Optional[object] = None
        # Pipelined-circuit-switching probe state (PCS baseline).
        self.stream_start_at: Optional[int] = None
        self.probe_tried: dict = {}
        self.probe_wait = 0
        self.probe_backtracks = 0

    # ------------------------------------------------------------------
    # Attempt lifecycle
    # ------------------------------------------------------------------

    def begin_attempt(self, wire_length: int, now: int) -> None:
        """Reset per-attempt state at the start of a transmission."""
        self.wire_length = wire_length
        self.attempts += 1
        self.flits_injected = 0
        self.segments = []
        self.tail_seg = 0
        self.dateline_bit = 0
        self.dor_dim = 0
        self.kill_wavefront = None
        self.kill_reason = None
        self.misroutes_used = 0
        self.phase = MessagePhase.INJECTING
        if self.first_inject_at is None:
            self.first_inject_at = now
        self.inject_start_at = now

    @property
    def pad_length(self) -> int:
        """Number of pad flits in the current attempt."""
        return self.wire_length - self.payload_length

    @property
    def committed(self) -> bool:
        """True once the tail has left the source (no longer killable)."""
        return self.phase in (MessagePhase.COMMITTED, MessagePhase.DELIVERED)

    @property
    def delivered(self) -> bool:
        return self.phase is MessagePhase.DELIVERED

    @property
    def active_segments(self) -> List["VCBuffer"]:
        """Buffers the worm currently occupies (source side first)."""
        return self.segments[self.tail_seg:]

    def total_latency(self) -> Optional[int]:
        """Creation-to-delivery latency, or None if undelivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at

    def network_latency(self) -> Optional[int]:
        """First-injection-to-delivery latency, or None if undelivered."""
        if self.delivered_at is None or self.first_inject_at is None:
            return None
        return self.delivered_at - self.first_inject_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(uid={self.uid}, {self.src}->{self.dst}, "
            f"len={self.payload_length}, phase={self.phase.value})"
        )
