"""Network-interface hardware inventory (paper Section 5).

The paper argues CR/FCR interface hardware is "modest": the injector
needs "a few adders and a distance calculator" for Imin, a stall counter
and comparator for the timeout, and a small FSM for kill/retransmit; the
receiver (Fig. 8) interprets "PAD, FKILL and flow control information".
This module makes that argument quantitative with a gate/latch inventory
built from standard cell-count rules of thumb:

* ripple/carry-select adder: ~6 gates per bit,
* counter: ~8 gates + 1 latch per bit,
* comparator: ~3 gates per bit,
* mux/steering per bit: ~3 gates,
* small FSM: ~25 gates + 1 latch per state bit.

Absolute numbers are indicative (a real datapath differs by small
factors); the reproduced *claim* is relative: the CR additions are a few
hundred gates -- far below the thousands in a Meiko CS-2-class message
processor -- and FCR adds only a check-code datapath on top of CR.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

GATES_PER_ADDER_BIT = 6
GATES_PER_COUNTER_BIT = 8
LATCHES_PER_COUNTER_BIT = 1
GATES_PER_COMPARATOR_BIT = 3
GATES_PER_MUX_BIT = 3
GATES_PER_FSM_STATE_BIT = 25
CRC16_GATES = 80  # serial LFSR datapath
CRC16_LATCHES = 16


@dataclass(frozen=True)
class Component:
    """One datapath element of an interface."""

    name: str
    gates: int
    latches: int
    purpose: str


def _bits(max_value: int) -> int:
    """Register width to hold values up to ``max_value``."""
    if max_value < 1:
        raise ValueError("max_value must be >= 1")
    return max(1, math.ceil(math.log2(max_value + 1)))


@dataclass(frozen=True)
class InterfaceParams:
    """Network parameters the widths depend on.

    radix/dims size the distance calculator; ``max_wire_length`` sizes
    the pad and flit counters; ``max_timeout`` sizes the stall counter.
    """

    radix: int = 16
    dims: int = 2
    max_wire_length: int = 256
    max_timeout: int = 1024
    backoff_cap: int = 6


def _adder(name: str, bits: int, purpose: str) -> Component:
    return Component(name, GATES_PER_ADDER_BIT * bits, 0, purpose)


def _counter(name: str, bits: int, purpose: str) -> Component:
    return Component(
        name,
        GATES_PER_COUNTER_BIT * bits,
        LATCHES_PER_COUNTER_BIT * bits,
        purpose,
    )


def _comparator(name: str, bits: int, purpose: str) -> Component:
    return Component(name, GATES_PER_COMPARATOR_BIT * bits, 0, purpose)


def _fsm(name: str, states: int, purpose: str) -> Component:
    bits = _bits(states - 1)
    return Component(name, GATES_PER_FSM_STATE_BIT * bits, bits, purpose)


def injector_components(
    params: InterfaceParams, mode: str = "cr"
) -> List[Component]:
    """Datapath inventory of the injection interface.

    ``mode``: "plain" (classic wormhole source), "cr", or "fcr".
    """
    if mode not in ("plain", "cr", "fcr"):
        raise ValueError(f"unknown interface mode {mode!r}")
    coord_bits = _bits(params.radix - 1)
    dist_bits = _bits(params.dims * (params.radix // 2))
    wire_bits = _bits(params.max_wire_length)
    timeout_bits = _bits(params.max_timeout)
    parts: List[Component] = [
        _counter("flit counter", wire_bits, "position in outgoing message"),
        _fsm("send FSM", 4, "idle / sending / blocked / done"),
    ]
    if mode == "plain":
        return parts
    # Distance calculator: per-dimension |src-dst| with wrap minimum.
    parts.append(
        Component(
            "distance calculator",
            params.dims * (2 * GATES_PER_ADDER_BIT + GATES_PER_MUX_BIT)
            * coord_bits,
            0,
            "per-dimension wrap distance, summed",
        )
    )
    parts.append(_adder("distance accumulator", dist_bits, "sum over dims"))
    parts.append(
        _adder("Imin adder", wire_bits, "distance x per-hop depth + slack")
    )
    parts.append(
        _comparator("pad comparator", wire_bits, "payload sent vs Imin")
    )
    parts.append(
        _counter("stall counter", timeout_bits, "consecutive blocked cycles")
    )
    parts.append(
        _comparator("timeout comparator", timeout_bits, "stall vs threshold")
    )
    parts.append(_fsm("kill FSM", 4, "drive kill signal, await teardown"))
    parts.append(
        _counter(
            "backoff timer",
            timeout_bits + params.backoff_cap,
            "retransmission gap countdown",
        )
    )
    parts.append(
        Component(
            "backoff LFSR",
            GATES_PER_COUNTER_BIT * params.backoff_cap,
            params.backoff_cap,
            "randomised exponential gap",
        )
    )
    if mode == "fcr":
        parts.append(
            Component(
                "CRC generator",
                CRC16_GATES,
                CRC16_LATCHES,
                "per-flit check code",
            )
        )
        parts.append(_fsm("FKILL monitor", 3, "abort on receiver kill"))
    return parts


def receiver_components(
    params: InterfaceParams, mode: str = "cr"
) -> List[Component]:
    """Datapath inventory of the reception interface (paper Fig. 8)."""
    if mode not in ("plain", "cr", "fcr"):
        raise ValueError(f"unknown interface mode {mode!r}")
    wire_bits = _bits(params.max_wire_length)
    parts: List[Component] = [
        _counter("flit counter", wire_bits, "position in incoming message"),
        _fsm("assembly FSM", 4, "idle / header / body / done"),
    ]
    if mode == "plain":
        return parts
    parts.append(
        Component(
            "PAD stripper",
            GATES_PER_MUX_BIT * 8 + GATES_PER_COMPARATOR_BIT * 2,
            0,
            "drop pad flits before the host",
        )
    )
    if mode == "fcr":
        parts.append(
            Component(
                "CRC checker", CRC16_GATES, CRC16_LATCHES, "per-flit check"
            )
        )
        parts.append(_fsm("FKILL driver", 3, "tear down corrupt worms"))
    return parts


def totals(components: List[Component]) -> Dict[str, int]:
    return {
        "gates": sum(c.gates for c in components),
        "latches": sum(c.latches for c in components),
    }


def interface_table(params: InterfaceParams) -> List[Dict[str, object]]:
    """Rows of the T01 table: per-mode interface totals."""
    rows: List[Dict[str, object]] = []
    for mode in ("plain", "cr", "fcr"):
        inj = totals(injector_components(params, mode))
        rcv = totals(receiver_components(params, mode))
        rows.append(
            {
                "interface": mode,
                "injector_gates": inj["gates"],
                "injector_latches": inj["latches"],
                "receiver_gates": rcv["gates"],
                "receiver_latches": rcv["latches"],
                "total_gates": inj["gates"] + rcv["gates"],
                "total_latches": inj["latches"] + rcv["latches"],
            }
        )
    return rows
