"""Router complexity and delay model (after Chien, Hot Interconnects '93).

The paper's motivating cost argument cites Chien's k-ary n-cube router
model: "virtual channels can be expensive because they complicate
routing decision and channel control, increasing router node delay
significantly."  CR's headline hardware claim follows: an adaptive CR
router needs *no* virtual channels, so it is simpler and faster than
virtual-channel adaptive routers and competitive with dimension-order
routers.

The model decomposes the router's critical path into:

* address decode / routing decision  -- grows with routing freedom
  (the number of admissible output candidates a header may have),
* virtual-channel allocation         -- grows with log2 of the VCs
  competing per physical channel,
* switch (crossbar) traversal        -- grows with log2 of crossbar
  ports (physical ports x VCs), and
* flow control / channel multiplexing -- grows with log2(VCs).

Coefficients are in nanoseconds, normalised so a plain 2D dimension-
order mesh router comes out near Chien's ~5 ns figure for early-90s
0.8um CMOS.  As with the interface inventory, the reproduced claims are
*relative* orderings, not absolute nanoseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

# Delay coefficients (ns).
T_DECODE_BASE = 1.2  # fixed header decode
T_ROUTE_PER_CHOICE = 0.6  # per log2(routing freedom) of decision logic
T_VC_ALLOC_PER_BIT = 0.9  # per log2(VCs) of allocation arbitration
T_XBAR_PER_BIT = 0.6  # per log2(crossbar ports) of switch fan-in
T_FLOWCTL_PER_BIT = 0.5  # per log2(VCs) of channel multiplexing
T_FLOWCTL_BASE = 0.8


@dataclass(frozen=True)
class RouterSpec:
    """One router organisation to be costed."""

    name: str
    phys_ports: int  # network ports incl. injection/ejection
    num_vcs: int
    routing_freedom: int  # max simultaneous admissible candidates
    notes: str = ""


def _log2_ceil(value: int) -> int:
    return max(0, math.ceil(math.log2(value))) if value > 1 else 0


def routing_delay(spec: RouterSpec) -> float:
    """Routing-decision stage delay (ns)."""
    return T_DECODE_BASE + T_ROUTE_PER_CHOICE * _log2_ceil(
        max(spec.routing_freedom, 1) + 1
    )


def vc_allocation_delay(spec: RouterSpec) -> float:
    """Virtual-channel allocation delay (ns); zero with a single VC."""
    return T_VC_ALLOC_PER_BIT * _log2_ceil(spec.num_vcs)


def switch_delay(spec: RouterSpec) -> float:
    """Crossbar traversal delay (ns)."""
    fan_in = spec.phys_ports * spec.num_vcs
    return T_XBAR_PER_BIT * _log2_ceil(fan_in)


def flow_control_delay(spec: RouterSpec) -> float:
    """Channel multiplexing / credit handling delay (ns)."""
    return T_FLOWCTL_BASE + T_FLOWCTL_PER_BIT * _log2_ceil(spec.num_vcs)


def router_delay(spec: RouterSpec) -> float:
    """Critical-path estimate (ns): max of the pipeline stages summed
    with the always-serial decode, matching the flit-cycle framing of
    Chien's model."""
    return (
        routing_delay(spec)
        + vc_allocation_delay(spec)
        + switch_delay(spec)
        + flow_control_delay(spec)
    )


def standard_specs(dims: int = 2, torus: bool = True) -> List[RouterSpec]:
    """The router organisations the paper compares (2D network).

    Physical ports: 2 per dimension plus injection and ejection.
    Routing freedom: DOR 1; CR minimal-adaptive up to ``dims`` ports (x
    VCs lanes); Duato adds escape channels to full adaptivity; PAR
    (planar-adaptive) is limited to two dimensions at a time.
    """
    ports = 2 * dims + 2
    dor_vcs = 2 if torus else 1
    return [
        RouterSpec(
            "DOR",
            ports,
            dor_vcs,
            routing_freedom=1,
            notes="dimension order; dateline VCs in tori",
        ),
        RouterSpec(
            "CR",
            ports,
            1,
            routing_freedom=dims,
            notes="fully adaptive, no VCs (deadlock recovery)",
        ),
        RouterSpec(
            "CR-2lane",
            ports,
            2,
            routing_freedom=2 * dims,
            notes="CR with two virtual lanes for throughput",
        ),
        RouterSpec(
            "Duato",
            ports,
            (2 if torus else 1) + 1,
            routing_freedom=dims + 1,
            notes="adaptive VCs over a DOR escape network",
        ),
        RouterSpec(
            "PAR",
            ports,
            3,
            routing_freedom=2,
            notes="planar-adaptive (Chien & Kim 92)",
        ),
        RouterSpec(
            "LinderHarden",
            ports,
            2 ** (dims - 1) * (dims + 1) if dims > 1 else 2,
            routing_freedom=dims,
            notes="2^(n-1) virtual networks",
        ),
    ]


def router_table(
    dims: int = 2, torus: bool = True
) -> List[Dict[str, object]]:
    """Rows of the T02 table: per-scheme router delay breakdown."""
    specs = standard_specs(dims, torus)
    baseline = router_delay(specs[0])
    rows: List[Dict[str, object]] = []
    for spec in specs:
        delay = router_delay(spec)
        rows.append(
            {
                "router": spec.name,
                "vcs": spec.num_vcs,
                "freedom": spec.routing_freedom,
                "routing_ns": round(routing_delay(spec), 2),
                "vc_alloc_ns": round(vc_allocation_delay(spec), 2),
                "switch_ns": round(switch_delay(spec), 2),
                "flow_ns": round(flow_control_delay(spec), 2),
                "total_ns": round(delay, 2),
                "vs_dor": round(delay / baseline, 2),
            }
        )
    return rows
