"""Analytic hardware cost models (interfaces, routers, buffers)."""
