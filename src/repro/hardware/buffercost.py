"""Buffer-storage accounting: what each organisation actually costs.

The buffer-organisation experiments (E04/E05) compare schemes at very
different storage budgets; this module makes the budgets explicit so the
comparison can be cost-normalised.  Storage is counted in flit-slots per
router (input VC buffers; CR's ejection staging and the interface
counters are counted by :mod:`repro.hardware.costmodel`), and converted
to bits via a parameterised flit width.

The punchline the table supports: CR's performance point is reached at a
*fraction* of the deep-FIFO DOR budget -- buffer storage dominated early
routers' silicon, so flits-of-buffer per unit throughput was a real
design currency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

FLIT_BITS_DEFAULT = 16  # 16-bit phits/flits, typical of the era


@dataclass(frozen=True)
class BufferOrganisation:
    """One router buffer configuration to be costed."""

    name: str
    num_vcs: int
    buffer_depth: int
    ports: int  # input ports carrying VC buffers (links + injection)

    @property
    def flits_per_router(self) -> int:
        return self.ports * self.num_vcs * self.buffer_depth

    def bits_per_router(self, flit_bits: int = FLIT_BITS_DEFAULT) -> int:
        return self.flits_per_router * flit_bits


def standard_organisations(dims: int = 2) -> List[BufferOrganisation]:
    """The buffer organisations of E04/E05 (2D torus, one injector)."""
    ports = 2 * dims + 1  # link inputs + injection input
    return [
        BufferOrganisation("dor_2vc_d2", 2, 2, ports),
        BufferOrganisation("dor_2vc_d4", 2, 4, ports),
        BufferOrganisation("dor_2vc_d8", 2, 8, ports),
        BufferOrganisation("dor_2vc_d16", 2, 16, ports),
        BufferOrganisation("dor_4vc_d4", 4, 4, ports),
        BufferOrganisation("dor_8vc_d2", 8, 2, ports),
        BufferOrganisation("cr_1vc_d2", 1, 2, ports),
        BufferOrganisation("cr_2vc_d2", 2, 2, ports),
        BufferOrganisation("cr_4vc_d2", 4, 2, ports),
    ]


def storage_table(
    dims: int = 2, flit_bits: int = FLIT_BITS_DEFAULT
) -> List[Dict[str, object]]:
    """Rows of per-router storage for the standard organisations."""
    orgs = standard_organisations(dims)
    baseline = next(o for o in orgs if o.name == "cr_2vc_d2")
    rows: List[Dict[str, object]] = []
    for org in orgs:
        rows.append(
            {
                "organisation": org.name,
                "vcs": org.num_vcs,
                "depth": org.buffer_depth,
                "flits_per_router": org.flits_per_router,
                "bits_per_router": org.bits_per_router(flit_bits),
                "vs_cr_2vc": round(
                    org.flits_per_router / baseline.flits_per_router, 2
                ),
            }
        )
    return rows


def throughput_per_flit(
    throughput: float, organisation: BufferOrganisation
) -> float:
    """Cost-normalised performance: throughput per buffer flit."""
    return throughput / organisation.flits_per_router
