"""Run orchestration: warmup -> measurement -> drain -> result.

Engine-agnostic: ``SimConfig.build`` hands back whichever engine the
config selects (``engine="reference"`` or ``"fast"``), and because the
fast engine is flit-for-flit identical, the orchestration — and every
report field it produces — is byte-identical under either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..core.guarantees import DeliveryLedger
from ..network.engine import Engine
from ..stats.collector import StatsCollector
from .config import SimConfig


@dataclass
class SimResult:
    """Everything a single run produced."""

    config: SimConfig
    report: Dict[str, object]
    stats: StatsCollector
    ledger: DeliveryLedger
    drained: bool
    cycles_run: int
    engine: Optional[Engine] = None

    @property
    def latency(self) -> float:
        """Mean total (queue + network) latency of measured messages."""
        return float(self.report["latency_mean"])

    @property
    def throughput(self) -> float:
        """Accepted payload flits per node per cycle in the window."""
        return float(self.report["throughput"])

    def __getitem__(self, key: str) -> object:
        return self.report[key]


def run_simulation(
    config: SimConfig,
    keep_engine: bool = False,
    setup: Optional[Callable[[Engine], None]] = None,
) -> SimResult:
    """Build and run one simulation to completion.

    Generation runs for ``warmup + measure`` cycles; the network is then
    drained (bounded by ``config.drain``) so late measured messages still
    record their latency.  Messages still undelivered after the drain
    budget are reported in the ``undelivered`` field (censored sample).

    ``setup`` runs on the freshly built engine before the first cycle --
    the hook :func:`repro.obs.run_traced` uses to attach event sinks.
    """
    engine = config.build()
    if setup is not None:
        setup(engine)
    active = config.warmup + config.measure
    engine.run(active)
    drained = engine.run_until_drained(config.drain)
    report = engine.stats.report()
    report["drained"] = drained
    report["offered_load"] = config.load
    if engine.sampler is not None:
        engine.sampler.finalize(engine.now)
        report["timeseries"] = engine.sampler.rows()
    if engine.alerts is not None:
        report["alerts"] = engine.alerts.rows()
        report["alerts_summary"] = engine.alerts.summary()
    if engine.telemetry is not None:
        # Publishes the end-of-run snapshot; stops a server this run
        # started (a caller-provided TelemetryServer keeps serving).
        engine.telemetry.close(engine)
    if engine.checker is not None:
        engine.checker.on_run_end(drained, engine.now)
        report["verify"] = engine.checker.summary()
    if engine.profiler is not None:
        report["profile"] = engine.profiler.summary()
    return SimResult(
        config=config,
        report=report,
        stats=engine.stats,
        ledger=engine.ledger,
        drained=drained,
        cycles_run=engine.now,
        engine=engine if keep_engine else None,
    )
