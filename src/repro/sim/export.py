"""Result export: sweep rows to CSV for external plotting."""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional, Sequence


def rows_to_csv(
    rows: Sequence[Dict[str, object]],
    path: str,
    columns: Optional[Sequence[str]] = None,
) -> int:
    """Write sweep rows to ``path``; returns the number of data rows.

    Parent directories are created as needed, so sweeps can target
    fresh result trees (``results/<campaign>/rows.csv``) directly.
    Columns default to the union of keys across rows, in first-seen
    order, so heterogeneous sweeps stay loadable.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    if columns is None:
        seen: Dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = list(seen)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns),
                                extrasaction="ignore", restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def read_csv(path: str) -> List[Dict[str, str]]:
    """Read back a CSV written by :func:`rows_to_csv` (strings only)."""
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))
