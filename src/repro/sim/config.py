"""Declarative simulation configuration.

``SimConfig`` is the single entry point users and experiments go
through: it names a topology, a routing scheme (which implies the
interface protocol: ``cr``/``fcr`` run the CR state machines, the
baselines run classic blocking wormhole), the resource provisioning
(VCs, buffer depth, interface channels), the workload, and the run
phases.  ``build()`` turns it into a live engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

from ..core.backoff import RetransmitPolicy
from ..core.padding import PaddingParams
from ..core.protocol import ProtocolConfig, ProtocolMode
from ..core.timeout import PathWideTimeout, TimeoutPolicy
from ..faults.model import CompositeFaultModel, FaultModel
from ..faults.permanent import PermanentFaultSchedule, random_channel_faults
from ..faults.transient import TransientFaults
from ..network.engine import Engine
from ..network.network import WormholeNetwork
from ..routing.base import RoutingFunction
from ..routing.dor import DimensionOrder
from ..routing.duato import Duato
from ..routing.minimal_adaptive import MinimalAdaptive, NaiveAdaptive
from ..routing.misrouting import MisroutingAdaptive
from ..routing.selection import make_selection
from ..routing.turnmodel import NegativeFirst
from ..stats.collector import StatsCollector
from ..topology.base import Topology
from ..topology.hypercube import Hypercube
from ..topology.torus import KAryNCube
from ..traffic.generator import TrafficGenerator
from ..traffic.lengths import FixedLength, LengthDistribution
from ..traffic.loads import injection_rate
from ..traffic.patterns import make_pattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..verify.invariants import VerifyConfig

#: sampler cadence auto-selected when alerts/serve are armed without an
#: explicit sample_interval (cycles per window).
DEFAULT_SAMPLE_INTERVAL = 200

#: routing scheme -> (routing function class, interface protocol)
SCHEMES = {
    "cr": (MinimalAdaptive, ProtocolMode.CR),
    "fcr": (MinimalAdaptive, ProtocolMode.FCR),
    "dor": (DimensionOrder, ProtocolMode.PLAIN),
    "duato": (Duato, ProtocolMode.PLAIN),
    "turn": (NegativeFirst, ProtocolMode.PLAIN),
    "naive": (NaiveAdaptive, ProtocolMode.PLAIN),
    # CR interfaces over the deterministic relation (used by ablations:
    # recovery without adaptivity).
    "dor+cr": (DimensionOrder, ProtocolMode.CR),
    # Drop-at-block (BBN Butterfly lineage): adaptive routing, plain
    # unpadded injection, routers reject blocked headers (E19 baseline).
    "drop": (MinimalAdaptive, ProtocolMode.PLAIN),
    # Pipelined circuit switching with backtracking probes (E20
    # baseline, Gaughan & Yalamanchili).
    "pcs": (MinimalAdaptive, ProtocolMode.PCS),
}


@dataclass
class SimConfig:
    """Full description of one simulation run."""

    # --- network shape -------------------------------------------------
    topology: str = "torus"  # torus | mesh | hypercube
    radix: int = 8
    dims: int = 2
    # --- routing scheme and resources ----------------------------------
    routing: str = "cr"
    num_vcs: Optional[int] = None  # default: the scheme's minimum
    buffer_depth: int = 2
    channel_latency: int = 1
    num_inject: int = 1
    num_sink: int = 1
    eject_slots: int = 2
    selection: str = "random"
    # --- protocol ------------------------------------------------------
    timeout: Optional[TimeoutPolicy] = None
    backoff: Optional[RetransmitPolicy] = None
    order_preserving: bool = True
    retry_limit: Optional[int] = None
    path_wide_cycles: Optional[int] = None
    padding_slack: int = 4
    # Bounded non-minimal hops on retries (permanent-fault tolerance).
    misrouting: bool = False
    # Router-side drop threshold for the "drop" scheme (cycles a header
    # may block before the router rejects the message).
    drop_at_block_cycles: Optional[int] = None
    # PCS: probe patience before backtracking.
    pcs_wait: int = 4
    # Software ack/retry reliability layer over a PLAIN network (the
    # baseline FCR replaces; see core/swretry.py and experiment E18).
    software_retry: bool = False
    swr_timeout: int = 512
    swr_ack_length: int = 2
    swr_retry_limit: Optional[int] = 16
    # --- workload ------------------------------------------------------
    pattern: str = "uniform"
    pattern_kwargs: Dict[str, Any] = field(default_factory=dict)
    message_length: int = 16
    lengths: Optional[LengthDistribution] = None
    load: float = 0.5  # fraction of theoretical capacity
    # Trace-driven workload (overrides the stochastic generator): every
    # scheme replaying the same trace sees byte-identical arrivals.
    trace: Optional[Any] = None
    # Production workload spec (repro.workload): a kind string
    # ("mmpp", "pareto:alpha=1.4", "incast:period=64", "client-server",
    # "phased", "trace:<path>"), a dict ({"kind": ...}), or a
    # WorkloadSpec.  None keeps the legacy Bernoulli generator;
    # "bernoulli" is its draw-for-draw equivalent through the new layer.
    workload: Optional[Any] = None
    # --- faults --------------------------------------------------------
    fault_rate: float = 0.0
    permanent_faults: int = 0
    fault_model: Optional[FaultModel] = None
    # Load-dependent cascading faults (repro.faults.cascading): True for
    # defaults, a dict/"k=v,..." string of LoadDependentFaults kwargs,
    # or an instance.  Composes with the other fault fields.
    cascade_faults: Optional[Any] = None
    # --- run phases ----------------------------------------------------
    warmup: int = 1000
    measure: int = 4000
    drain: int = 4000
    seed: int = 42
    queue_cap: int = 64
    watchdog: int = 20000
    # --- engine implementation -----------------------------------------
    # "reference" runs the plain per-cycle Engine; "fast" runs
    # repro.network.fastengine.FastEngine (batched credits, memoised
    # routing relations, event skipping) — flit-for-flit identical
    # output, selected purely for speed.
    engine: str = "reference"
    # --- observability -------------------------------------------------
    # When set, build() attaches a repro.obs.IntervalSampler collecting
    # time-series metrics every N cycles; run_simulation() then reports
    # them under "timeseries".
    sample_interval: Optional[int] = None
    # Alert rules engine (repro.obs.alerts): True for the built-in
    # rules, a path to a JSON rules file, a rules list/dict, or an
    # AlertEngine.  Evaluated at sampler boundaries (a sampler is
    # auto-attached at DEFAULT_SAMPLE_INTERVAL when none is configured);
    # run_simulation() then reports firing episodes under "alerts".
    alerts: Optional[Any] = None
    # Live telemetry server (repro.obs.server): True for loopback on an
    # ephemeral port, a port, "[HOST:]PORT", or a TelemetryServer.
    # Serves /metrics, /health, /status; republished at every sampler
    # boundary (a sampler is auto-attached as for alerts).
    serve: Optional[Any] = None
    # --- verification --------------------------------------------------
    # True (or a repro.verify.VerifyConfig) arms the runtime invariant
    # checker; run_simulation() then reports its counters under
    # "verify" and raises InvariantViolation on a broken invariant.
    verify: Union[None, bool, "VerifyConfig"] = None
    # --- profiling -----------------------------------------------------
    # True arms the engine self-profiler (phase-scoped wall timers; see
    # repro.obs.profile); run_simulation() then reports the per-phase
    # summary under "profile".  An int > 1 additionally takes periodic
    # per-phase snapshots every N cycles for the Perfetto counter track.
    profile: Union[bool, int] = False

    # ------------------------------------------------------------------

    def with_(self, **overrides) -> "SimConfig":
        """A copy with fields replaced (sweep helper)."""
        return replace(self, **overrides)

    def make_topology(self) -> Topology:
        if self.topology == "torus":
            return KAryNCube(self.radix, self.dims, wrap=True)
        if self.topology == "mesh":
            return KAryNCube(self.radix, self.dims, wrap=False)
        if self.topology == "hypercube":
            return Hypercube(self.dims)
        raise ValueError(f"unknown topology {self.topology!r}")

    def make_routing(self, topology: Topology) -> Tuple[RoutingFunction, ProtocolMode]:
        try:
            routing_cls, mode = SCHEMES[self.routing]
        except KeyError:
            raise ValueError(
                f"unknown routing scheme {self.routing!r}; "
                f"choose from {sorted(SCHEMES)}"
            ) from None
        if self.misrouting:
            if routing_cls is not MinimalAdaptive or self.routing == "drop":
                raise ValueError(
                    "misrouting is only supported with the cr/fcr/pcs "
                    "schemes"
                )
            routing_cls = MisroutingAdaptive
        if self.routing == "dor+cr":
            # Recovery-only ablation: CR interfaces supply the deadlock
            # freedom, so the deterministic relation runs without its
            # dateline virtual channels.
            return DimensionOrder(topology, dateline=False), mode
        return routing_cls(topology), mode

    def resolved_num_vcs(self, routing: RoutingFunction) -> int:
        return self.num_vcs if self.num_vcs is not None else routing.min_vcs()

    def make_lengths(self) -> LengthDistribution:
        return self.lengths or FixedLength(self.message_length)

    def build(self) -> Engine:
        """Construct the engine (network, protocol, traffic, faults)."""
        if self.engine not in ("reference", "fast"):
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                "choose 'reference' or 'fast'"
            )
        channel_factory = None
        engine_cls = Engine
        if self.engine == "fast":
            from ..network.fastengine import FastEngine, LedgerChannel

            engine_cls = FastEngine
            channel_factory = LedgerChannel
        topology = self.make_topology()
        routing, mode = self.make_routing(topology)
        num_vcs = self.resolved_num_vcs(routing)
        network = WormholeNetwork(
            topology,
            routing,
            make_selection(self.selection),
            num_vcs=num_vcs,
            buffer_depth=self.buffer_depth,
            channel_latency=self.channel_latency,
            num_inject=self.num_inject,
            num_sink=self.num_sink,
            eject_slots=self.eject_slots,
            channel_factory=channel_factory,
        )
        drop_cycles = self.drop_at_block_cycles
        if self.routing == "drop" and drop_cycles is None:
            drop_cycles = 2
        protocol = ProtocolConfig(
            mode=mode,
            timeout=self.timeout,
            backoff=self.backoff,
            drop_at_block=drop_cycles,
            pcs_wait=self.pcs_wait,
            padding=PaddingParams(
                buffer_depth=self.buffer_depth,
                channel_latency=self.channel_latency,
                eject_slots=self.eject_slots,
                slack=self.padding_slack,
            ),
            order_preserving=self.order_preserving,
            retry_limit=self.retry_limit,
            path_wide=(
                PathWideTimeout(self.path_wide_cycles)
                if self.path_wide_cycles is not None
                else None
            ),
        )
        if self.trace is not None:
            if self.workload is not None:
                raise ValueError(
                    "trace and workload are mutually exclusive; use "
                    "workload='trace:<path>' for trace-driven workloads"
                )
            from ..traffic.trace import TraceReplayGenerator

            generator = TraceReplayGenerator(self.trace)
        elif self.workload is not None:
            from ..workload import build_workload

            generator = build_workload(self, topology)
        else:
            lengths = self.make_lengths()
            rate = injection_rate(topology, self.load, lengths.mean())
            generator = TrafficGenerator(
                make_pattern(self.pattern, **self.pattern_kwargs),
                lengths,
                message_rate=min(rate, 1.0),
                seed=self.seed + 1,
                stop_at=self.warmup + self.measure,
            )
        stats = StatsCollector(
            topology.num_nodes,
            warmup_end=self.warmup,
            measure_end=self.warmup + self.measure,
        )
        engine = engine_cls(
            network,
            protocol=protocol,
            seed=self.seed,
            stats=stats,
            fault_model=self._make_fault_model(network),
            generator=generator,
            watchdog=self.watchdog,
            queue_cap=self.queue_cap,
        )
        if getattr(generator, "wants_delivery_hook", False):
            engine.delivery_listener = generator
        if engine.fault_model is not None:
            engine.fault_model.bind_stats(stats)
        if self.software_retry:
            from ..core.swretry import SoftwareReliability

            SoftwareReliability(
                retry_timeout=self.swr_timeout,
                ack_length=self.swr_ack_length,
                retry_limit=self.swr_retry_limit,
            ).attach(engine)
        wants_boundaries = (
            (self.alerts is not None and self.alerts is not False)
            or (self.serve is not None and self.serve is not False)
        )
        if self.sample_interval is not None or wants_boundaries:
            from ..obs.sampler import IntervalSampler

            # Alerts and telemetry evaluate on sampler boundaries, so
            # arming either without an explicit sample_interval attaches
            # a sampler at the default cadence.
            engine.sampler = IntervalSampler(
                engine,
                interval=(self.sample_interval
                          if self.sample_interval is not None
                          else DEFAULT_SAMPLE_INTERVAL),
            )
        if self.alerts is not None and self.alerts is not False:
            from ..obs.alerts import make_alert_engine

            engine.alerts = make_alert_engine(self.alerts)
            engine.sampler.listeners.append(engine.alerts)
        if self.serve is not None and self.serve is not False:
            from ..obs.server import (
                EngineTelemetry,
                TelemetryServer,
                make_telemetry_server,
            )

            server = make_telemetry_server(self.serve)
            engine.telemetry = EngineTelemetry(
                server,
                # A caller-constructed server outlives this run (the
                # caller may share it across runs); specs we coerced
                # into a fresh server are ours to stop at close().
                owns_server=not isinstance(self.serve, TelemetryServer),
            )
            engine.sampler.listeners.append(engine.telemetry)
            # Publish the cycle-0 state so scrapes work immediately.
            engine.telemetry.publish(engine)
        if self.verify is not None and self.verify is not False:
            from ..verify import (
                InvariantChecker,
                VerifyConfig,
                apply_mutation,
            )

            verify_config = VerifyConfig.coerce(self.verify)
            engine.checker = InvariantChecker(engine, verify_config)
            if verify_config.mutation is not None:
                apply_mutation(engine, verify_config.mutation)
        if self.profile:
            from ..obs.profile import EngineProfiler

            snapshot = int(self.profile) if self.profile is not True else 0
            engine.profiler = EngineProfiler(
                snapshot_interval=snapshot if snapshot > 1 else 0
            )
        return engine

    def _make_fault_model(
        self, network: WormholeNetwork
    ) -> Optional[FaultModel]:
        models = []
        if self.fault_model is not None:
            models.append(self.fault_model)
        if self.fault_rate > 0.0:
            models.append(TransientFaults(self.fault_rate))
        if self.permanent_faults > 0:
            import random as _random

            rng = _random.Random(self.seed + 2)
            faults = random_channel_faults(
                network, self.permanent_faults, rng, cycle=0
            )
            models.append(PermanentFaultSchedule(faults))
        if self.cascade_faults is not None:
            from ..faults.cascading import make_cascading

            models.append(
                make_cascading(self.cascade_faults, seed=self.seed + 3)
            )
        if not models:
            return None
        if len(models) == 1:
            return models[0]
        return CompositeFaultModel(models)
