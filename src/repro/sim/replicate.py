"""Seed replication: the same configuration across independent seeds.

Single-run numbers from a stochastic simulator carry sampling noise;
the standard remedy is replication.  ``replicate`` runs a configuration
across ``n`` seeds and reports mean, standard deviation, and extreme
values for the chosen metrics, plus a relative half-width estimate so a
reader can judge whether an observed gap between two configurations is
real.  (With one replication per point the paper-reproduction benches
stay fast; use this module when a margin looks close.)
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from .config import SimConfig
from .simulator import run_simulation

DEFAULT_METRICS = ("latency_mean", "throughput", "kill_rate")


def replicate(
    config: SimConfig,
    seeds: Iterable[int],
    metrics: Sequence[str] = DEFAULT_METRICS,
) -> Dict[str, Dict[str, float]]:
    """Run ``config`` once per seed; summarise each metric.

    Returns ``{metric: {mean, std, min, max, rel_halfwidth, n}}`` where
    ``rel_halfwidth`` approximates a 95% confidence half-width relative
    to the mean (1.96 * std / sqrt(n) / mean).
    """
    samples: Dict[str, List[float]] = {metric: [] for metric in metrics}
    count = 0
    for seed in seeds:
        result = run_simulation(config.with_(seed=seed))
        count += 1
        for metric in metrics:
            samples[metric].append(float(result.report.get(metric, 0.0)))
    if count == 0:
        raise ValueError("need at least one seed")
    out: Dict[str, Dict[str, float]] = {}
    for metric, values in samples.items():
        mean = sum(values) / count
        var = sum((v - mean) ** 2 for v in values) / count
        std = math.sqrt(var)
        halfwidth = 1.96 * std / math.sqrt(count) if count > 1 else 0.0
        out[metric] = {
            "mean": mean,
            "std": std,
            "min": min(values),
            "max": max(values),
            "rel_halfwidth": halfwidth / mean if mean else 0.0,
            "n": count,
        }
    return out


def significantly_better(
    a: SimConfig,
    b: SimConfig,
    metric: str,
    seeds: Iterable[int],
    higher_is_better: bool = True,
) -> bool:
    """Crude two-config comparison: non-overlapping mean +/- halfwidth.

    Conservative by construction -- overlapping intervals return False
    even when a formal test might find a difference.
    """
    seed_list = list(seeds)
    summary_a = replicate(a, seed_list, metrics=[metric])[metric]
    summary_b = replicate(b, seed_list, metrics=[metric])[metric]
    half_a = summary_a["rel_halfwidth"] * summary_a["mean"]
    half_b = summary_b["rel_halfwidth"] * summary_b["mean"]
    if higher_is_better:
        return summary_a["mean"] - half_a > summary_b["mean"] + half_b
    return summary_a["mean"] + half_a < summary_b["mean"] - half_b
