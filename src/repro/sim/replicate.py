"""Seed replication: the same configuration across independent seeds.

Single-run numbers from a stochastic simulator carry sampling noise;
the standard remedy is replication.  ``replicate`` runs a configuration
across ``n`` seeds and reports mean, standard deviation, and extreme
values for the chosen metrics, plus a relative half-width estimate so a
reader can judge whether an observed gap between two configurations is
real.  (With one replication per point the paper-reproduction benches
stay fast; use this module when a margin looks close.)

Replications are independent runs, so they fan out across a process
pool exactly like sweep points: pass ``workers=N`` (and optionally
``cache=``) through to :func:`repro.sim.parallel.run_reports`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from .config import SimConfig
from .parallel import CacheSpec, ProgressCallback, run_reports

DEFAULT_METRICS = ("latency_mean", "throughput", "kill_rate")


def summarize_samples(values: Sequence[float]) -> Dict[str, float]:
    """Summary statistics over independent samples of one metric.

    Returns ``{mean, std, min, max, rel_halfwidth, n}`` where ``std``
    is the sample standard deviation (``n - 1`` denominator; 0.0 when
    ``n == 1``) and ``rel_halfwidth`` approximates a 95% confidence
    half-width relative to the mean (1.96 * std / sqrt(n) / mean).
    This is the summary :func:`replicate` produces per metric; the
    campaign report machinery applies it to stored rows.
    """
    count = len(values)
    if count == 0:
        raise ValueError("need at least one sample")
    mean = sum(values) / count
    # Sample (n-1) variance: the population (n) denominator made the
    # normal half-width below systematically overconfident at small n.
    if count > 1:
        var = sum((v - mean) ** 2 for v in values) / (count - 1)
    else:
        var = 0.0
    std = math.sqrt(var)
    halfwidth = 1.96 * std / math.sqrt(count) if count > 1 else 0.0
    return {
        "mean": mean,
        "std": std,
        "min": min(values),
        "max": max(values),
        "rel_halfwidth": halfwidth / mean if mean else 0.0,
        "n": count,
    }


def intervals_separated(
    summary_a: Dict[str, float],
    summary_b: Dict[str, float],
    higher_is_better: bool = True,
) -> bool:
    """True when A beats B with non-overlapping mean +/- halfwidth.

    The comparison rule behind :func:`significantly_better`, usable
    directly on :func:`summarize_samples` outputs (e.g. from stored
    campaign rows).  Conservative by construction -- overlapping
    intervals return False even when a formal test might find a
    difference.
    """
    half_a = summary_a["rel_halfwidth"] * summary_a["mean"]
    half_b = summary_b["rel_halfwidth"] * summary_b["mean"]
    if higher_is_better:
        return summary_a["mean"] - half_a > summary_b["mean"] + half_b
    return summary_a["mean"] + half_a < summary_b["mean"] - half_b


def replicate(
    config: SimConfig,
    seeds: Iterable[int],
    metrics: Sequence[str] = DEFAULT_METRICS,
    workers: Optional[int] = 1,
    cache: CacheSpec = None,
    progress: Optional[ProgressCallback] = None,
) -> Dict[str, Dict[str, float]]:
    """Run ``config`` once per seed; summarise each metric.

    Returns ``{metric: {mean, std, min, max, rel_halfwidth, n}}`` where
    ``std`` is the sample standard deviation (``n - 1`` denominator;
    0.0 when ``n == 1``) and ``rel_halfwidth`` approximates a 95%
    confidence half-width relative to the mean
    (1.96 * std / sqrt(n) / mean).
    """
    seed_list = list(seeds)
    count = len(seed_list)
    if count == 0:
        raise ValueError("need at least one seed")
    reports = run_reports(
        [config.with_(seed=seed) for seed in seed_list],
        workers=workers, cache=cache, progress=progress,
    )
    samples: Dict[str, List[float]] = {
        metric: [float(report.get(metric, 0.0)) for report in reports]
        for metric in metrics
    }
    return {
        metric: summarize_samples(values)
        for metric, values in samples.items()
    }


def significantly_better(
    a: SimConfig,
    b: SimConfig,
    metric: str,
    seeds: Iterable[int],
    higher_is_better: bool = True,
    workers: Optional[int] = 1,
    cache: CacheSpec = None,
) -> bool:
    """Crude two-config comparison: non-overlapping mean +/- halfwidth.

    Conservative by construction -- overlapping intervals return False
    even when a formal test might find a difference.
    """
    seed_list = list(seeds)
    summary_a = replicate(a, seed_list, metrics=[metric],
                          workers=workers, cache=cache)[metric]
    summary_b = replicate(b, seed_list, metrics=[metric],
                          workers=workers, cache=cache)[metric]
    return intervals_separated(summary_a, summary_b, higher_is_better)
