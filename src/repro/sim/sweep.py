"""Parameter sweeps: the workhorse behind every figure reproduction.

All sweep helpers route through :func:`repro.sim.parallel.run_reports`,
so they share one execution story: ``workers=1`` (default) preserves
the exact serial behaviour, ``workers=N`` fans points out over a
process pool with byte-identical rows, ``cache=`` reuses on-disk
results across invocations, and ``progress=`` reports per-point status
on long sweeps.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from .config import SimConfig
from .parallel import CacheSpec, ProgressCallback, Report, run_reports
from .simulator import SimResult

Row = Dict[str, object]

#: report keys every sweep row carries
DEFAULT_FIELDS = (
    "latency_mean",
    "latency_p95",
    "throughput",
    "kill_rate",
    "pad_overhead",
    "undelivered",
)


def report_row(report: Report, fields: Sequence[str] = DEFAULT_FIELDS) -> Row:
    """Project the requested fields out of one run's report dict.

    Unknown field names raise ``KeyError`` instead of silently mapping
    to 0 — a typo in a bench's ``fields=`` list used to fabricate a
    flat-zero curve that looked like a (wrong) result.
    """
    row: Row = {}
    for key in fields:
        try:
            row[key] = report[key]
        except KeyError:
            raise KeyError(
                f"field {key!r} is not in the simulation report; "
                f"available fields: {sorted(report)}"
            ) from None
    return row


def result_row(result: SimResult, fields: Sequence[str] = DEFAULT_FIELDS) -> Row:
    """:func:`report_row` over a :class:`SimResult`'s report."""
    return report_row(result.report, fields)


def load_sweep(
    base: SimConfig,
    loads: Iterable[float],
    fields: Sequence[str] = DEFAULT_FIELDS,
    label: Optional[str] = None,
    workers: Optional[int] = 1,
    cache: CacheSpec = None,
    progress: Optional[ProgressCallback] = None,
) -> List[Row]:
    """Run ``base`` across offered loads; one row per load point."""
    load_list = list(loads)
    reports = run_reports(
        [base.with_(load=load) for load in load_list],
        workers=workers, cache=cache, progress=progress,
    )
    rows: List[Row] = []
    for load, report in zip(load_list, reports):
        row: Row = {"load": load}
        if label is not None:
            row["config"] = label
        row.update(report_row(report, fields))
        rows.append(row)
    return rows


def param_sweep(
    base: SimConfig,
    param: str,
    values: Iterable[Any],
    fields: Sequence[str] = DEFAULT_FIELDS,
    workers: Optional[int] = 1,
    cache: CacheSpec = None,
    progress: Optional[ProgressCallback] = None,
) -> List[Row]:
    """Run ``base`` with ``param`` set to each value; one row each."""
    value_list = list(values)
    reports = run_reports(
        [base.with_(**{param: value}) for value in value_list],
        workers=workers, cache=cache, progress=progress,
    )
    rows: List[Row] = []
    for value, report in zip(value_list, reports):
        row: Row = {param: value}
        row.update(report_row(report, fields))
        rows.append(row)
    return rows


def matrix_sweep(
    configs: Dict[str, SimConfig],
    loads: Iterable[float],
    fields: Sequence[str] = DEFAULT_FIELDS,
    workers: Optional[int] = 1,
    cache: CacheSpec = None,
    progress: Optional[ProgressCallback] = None,
) -> List[Row]:
    """Several labelled configurations across the same load axis.

    This is the shape of the paper's comparison figures: one curve per
    configuration (CR vs DOR at various buffer depths, VC counts, ...),
    sharing the offered-load x-axis.  The whole label x load matrix is
    submitted as one batch, so a process pool stays busy across curve
    boundaries instead of draining at the end of each curve.
    """
    load_list = list(loads)
    labels = list(configs)
    reports = run_reports(
        [
            configs[label].with_(load=load)
            for label in labels
            for load in load_list
        ],
        workers=workers, cache=cache, progress=progress,
    )
    rows: List[Row] = []
    report_iter = iter(reports)
    for label in labels:
        for load in load_list:
            row: Row = {"load": load, "config": label}
            row.update(report_row(next(report_iter), fields))
            rows.append(row)
    return rows


def saturation_load(
    base: SimConfig,
    loads: Iterable[float],
    latency_limit_factor: float = 5.0,
    baseline: Optional[float] = None,
    workers: Optional[int] = 1,
    cache: CacheSpec = None,
) -> float:
    """Estimate the saturation point of a configuration.

    Returns the highest swept load whose mean latency stays under
    ``latency_limit_factor`` times the baseline latency (a standard
    operational definition of the saturation knee).  The baseline is
    the lowest-load latency unless an external ``baseline`` (e.g. an
    analytical zero-load latency) is supplied.

    Returns ``0.0`` when the configuration is saturated below the sweep
    floor: the lowest swept point delivers nothing (zero-delivery points
    have no finite latency) or already exceeds the latency limit against
    an external baseline.  A later zero-delivery point is treated as
    past the knee, same as a latency blow-up.

    With ``workers > 1`` the whole load ladder is evaluated
    speculatively in parallel; points above the knee are wasted work,
    but the wall clock is one point, not the ladder.  ``workers=1``
    keeps the serial early-exit behaviour.
    """
    load_list = sorted(loads)
    if not load_list:
        raise ValueError("need at least one load")

    speculative = workers is None or workers > 1
    if speculative:
        reports = run_reports(
            [base.with_(load=load) for load in load_list],
            workers=workers, cache=cache,
        )
        latencies = [float(report["latency_mean"]) for report in reports]

        def latency_at(index: int) -> float:
            return latencies[index]

    else:

        def latency_at(index: int) -> float:
            report = run_reports(
                [base.with_(load=load_list[index])],
                workers=1, cache=cache,
            )[0]
            return float(report["latency_mean"])

    first = latency_at(0)
    if first <= 0:
        return 0.0  # nothing delivered at the sweep floor
    limit = latency_limit_factor * (baseline if baseline is not None else first)
    if first > limit:
        return 0.0  # sweep floor already past the knee (external baseline)
    saturated_at = load_list[0]
    for index in range(1, len(load_list)):
        latency = latency_at(index)
        if latency <= 0 or latency > limit:
            break
        saturated_at = load_list[index]
    return saturated_at
