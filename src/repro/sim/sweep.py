"""Parameter sweeps: the workhorse behind every figure reproduction."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from .config import SimConfig
from .simulator import SimResult, run_simulation

Row = Dict[str, object]

#: report keys every sweep row carries
DEFAULT_FIELDS = (
    "latency_mean",
    "latency_p95",
    "throughput",
    "kill_rate",
    "pad_overhead",
    "undelivered",
)


def result_row(result: SimResult, fields: Sequence[str] = DEFAULT_FIELDS) -> Row:
    row: Row = {}
    for key in fields:
        row[key] = result.report.get(key, 0)
    return row


def load_sweep(
    base: SimConfig,
    loads: Iterable[float],
    fields: Sequence[str] = DEFAULT_FIELDS,
    label: Optional[str] = None,
) -> List[Row]:
    """Run ``base`` across offered loads; one row per load point."""
    rows: List[Row] = []
    for load in loads:
        result = run_simulation(base.with_(load=load))
        row: Row = {"load": load}
        if label is not None:
            row["config"] = label
        row.update(result_row(result, fields))
        rows.append(row)
    return rows


def param_sweep(
    base: SimConfig,
    param: str,
    values: Iterable[Any],
    fields: Sequence[str] = DEFAULT_FIELDS,
) -> List[Row]:
    """Run ``base`` with ``param`` set to each value; one row each."""
    rows: List[Row] = []
    for value in values:
        result = run_simulation(base.with_(**{param: value}))
        row: Row = {param: value}
        row.update(result_row(result, fields))
        rows.append(row)
    return rows


def matrix_sweep(
    configs: Dict[str, SimConfig],
    loads: Iterable[float],
    fields: Sequence[str] = DEFAULT_FIELDS,
) -> List[Row]:
    """Several labelled configurations across the same load axis.

    This is the shape of the paper's comparison figures: one curve per
    configuration (CR vs DOR at various buffer depths, VC counts, ...),
    sharing the offered-load x-axis.
    """
    rows: List[Row] = []
    load_list = list(loads)
    for label, config in configs.items():
        rows.extend(load_sweep(config, load_list, fields, label=label))
    return rows


def saturation_load(
    base: SimConfig,
    loads: Iterable[float],
    latency_limit_factor: float = 5.0,
) -> float:
    """Estimate the saturation point of a configuration.

    Returns the highest swept load whose mean latency stays under
    ``latency_limit_factor`` times the lowest-load latency (a standard
    operational definition of the saturation knee).
    """
    load_list = sorted(loads)
    baseline: Optional[float] = None
    saturated_at = load_list[0]
    for load in load_list:
        result = run_simulation(base.with_(load=load))
        latency = result.latency
        if latency <= 0:
            break
        if baseline is None:
            baseline = latency
        if latency > latency_limit_factor * baseline:
            break
        saturated_at = load
    return saturated_at
