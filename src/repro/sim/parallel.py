"""Parallel sweep execution with a deterministic on-disk result cache.

Every figure reproduction funnels through sweeps whose points are
embarrassingly parallel: each ``run_simulation`` call is bit-for-bit
seeded-deterministic and shares no state with its neighbours, so fanning
points out across a process pool changes nothing about the rows — only
the wall clock.  :func:`run_reports` is the single chokepoint the sweep
and replication helpers go through:

* ``workers=1`` (the default) runs points serially in-process, exactly
  like the historical code path — tests and small sweeps pay no pool
  overhead.
* ``workers=N`` fans points out over a ``ProcessPoolExecutor`` and
  reassembles results in submission order, so the output is
  byte-identical to the serial path.
* ``cache=`` layers an on-disk result cache (JSON, one file per config
  under ``results/.sweep_cache/`` by default) keyed by a stable hash of
  the :class:`~repro.sim.config.SimConfig` dataclass.  Entries record a
  schema version and ``repro.__version__`` and are ignored when either
  is stale, so upgrading the simulator silently invalidates old rows.
* ``progress=`` receives a :class:`PointStatus` as each point lands, so
  long sweeps can report live status.
* ``on_result=`` is the journal hook campaign runners build on: it
  receives ``(index, report, elapsed, cached)`` the moment each point's
  result exists (completion order under a pool, not submission order),
  so a crash between points loses at most the in-flight work.
* ``failures="return"`` turns a point that raises into a
  :class:`PointFailure` entry instead of aborting the whole batch —
  the campaign runner records and retries failures individually.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from .config import SimConfig
from .simulator import run_simulation

Report = Dict[str, object]
ProgressCallback = Callable[["PointStatus"], None]
#: journal hook: (index, report-or-PointFailure, elapsed, cached)
ResultCallback = Callable[[int, object, float, bool], None]

#: bump when the report schema or run semantics change in a way that
#: makes previously cached rows incomparable.
SCHEMA_VERSION = 1

#: default on-disk location, next to the exported figure CSVs.
DEFAULT_CACHE_DIR = os.path.join("results", ".sweep_cache")

# Default object reprs embed a memory address; a key built from one
# would vary run to run (and could collide across runs), so any config
# carrying such a field is treated as uncacheable instead.
_MEMORY_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+>")


@dataclass(frozen=True)
class PointStatus:
    """Progress record delivered once per completed sweep point."""

    index: int  #: position in the submitted config sequence
    total: int  #: number of points in the sweep
    elapsed: float  #: seconds the simulation took (0.0 on a cache hit)
    cached: bool  #: True when the row came from the result cache


@dataclass(frozen=True)
class PointFailure:
    """Stand-in result for a point whose simulation raised.

    Only produced under ``failures="return"``; callers distinguish a
    failed point from a report with ``isinstance``.
    """

    error: str  #: ``repr()`` of the exception the point raised
    elapsed: float  #: seconds spent before the failure


def _canonical(value: object) -> Optional[str]:
    """A repr that is stable across processes, or None if none exists."""
    if isinstance(value, dict):
        parts = []
        for key in sorted(value, key=repr):
            text = _canonical(value[key])
            if text is None:
                return None
            parts.append(f"{key!r}: {text}")
        return "{" + ", ".join(parts) + "}"
    if isinstance(value, (list, tuple)):
        items = [_canonical(item) for item in value]
        if any(item is None for item in items):
            return None
        body = ", ".join(items)  # type: ignore[arg-type]
        return f"[{body}]" if isinstance(value, list) else f"({body})"
    text = repr(value)
    if _MEMORY_ADDRESS.search(text):
        return None
    return text


def config_cache_key(config: SimConfig) -> Optional[str]:
    """Stable hash of a config, or None when the config is uncacheable.

    The key folds in every dataclass field (sorted by name), so any two
    configs that could produce different rows hash differently.  Fields
    whose values have no process-stable repr (default object reprs with
    memory addresses — e.g. a hand-built fault model without
    ``__repr__``) make the whole config uncacheable rather than risking
    a wrong hit.
    """
    parts: List[str] = []
    for field in sorted(dataclasses.fields(config), key=lambda f: f.name):
        text = _canonical(getattr(config, field.name))
        if text is None:
            return None
        parts.append(f"{field.name}={text}")
    blob = ";".join(parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SweepCache:
    """One-file-per-config JSON result cache.

    Entries carry ``schema`` (:data:`SCHEMA_VERSION`) and ``version``
    (``repro.__version__``); :meth:`get` ignores entries where either
    does not match the running library, so stale rows are re-simulated
    rather than trusted.  Hits and misses are counted for reporting.
    """

    def __init__(self, path: str = DEFAULT_CACHE_DIR) -> None:
        self.path = str(path)
        self.hits = 0
        self.misses = 0

    def _file(self, key: str) -> str:
        return os.path.join(self.path, key + ".json")

    @staticmethod
    def _library_version() -> str:
        from .. import __version__

        return __version__

    def get(self, key: Optional[str]) -> Optional[Report]:
        if key is None:
            self.misses += 1
            return None
        try:
            with open(self._file(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != SCHEMA_VERSION
            or entry.get("version") != self._library_version()
            or not isinstance(entry.get("report"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["report"]

    def put(self, key: Optional[str], report: Report) -> bool:
        if key is None:
            return False
        os.makedirs(self.path, exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "version": self._library_version(),
            "report": report,
        }
        try:
            blob = json.dumps(entry)
        except (TypeError, ValueError):
            return False  # non-JSON report value: skip, don't fail the sweep
        target = self._file(key)
        tmp = target + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(blob)
        os.replace(tmp, target)
        return True

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        try:
            names = os.listdir(self.path)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.remove(os.path.join(self.path, name))
                    removed += 1
                except OSError:
                    pass
        return removed


CacheSpec = Union[None, bool, str, SweepCache]


def resolve_cache(cache: CacheSpec) -> Optional[SweepCache]:
    """Normalise the ``cache=`` argument the sweep helpers accept.

    ``None``/``False`` disable caching, ``True`` uses the default
    directory, a string is a directory path, and a :class:`SweepCache`
    passes through (letting callers share hit/miss counters).
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return SweepCache()
    if isinstance(cache, SweepCache):
        return cache
    return SweepCache(str(cache))


def _run_point(config: SimConfig) -> Tuple[Report, float]:
    """Top-level (spawn-safe, picklable) pool worker: run one point."""
    start = time.perf_counter()
    report = run_simulation(config).report
    return report, time.perf_counter() - start


def run_reports(
    configs: Iterable[SimConfig],
    workers: Optional[int] = 1,
    cache: CacheSpec = None,
    progress: Optional[ProgressCallback] = None,
    on_result: Optional[ResultCallback] = None,
    failures: str = "raise",
) -> List[Report]:
    """Run one simulation per config; reports in submission order.

    ``workers=1`` runs in-process (the exact historical serial path);
    ``workers=N`` uses a process pool of N; ``workers=None`` uses one
    worker per CPU.  Rows are reassembled in submission order, so the
    result is independent of worker count.

    ``on_result`` is called with ``(index, report, elapsed, cached)`` as
    each point's result becomes available — in completion order under a
    pool — so callers can journal results durably before the batch
    finishes.  With ``failures="return"``, a point whose simulation
    raises contributes a :class:`PointFailure` (delivered to
    ``on_result`` and placed in the returned list) instead of aborting
    the remaining points; the default ``failures="raise"`` re-raises.
    """
    if failures not in ("raise", "return"):
        raise ValueError(
            f"failures must be 'raise' or 'return', not {failures!r}"
        )
    config_list = list(configs)
    total = len(config_list)
    store = resolve_cache(cache)
    reports: List[Optional[Report]] = [None] * total

    def landed(index: int, report: object, elapsed: float,
               cached: bool) -> None:
        reports[index] = report  # type: ignore[assignment]
        failed = isinstance(report, PointFailure)
        if store is not None and not cached and not failed:
            store.put(keys[index], report)  # type: ignore[arg-type]
        if on_result is not None:
            on_result(index, report, elapsed, cached)
        if progress is not None:
            progress(PointStatus(index, total, elapsed, cached))

    pending: List[int] = []
    keys: List[Optional[str]] = [None] * total
    for index, config in enumerate(config_list):
        if store is not None:
            keys[index] = config_cache_key(config)
            hit = store.get(keys[index])
            if hit is not None:
                landed(index, hit, 0.0, True)
                continue
        pending.append(index)

    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(pending) <= 1:
        for index in pending:
            start = time.perf_counter()
            try:
                report, elapsed = _run_point(config_list[index])
            except Exception as exc:
                if failures == "raise":
                    raise
                report = PointFailure(  # type: ignore[assignment]
                    repr(exc), time.perf_counter() - start
                )
                elapsed = report.elapsed  # type: ignore[union-attr]
            landed(index, report, elapsed, False)
    else:
        pool_size = min(workers, len(pending))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            waiting = {
                pool.submit(_run_point, config_list[index]): index
                for index in pending
            }
            start = time.perf_counter()
            while waiting:
                done, _ = wait(set(waiting), return_when=FIRST_COMPLETED)
                for future in done:
                    index = waiting.pop(future)
                    try:
                        report, elapsed = future.result()
                    except Exception as exc:
                        if failures == "raise":
                            raise
                        report = PointFailure(
                            repr(exc), time.perf_counter() - start
                        )
                        elapsed = report.elapsed
                    landed(index, report, elapsed, False)
    return reports  # type: ignore[return-value]
