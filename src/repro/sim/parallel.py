"""Parallel sweep execution with a deterministic on-disk result cache.

Every figure reproduction funnels through sweeps whose points are
embarrassingly parallel: each ``run_simulation`` call is bit-for-bit
seeded-deterministic and shares no state with its neighbours, so fanning
points out across a process pool changes nothing about the rows — only
the wall clock.  :func:`run_reports` is the single chokepoint the sweep
and replication helpers go through:

* ``workers=1`` (the default) runs points serially in-process, exactly
  like the historical code path — tests and small sweeps pay no pool
  overhead.
* ``workers=N`` fans points out over a ``ProcessPoolExecutor`` and
  reassembles results in submission order, so the output is
  byte-identical to the serial path.
* ``cache=`` layers an on-disk result cache (JSON, one file per config
  under ``results/.sweep_cache/`` by default) keyed by a stable hash of
  the :class:`~repro.sim.config.SimConfig` dataclass.  Entries record a
  schema version and ``repro.__version__`` and are ignored when either
  is stale, so upgrading the simulator silently invalidates old rows.
* ``progress=`` receives a :class:`PointStatus` as each point lands, so
  long sweeps can report live status.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from .config import SimConfig
from .simulator import run_simulation

Report = Dict[str, object]
ProgressCallback = Callable[["PointStatus"], None]

#: bump when the report schema or run semantics change in a way that
#: makes previously cached rows incomparable.
SCHEMA_VERSION = 1

#: default on-disk location, next to the exported figure CSVs.
DEFAULT_CACHE_DIR = os.path.join("results", ".sweep_cache")

# Default object reprs embed a memory address; a key built from one
# would vary run to run (and could collide across runs), so any config
# carrying such a field is treated as uncacheable instead.
_MEMORY_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+>")


@dataclass(frozen=True)
class PointStatus:
    """Progress record delivered once per completed sweep point."""

    index: int  #: position in the submitted config sequence
    total: int  #: number of points in the sweep
    elapsed: float  #: seconds the simulation took (0.0 on a cache hit)
    cached: bool  #: True when the row came from the result cache


def _canonical(value: object) -> Optional[str]:
    """A repr that is stable across processes, or None if none exists."""
    if isinstance(value, dict):
        parts = []
        for key in sorted(value, key=repr):
            text = _canonical(value[key])
            if text is None:
                return None
            parts.append(f"{key!r}: {text}")
        return "{" + ", ".join(parts) + "}"
    if isinstance(value, (list, tuple)):
        items = [_canonical(item) for item in value]
        if any(item is None for item in items):
            return None
        body = ", ".join(items)  # type: ignore[arg-type]
        return f"[{body}]" if isinstance(value, list) else f"({body})"
    text = repr(value)
    if _MEMORY_ADDRESS.search(text):
        return None
    return text


def config_cache_key(config: SimConfig) -> Optional[str]:
    """Stable hash of a config, or None when the config is uncacheable.

    The key folds in every dataclass field (sorted by name), so any two
    configs that could produce different rows hash differently.  Fields
    whose values have no process-stable repr (default object reprs with
    memory addresses — e.g. a hand-built fault model without
    ``__repr__``) make the whole config uncacheable rather than risking
    a wrong hit.
    """
    parts: List[str] = []
    for field in sorted(dataclasses.fields(config), key=lambda f: f.name):
        text = _canonical(getattr(config, field.name))
        if text is None:
            return None
        parts.append(f"{field.name}={text}")
    blob = ";".join(parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SweepCache:
    """One-file-per-config JSON result cache.

    Entries carry ``schema`` (:data:`SCHEMA_VERSION`) and ``version``
    (``repro.__version__``); :meth:`get` ignores entries where either
    does not match the running library, so stale rows are re-simulated
    rather than trusted.  Hits and misses are counted for reporting.
    """

    def __init__(self, path: str = DEFAULT_CACHE_DIR) -> None:
        self.path = str(path)
        self.hits = 0
        self.misses = 0

    def _file(self, key: str) -> str:
        return os.path.join(self.path, key + ".json")

    @staticmethod
    def _library_version() -> str:
        from .. import __version__

        return __version__

    def get(self, key: Optional[str]) -> Optional[Report]:
        if key is None:
            self.misses += 1
            return None
        try:
            with open(self._file(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != SCHEMA_VERSION
            or entry.get("version") != self._library_version()
            or not isinstance(entry.get("report"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["report"]

    def put(self, key: Optional[str], report: Report) -> bool:
        if key is None:
            return False
        os.makedirs(self.path, exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "version": self._library_version(),
            "report": report,
        }
        try:
            blob = json.dumps(entry)
        except (TypeError, ValueError):
            return False  # non-JSON report value: skip, don't fail the sweep
        target = self._file(key)
        tmp = target + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(blob)
        os.replace(tmp, target)
        return True

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        try:
            names = os.listdir(self.path)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.remove(os.path.join(self.path, name))
                    removed += 1
                except OSError:
                    pass
        return removed


CacheSpec = Union[None, bool, str, SweepCache]


def resolve_cache(cache: CacheSpec) -> Optional[SweepCache]:
    """Normalise the ``cache=`` argument the sweep helpers accept.

    ``None``/``False`` disable caching, ``True`` uses the default
    directory, a string is a directory path, and a :class:`SweepCache`
    passes through (letting callers share hit/miss counters).
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return SweepCache()
    if isinstance(cache, SweepCache):
        return cache
    return SweepCache(str(cache))


def _run_point(config: SimConfig) -> Tuple[Report, float]:
    """Top-level (spawn-safe, picklable) pool worker: run one point."""
    start = time.perf_counter()
    report = run_simulation(config).report
    return report, time.perf_counter() - start


def run_reports(
    configs: Iterable[SimConfig],
    workers: Optional[int] = 1,
    cache: CacheSpec = None,
    progress: Optional[ProgressCallback] = None,
) -> List[Report]:
    """Run one simulation per config; reports in submission order.

    ``workers=1`` runs in-process (the exact historical serial path);
    ``workers=N`` uses a process pool of N; ``workers=None`` uses one
    worker per CPU.  Rows are reassembled in submission order, so the
    result is independent of worker count.
    """
    config_list = list(configs)
    total = len(config_list)
    store = resolve_cache(cache)
    reports: List[Optional[Report]] = [None] * total

    pending: List[int] = []
    keys: List[Optional[str]] = [None] * total
    for index, config in enumerate(config_list):
        if store is not None:
            keys[index] = config_cache_key(config)
            hit = store.get(keys[index])
            if hit is not None:
                reports[index] = hit
                if progress is not None:
                    progress(PointStatus(index, total, 0.0, True))
                continue
        pending.append(index)

    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1 or len(pending) <= 1:
        for index in pending:
            report, elapsed = _run_point(config_list[index])
            reports[index] = report
            if store is not None:
                store.put(keys[index], report)
            if progress is not None:
                progress(PointStatus(index, total, elapsed, False))
    else:
        pool_size = min(workers, len(pending))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = [
                (index, pool.submit(_run_point, config_list[index]))
                for index in pending
            ]
            for index, future in futures:
                report, elapsed = future.result()
                reports[index] = report
                if store is not None:
                    store.put(keys[index], report)
                if progress is not None:
                    progress(PointStatus(index, total, elapsed, False))
    return reports  # type: ignore[return-value]
