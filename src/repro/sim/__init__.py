"""Simulation driver: configuration, runs, sweeps, replication."""
