"""Simulation driver: configuration, runs, sweeps (serial or
process-pool parallel with on-disk result caching), replication."""
