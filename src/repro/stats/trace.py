"""Introspection helpers: message timelines and network heat maps.

Everything here reads state the simulator already keeps (message
timestamps, buffer occupancy, per-channel flit counts), so tracing costs
nothing unless asked for.  Used by the examples and handy when debugging
a protocol change: ``occupancy_snapshot`` shows where worms are parked,
``channel_heatmap`` shows where the traffic actually went.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.engine import Engine
    from ..network.message import Message


def message_timeline(message: "Message") -> List[Tuple[str, object]]:
    """The lifecycle events of a message, in order, as (event, value)."""
    events: List[Tuple[str, object]] = [
        ("created", message.created_at),
        ("src", message.src),
        ("dst", message.dst),
        ("payload_flits", message.payload_length),
        ("wire_flits", message.wire_length),
        ("attempts", message.attempts),
        ("kills", message.kills),
        ("fkills", message.fkills),
    ]
    # One entry per kill across attempts; indexed keys keep the pairs
    # unique (callers build dicts from the timeline).
    for index, (cycle, cause) in enumerate(message.kill_history):
        events.append((f"kill_{index}", f"t={cycle} {cause}"))
    if message.first_inject_at is not None:
        events.append(("first_injection", message.first_inject_at))
    if message.header_consumed_at is not None:
        events.append(("header_at_destination", message.header_consumed_at))
    if message.committed_at is not None:
        events.append(("committed", message.committed_at))
    if message.delivered_at is not None:
        events.append(("delivered", message.delivered_at))
        events.append(("total_latency", message.total_latency()))
    events.append(("phase", message.phase.value))
    return events


def format_timeline(message: "Message") -> str:
    """Human-readable one-message trace."""
    lines = [f"message {message.uid}: {message.src} -> {message.dst}"]
    for event, value in message_timeline(message):
        lines.append(f"  {event:22s} {value}")
    return "\n".join(lines)


def buffer_occupancy(engine: "Engine") -> Dict[int, int]:
    """Total flits buffered at each router (including staged arrivals)."""
    out: Dict[int, int] = {}
    for router in engine.routers:
        total = sum(
            buf.occupancy for port in router.in_buffers for buf in port
        )
        out[router.node_id] = total
    return out


def occupancy_snapshot(engine: "Engine") -> str:
    """ASCII grid of buffered flits per router (2D arrays only).

    Routers are laid out by their topology coordinates; each cell shows
    the flit count, with ``.`` for empty.  Falls back to a flat listing
    for non-2D topologies.
    """
    occupancy = buffer_occupancy(engine)
    topology = engine.topology
    coords0 = topology.coords(0)
    if len(coords0) != 2:
        cells = [f"{node}:{occ}" for node, occ in occupancy.items() if occ]
        return "occupancy: " + (" ".join(cells) if cells else "(empty)")
    radix = getattr(topology, "radix", None)
    if radix is None:  # pragma: no cover - 2D coords imply an array here
        return "occupancy: (unknown layout)"
    rows = []
    for x in range(radix):
        cells = []
        for y in range(radix):
            occ = occupancy[topology.node_at((x, y))]
            cells.append(f"{occ:3d}" if occ else "  .")
        rows.append(" ".join(cells))
    return "\n".join(rows)


def channel_heatmap(engine: "Engine", top: int = 10) -> List[Dict[str, object]]:
    """The ``top`` busiest link channels by flits carried."""
    # (src, dst) tiebreak: equal flit counts are common in short or
    # symmetric runs, and Python's sort is stable on construction order,
    # which is not part of the reproducibility contract.
    links = sorted(
        engine.network.link_channels,
        key=lambda ch: (-ch.flits_carried, ch.src_node, ch.dst_node),
    )
    return [
        {
            "link": f"{ch.src_node}->{ch.dst_node}",
            "dim": ch.dim,
            "direction": ch.direction,
            "wrap": ch.is_wrap,
            "flits": ch.flits_carried,
            "dead": ch.dead,
        }
        for ch in links[:top]
    ]


def channel_load_stats(engine: "Engine") -> Dict[str, float]:
    """Aggregate utilisation of the link channels over the run so far.

    ``utilisation`` is flits carried per channel-cycle; ``imbalance`` is
    the max/mean ratio (1.0 = perfectly balanced -- adaptive routing
    should sit far closer to 1.0 than deterministic routing on skewed
    traffic).  Both are computed over *live* channels only: a dead
    channel carries nothing by construction, and counting it would
    overstate imbalance in exactly the fault scenarios where the metric
    matters.
    """
    cycles = max(engine.now, 1)
    channels = engine.network.link_channels
    counts = [ch.flits_carried for ch in channels if not ch.dead]
    dead = len(channels) - len(counts)
    if not counts:
        return {
            "utilisation": 0.0, "imbalance": 0.0,
            "live_channels": 0, "dead_channels": dead,
        }
    mean = sum(counts) / len(counts)
    return {
        "utilisation": mean / cycles,
        "imbalance": (max(counts) / mean) if mean else 0.0,
        "live_channels": len(counts),
        "dead_channels": dead,
    }
