"""Measurement: collectors, latency summaries, tables, traces."""
