"""Run-level statistics collection.

The collector distinguishes the *measurement window*: messages created in
``[warmup_end, measure_end)`` are flagged ``measured`` and contribute to
latency statistics; throughput is the payload delivered during the window
regardless of creation time (the standard steady-state convention).
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict, List, Optional

from .latency import LatencySummary, summarize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.message import Message


class StatsCollector:
    """Counters and samples accumulated by the engine during a run."""

    def __init__(
        self, num_nodes: int, warmup_end: int = 0, measure_end: Optional[int] = None
    ) -> None:
        self.num_nodes = num_nodes
        self.warmup_end = warmup_end
        self.measure_end = measure_end
        self.counters: Counter = Counter()
        self.total_latencies: List[int] = []
        self.network_latencies: List[int] = []
        self.kill_counts: List[int] = []
        self.measured_created = 0
        self.measured_delivered = 0

    # ------------------------------------------------------------------
    # Event hooks (called by the engine)
    # ------------------------------------------------------------------

    def in_window(self, now: int) -> bool:
        if self.measure_end is None:
            return now >= self.warmup_end
        return self.warmup_end <= now < self.measure_end

    def on_created(self, message: "Message", now: int) -> None:
        message.measured = self.in_window(now)
        self.counters["messages_created"] += 1
        self.counters["payload_flits_created"] += message.payload_length
        if message.measured:
            self.measured_created += 1

    def on_attempt(self, message: "Message") -> None:
        self.counters["injection_attempts"] += 1
        if message.attempts > 1:
            self.counters["retransmissions"] += 1

    def on_kill(self, message: "Message", cause: str) -> None:
        self.counters["kills"] += 1
        self.counters[f"kills_{cause}"] += 1

    def on_flit_injected(self, is_pad: bool) -> None:
        self.counters["flits_injected"] += 1
        if is_pad:
            self.counters["pad_flits_injected"] += 1

    def on_injection_stall(self) -> None:
        """An injector spent a cycle stalled on injection credits."""
        self.counters["injection_stall_cycles"] += 1

    def on_flits_ejected(self, count: int) -> None:
        """Flits consumed off an ejection channel this cycle."""
        self.counters["flits_ejected"] += count

    def on_kill_segment_flushed(self) -> None:
        """A kill wavefront flushed one worm buffer segment."""
        self.counters["kill_segments_flushed"] += 1

    def on_escape_grant(self, message: "Message") -> None:
        """Duato instrumentation: a header took an escape channel (a PDS)."""
        self.counters["escape_grants"] += 1

    def on_delivery(self, message: "Message", now: int, corrupt: bool) -> None:
        self.counters["messages_delivered"] += 1
        # Window-independent payload total (the interval sampler takes
        # per-interval deltas of this; the window counter below cannot
        # serve, since it freezes outside the measurement window).
        self.counters["payload_flits_delivered"] += message.payload_length
        if corrupt:
            self.counters["corrupt_deliveries"] += 1
        if message.used_escape:
            self.counters["messages_used_escape"] += 1
        if self.in_window(now):
            self.counters["window_payload_flits_delivered"] += (
                message.payload_length
            )
        if message.measured:
            self.measured_delivered += 1
            total = message.total_latency()
            network = message.network_latency()
            if total is not None:
                self.total_latencies.append(total)
            if network is not None:
                self.network_latencies.append(network)
            self.kill_counts.append(message.kills + message.fkills)

    def on_fault_injected(self) -> None:
        self.counters["faults_injected"] += 1

    def on_late_corruption(self) -> None:
        """FCR safety monitor: corruption seen too late to FKILL.

        The padding rule is sized so this never fires; tests assert the
        counter stays zero.
        """
        self.counters["late_corruption"] += 1

    def on_generation_blocked(self) -> None:
        self.counters["generation_blocked"] += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def latency_summary(self) -> LatencySummary:
        return summarize(self.total_latencies)

    def network_latency_summary(self) -> LatencySummary:
        return summarize(self.network_latencies)

    def throughput_flits_per_node_cycle(self) -> float:
        """Accepted payload throughput over the measurement window."""
        if self.measure_end is None:
            raise ValueError("throughput needs a bounded measurement window")
        window = self.measure_end - self.warmup_end
        if window <= 0:
            return 0.0
        delivered = self.counters["window_payload_flits_delivered"]
        return delivered / (self.num_nodes * window)

    def kill_rate(self) -> float:
        """Kills per delivered message (measured sample)."""
        if not self.kill_counts:
            return 0.0
        return sum(self.kill_counts) / len(self.kill_counts)

    def pad_overhead(self) -> float:
        """Fraction of injected flits that were padding."""
        injected = self.counters["flits_injected"]
        if injected == 0:
            return 0.0
        return self.counters["pad_flits_injected"] / injected

    def undelivered_measured(self) -> int:
        """Measured messages still undelivered at the end (censored)."""
        return self.measured_created - self.measured_delivered

    def report(self) -> Dict[str, object]:
        """Flat summary dictionary used by sweeps and benchmarks."""
        latency = self.latency_summary()
        network = self.network_latency_summary()
        out: Dict[str, object] = {
            "latency_mean": latency.mean,
            "latency_p95": latency.p95,
            "latency_p99": latency.p99,
            "latency_std": latency.std,
            "network_latency_mean": network.mean,
            "sample": latency.count,
            "kill_rate": self.kill_rate(),
            "pad_overhead": self.pad_overhead(),
            "undelivered": self.undelivered_measured(),
        }
        if self.measure_end is not None:
            out["throughput"] = self.throughput_flits_per_node_cycle()
        out.update(self.counters)
        return out
