"""Self-contained SVG rendering of network state.

``render_network_svg`` draws a 2D array topology with routers sized by
buffer occupancy and links coloured by carried-traffic intensity --
the visual counterpart of :func:`repro.stats.trace.channel_heatmap`.
No dependencies: the output is a plain SVG string, written by the CLI's
``trace`` command or from user code::

    from repro import SimConfig, run_simulation
    from repro.stats.svg import render_network_svg

    result = run_simulation(SimConfig(...), keep_engine=True)
    open("network.svg", "w").write(render_network_svg(result.engine))
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.engine import Engine

CELL = 80  # px between router centres
RADIUS = 14
MARGIN = 50


def _heat_colour(fraction: float) -> str:
    """White -> amber -> red ramp for link utilisation."""
    fraction = max(0.0, min(1.0, fraction))
    if fraction < 0.5:
        # white (255,255,255) -> amber (255,170,0)
        t = fraction / 0.5
        g = int(255 - t * 85)
        b = int(255 - t * 255)
        return f"rgb(255,{g},{b})"
    t = (fraction - 0.5) / 0.5
    g = int(170 - t * 170)
    return f"rgb(255,{g},0)"


def render_network_svg(engine: "Engine", title: str = "") -> str:
    """Render a 2D array network's current state as an SVG document.

    Raises ``ValueError`` for non-2D topologies (use the textual
    ``occupancy_snapshot`` there instead).
    """
    topology = engine.topology
    if len(topology.coords(0)) != 2:
        raise ValueError(
            "SVG rendering supports 2D arrays; use "
            "repro.stats.trace.occupancy_snapshot for other layouts"
        )
    radix = getattr(topology, "radix", None)
    if radix is None:
        raise ValueError("SVG rendering needs a k-ary array topology")

    max_flits = max(
        (ch.flits_carried for ch in engine.network.link_channels),
        default=0,
    )
    size = MARGIN * 2 + CELL * (radix - 1)
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size + 30}" viewBox="0 0 {size} {size + 30}">',
        f'<rect width="{size}" height="{size + 30}" fill="#fbfaf8"/>',
    ]
    if title:
        parts.append(
            f'<text x="{size / 2}" y="{size + 18}" text-anchor="middle" '
            f'font-family="monospace" font-size="13">{title}</text>'
        )

    def centre(node: int):
        x, y = topology.coords(node)
        return MARGIN + y * CELL, MARGIN + x * CELL

    # Links first (under the routers).  Wrap links are drawn as short
    # outward stubs rather than lines across the whole figure.
    for channel in engine.network.link_channels:
        sx, sy = centre(channel.src_node)
        dx, dy = centre(channel.dst_node)
        heat = channel.flits_carried / max_flits if max_flits else 0.0
        colour = "#888" if channel.dead else _heat_colour(heat)
        dash = ' stroke-dasharray="4,3"' if channel.dead else ""
        width = 1.5 + 3.5 * heat
        if channel.is_wrap:
            # Outward stub in the direction of travel: dimension 0 maps
            # to screen y (rows), dimension 1 to screen x (columns).
            if channel.dim == 1:
                ox, oy = channel.direction * CELL * 0.3, 0.0
            else:
                ox, oy = 0.0, channel.direction * CELL * 0.3
            parts.append(
                f'<line x1="{sx}" y1="{sy}" '
                f'x2="{sx + ox:.1f}" y2="{sy + oy:.1f}" '
                f'stroke="{colour}" stroke-width="{width:.1f}"{dash}/>'
            )
        else:
            parts.append(
                f'<line x1="{sx}" y1="{sy}" x2="{dx}" y2="{dy}" '
                f'stroke="{colour}" stroke-width="{width:.1f}"{dash}/>'
            )

    # Routers: radius fixed, fill darkens with buffered flits.
    for router in engine.routers:
        occupancy = sum(
            buf.occupancy for port in router.in_buffers for buf in port
        )
        capacity = sum(
            buf.depth for port in router.in_buffers for buf in port
        )
        fill_frac = occupancy / capacity if capacity else 0.0
        shade = int(235 - fill_frac * 180)
        cx, cy = centre(router.node_id)
        parts.append(
            f'<circle cx="{cx}" cy="{cy}" r="{RADIUS}" '
            f'fill="rgb({shade},{shade},240)" stroke="#445"/>'
        )
        parts.append(
            f'<text x="{cx}" y="{cy + 4}" text-anchor="middle" '
            f'font-family="monospace" font-size="10">'
            f"{router.node_id}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Sparklines (interval-sampler time series)
# ----------------------------------------------------------------------

SPARK_WIDTH = 480
SPARK_HEIGHT = 48
SPARK_GAP = 14
SPARK_LABEL = 130


def _spark_values(values: Sequence[Optional[float]]) -> List[float]:
    """Sanitize a sampler series for plotting.

    Interval samplers emit ``None`` for windows with nothing to
    average (an all-quiescent interval under the fast engine's event
    skipping, or simply no deliveries); plot those as 0.0 — the same
    convention ``IntervalSampler.to_svg`` uses — instead of letting
    ``float(None)``/``min`` blow up the whole heartbeat render.
    """
    return [0.0 if v is None else float(v) for v in values]


def _polyline_points(
    values: Sequence[float], width: int, height: int
) -> str:
    lo = min(values)
    hi = max(values)
    span = hi - lo
    step = width / max(len(values) - 1, 1)
    points = []
    for i, value in enumerate(values):
        # A constant series draws as a midline, not a degenerate point.
        frac = (value - lo) / span if span else 0.5
        points.append(f"{i * step:.1f},{height * (1 - frac):.1f}")
    return " ".join(points)


def render_sparkline(
    values: Sequence[float],
    width: int = SPARK_WIDTH,
    height: int = SPARK_HEIGHT,
    colour: str = "#2266aa",
) -> str:
    """One series as a bare ``<polyline>`` fragment (no document)."""
    if not values:
        return ""
    cleaned = _spark_values(values)
    return (
        f'<polyline fill="none" stroke="{colour}" stroke-width="1.5" '
        f'points="{_polyline_points(cleaned, width, height)}"/>'
    )


def render_sparkline_rows(
    rows: Sequence[Tuple[str, Sequence[float]]],
    title: str = "",
) -> str:
    """Stacked labelled sparklines as one SVG document.

    ``rows`` is ``[(label, values), ...]`` -- typically the output of
    :meth:`repro.obs.IntervalSampler.series` per metric.  Each row is
    scaled independently (the point is shape over time, not cross-metric
    comparison); min/max annotations carry the magnitudes.
    """
    top = 28 if title else 8
    row_height = SPARK_HEIGHT + SPARK_GAP
    width = SPARK_LABEL + SPARK_WIDTH + 90
    height = top + row_height * len(rows) + 8
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="#fbfaf8"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="18" text-anchor="middle" '
            f'font-family="monospace" font-size="13">{title}</text>'
        )
    for index, (label, raw) in enumerate(rows):
        y = top + index * row_height
        parts.append(
            f'<text x="{SPARK_LABEL - 8}" y="{y + SPARK_HEIGHT / 2 + 4}" '
            f'text-anchor="end" font-family="monospace" '
            f'font-size="11">{label}</text>'
        )
        values = _spark_values(raw)
        if values:
            line = render_sparkline(values)
            parts.append(
                f'<g transform="translate({SPARK_LABEL},{y})">{line}</g>'
            )
            parts.append(
                f'<text x="{SPARK_LABEL + SPARK_WIDTH + 6}" y="{y + 10}" '
                f'font-family="monospace" font-size="9">'
                f"max {max(values):g}</text>"
            )
            parts.append(
                f'<text x="{SPARK_LABEL + SPARK_WIDTH + 6}" '
                f'y="{y + SPARK_HEIGHT}" '
                f'font-family="monospace" font-size="9">'
                f"min {min(values):g}</text>"
            )
        else:
            parts.append(
                f'<text x="{SPARK_LABEL}" y="{y + SPARK_HEIGHT / 2 + 4}" '
                f'font-family="monospace" font-size="10" '
                f'fill="#999">(no samples)</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts)
