"""Latency summary helpers: mean, percentiles, variance, histograms.

The paper reports average message latency; its discussion of repeated
kills ("repeated kills can give some messages much larger latencies,
increasing the variance of message latency") makes the distribution tail
interesting too, so the summary keeps percentiles and variance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class LatencySummary:
    """Moments and quantiles of a latency sample."""

    count: int
    mean: float
    std: float
    minimum: int
    p50: float
    p95: float
    p99: float
    maximum: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def percentile(sorted_values: Sequence[int], q: float) -> float:
    """Linear-interpolation percentile of a pre-sorted sample."""
    if not sorted_values:
        raise ValueError("empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(sorted_values[low])
    frac = position - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


def summarize(values: Sequence[int]) -> LatencySummary:
    """Summary of a (possibly unsorted) latency sample."""
    if not values:
        return LatencySummary(0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0)
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    var = sum((v - mean) ** 2 for v in ordered) / n
    return LatencySummary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=ordered[0],
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
        p99=percentile(ordered, 0.99),
        maximum=ordered[-1],
    )


def histogram(
    values: Sequence[int], bin_width: int = 16
) -> List[Tuple[int, int]]:
    """Fixed-width histogram as (bin_start, count) pairs, sorted."""
    if bin_width < 1:
        raise ValueError("bin_width must be >= 1")
    bins: Dict[int, int] = {}
    for v in values:
        start = (v // bin_width) * bin_width
        bins[start] = bins.get(start, 0) + 1
    return sorted(bins.items())
