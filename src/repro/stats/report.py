"""Plain-text table rendering for sweep results and benchmarks."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows of dictionaries as an aligned ASCII table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells.append([_fmt(row.get(c, "")) for c in columns])
    widths = [
        max(len(line[i]) for line in cells) for i in range(len(columns))
    ]
    out_lines = []
    if title:
        out_lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths))
    out_lines.append(header)
    out_lines.append("-" * len(header))
    for line in cells[1:]:
        out_lines.append(
            "  ".join(c.rjust(w) for c, w in zip(line, widths))
        )
    return "\n".join(out_lines)


def format_series(
    rows: Sequence[Dict[str, object]],
    x: str,
    y: str,
    series: str = "config",
    title: Optional[str] = None,
) -> str:
    """Pivot sweep rows into one column per labelled series.

    The shape of a paper figure: x-axis values down the side, one column
    per curve.
    """
    labels: List[str] = []
    xs: List[object] = []
    table: Dict[object, Dict[str, object]] = {}
    for row in rows:
        label = str(row.get(series, y))
        if label not in labels:
            labels.append(label)
        xv = row[x]
        if xv not in table:
            table[xv] = {}
            xs.append(xv)
        table[xv][label] = row.get(y, "")
    pivot_rows = []
    for xv in xs:
        line: Dict[str, object] = {x: xv}
        for label in labels:
            line[label] = table[xv].get(label, "")
        pivot_rows.append(line)
    return format_table(pivot_rows, [x] + labels, title=title)
