"""Arbitrary-graph topology.

CR's deadlock recovery makes no assumption about the channel-dependency
structure, so it applies to irregular networks where no cycle-free
virtual-channel assignment is known.  This adapter turns any connected
(di)graph -- given as an adjacency mapping, an edge list, or a networkx
graph -- into a routable topology using all-pairs BFS.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from .base import LinkSpec, Topology


class GraphTopology(Topology):
    """Topology over an explicit adjacency structure.

    Parameters
    ----------
    adjacency:
        Mapping from node id to an iterable of neighbour ids.  Links are
        unidirectional as given; pass both directions for full-duplex
        networks (or use :func:`from_edges` with ``bidirectional=True``).
    """

    def __init__(self, adjacency: Mapping[int, Iterable[int]]) -> None:
        nodes = sorted(adjacency)
        if nodes != list(range(len(nodes))):
            raise ValueError("nodes must be densely numbered from 0")
        self._num_nodes = len(nodes)
        self._links: List[List[LinkSpec]] = []
        for node in nodes:
            specs = []
            for dst in adjacency[node]:
                if not 0 <= dst < self._num_nodes:
                    raise ValueError(f"edge {node}->{dst} leaves the graph")
                if dst == node:
                    raise ValueError(f"self-loop at node {node}")
                specs.append(LinkSpec(port=len(specs), dst=dst))
            self._links.append(specs)
        self._dist = self._all_pairs_bfs()
        unreachable = [
            (a, b)
            for a in range(self._num_nodes)
            for b in range(self._num_nodes)
            if self._dist[a][b] < 0
        ]
        if unreachable:
            a, b = unreachable[0]
            raise ValueError(
                f"graph is not strongly connected (no path {a}->{b})"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        bidirectional: bool = True,
    ) -> "GraphTopology":
        adjacency: Dict[int, List[int]] = {n: [] for n in range(num_nodes)}
        for a, b in edges:
            adjacency[a].append(b)
            if bidirectional:
                adjacency[b].append(a)
        return cls(adjacency)

    @classmethod
    def from_networkx(cls, graph) -> "GraphTopology":
        """Build from a networkx graph with integer nodes 0..n-1."""
        directed = graph.is_directed()
        adjacency: Dict[int, List[int]] = {
            n: [] for n in range(graph.number_of_nodes())
        }
        for a, b in graph.edges():
            adjacency[a].append(b)
            if not directed:
                adjacency[b].append(a)
        return cls(adjacency)

    # ------------------------------------------------------------------
    # Topology interface
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def name(self) -> str:
        return f"graph({self._num_nodes} nodes)"

    def links(self, node: int) -> Sequence[LinkSpec]:
        return self._links[node]

    def min_distance(self, src: int, dst: int) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        return self._dist[src][dst]

    def productive_links(self, node: int, dst: int) -> List[LinkSpec]:
        here = self._dist[node][dst]
        return [
            link
            for link in self._links[node]
            if self._dist[link.dst][dst] == here - 1
        ]

    def dor_link(self, node: int, dst: int) -> LinkSpec:
        """Deterministic choice: the lowest-numbered productive port.

        Note: unlike dimension order on a mesh, this fixed-order rule is
        *not* deadlock-free on general graphs -- which is exactly the
        case CR's recovery mechanism is meant to cover.
        """
        productive = self.productive_links(node, dst)
        if not productive:
            raise ValueError(f"dor_link called with node == dst ({node})")
        return productive[0]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _all_pairs_bfs(self) -> List[List[int]]:
        dist = []
        for src in range(self._num_nodes):
            row = [-1] * self._num_nodes
            row[src] = 0
            queue = deque([src])
            while queue:
                cur = queue.popleft()
                for link in self._links[cur]:
                    if row[link.dst] < 0:
                        row[link.dst] = row[cur] + 1
                        queue.append(link.dst)
            dist.append(row)
        return dist
