"""Network shapes: k-ary n-cubes, hypercubes, arbitrary graphs."""
