"""Binary hypercube topology.

Included to demonstrate CR's topology generality (the fault-tolerant
routing literature the paper positions against is largely
hypercube-based).  E-cube (lowest-differing-bit first) is the
deterministic order.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .base import LinkSpec, Topology


class Hypercube(Topology):
    """An n-dimensional binary hypercube (2**n nodes).

    Node ids are bit vectors; a node has one link port per dimension,
    port ``d`` flipping bit ``d``.
    """

    def __init__(self, dims: int) -> None:
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        self._num_nodes = 1 << dims
        self._links: List[List[LinkSpec]] = [
            [
                LinkSpec(
                    port=d,
                    dst=node ^ (1 << d),
                    dim=d,
                    direction=1 if node & (1 << d) == 0 else -1,
                )
                for d in range(dims)
            ]
            for node in range(self._num_nodes)
        ]

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def name(self) -> str:
        return f"{self.dims}-cube"

    def links(self, node: int) -> Sequence[LinkSpec]:
        return self._links[node]

    def coords(self, node: int) -> Tuple[int, ...]:
        self.validate_node(node)
        return tuple((node >> d) & 1 for d in range(self.dims))

    def node_at(self, coords: Tuple[int, ...]) -> int:
        if len(coords) != self.dims:
            raise ValueError(f"expected {self.dims} coordinates")
        node = 0
        for d, bit in enumerate(coords):
            if bit not in (0, 1):
                raise ValueError("hypercube coordinates are bits")
            node |= bit << d
        return node

    def min_distance(self, src: int, dst: int) -> int:
        self.validate_node(src)
        self.validate_node(dst)
        return bin(src ^ dst).count("1")

    def average_min_distance(self) -> float:
        """Closed form: each bit differs in exactly half the ordered
        pairs, so the all-pairs Hamming total is ``dims * n^2 / 2`` —
        integer arithmetic, bit-identical to the brute-force mean.
        """
        n = self._num_nodes
        total = self.dims * (n * n // 2)
        return total / (n * (n - 1))

    def productive_links(self, node: int, dst: int) -> List[LinkSpec]:
        diff = node ^ dst
        return [
            link for link in self._links[node] if diff & (1 << link.dim)
        ]

    def dor_link(self, node: int, dst: int) -> LinkSpec:
        diff = node ^ dst
        if diff == 0:
            raise ValueError(f"dor_link called with node == dst ({node})")
        lowest = (diff & -diff).bit_length() - 1
        return self._links[node][lowest]
