"""k-ary n-cube topologies: torus and mesh.

These are the paper's evaluation networks (2D torus with wraparound
channels is the headline case: CR provides deadlock-free adaptive routing
there with *no* virtual channels, where dimension-order routing needs two
and prior adaptive schemes need more).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .base import LinkSpec, Topology


class KAryNCube(Topology):
    """A k-ary n-cube, optionally with wraparound (torus) links.

    Nodes are numbered in row-major order of their coordinates; node
    coordinates are ``(c[0], ..., c[n-1])`` with ``c[0]`` varying
    slowest.  Each node has up to ``2n`` link ports ordered
    ``(dim 0, +), (dim 0, -), (dim 1, +), ...``; in a mesh, edge nodes
    simply lack the ports that would leave the array, and ports stay
    densely numbered.
    """

    def __init__(self, radix: int, dims: int, wrap: bool = True) -> None:
        if radix < 2:
            raise ValueError("radix must be >= 2")
        if dims < 1:
            raise ValueError("dims must be >= 1")
        if wrap and radix == 2:
            # A 2-ary torus would have duplicate links (+1 and -1 reach
            # the same neighbour); treat it as a mesh/hypercube instead.
            raise ValueError("2-ary torus is degenerate; use wrap=False")
        self.radix = radix
        self.dims = dims
        self.wrap = wrap
        self._num_nodes = radix**dims
        self._links: List[List[LinkSpec]] = [
            self._build_links(node) for node in range(self._num_nodes)
        ]

    # ------------------------------------------------------------------
    # Topology interface
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def name(self) -> str:
        kind = "torus" if self.wrap else "mesh"
        return f"{self.radix}-ary {self.dims}-{kind}"

    def links(self, node: int) -> Sequence[LinkSpec]:
        return self._links[node]

    def coords(self, node: int) -> Tuple[int, ...]:
        self.validate_node(node)
        out = []
        for _ in range(self.dims):
            out.append(node % self.radix)
            node //= self.radix
        return tuple(reversed(out))

    def node_at(self, coords: Tuple[int, ...]) -> int:
        if len(coords) != self.dims:
            raise ValueError(f"expected {self.dims} coordinates")
        node = 0
        for c in coords:
            if not 0 <= c < self.radix:
                raise ValueError(f"coordinate {c} out of range")
            node = node * self.radix + c
        return node

    def min_distance(self, src: int, dst: int) -> int:
        sc, dc = self.coords(src), self.coords(dst)
        return sum(self._dim_distance(s, d) for s, d in zip(sc, dc))

    def productive_links(self, node: int, dst: int) -> List[LinkSpec]:
        cur, goal = self.coords(node), self.coords(dst)
        wanted = set()
        for dim in range(self.dims):
            for direction in self._minimal_directions(cur[dim], goal[dim]):
                wanted.add((dim, direction))
        return [
            link
            for link in self._links[node]
            if (link.dim, link.direction) in wanted
        ]

    def dor_link(self, node: int, dst: int) -> LinkSpec:
        cur, goal = self.coords(node), self.coords(dst)
        for dim in range(self.dims):
            directions = self._minimal_directions(cur[dim], goal[dim])
            if not directions:
                continue
            direction = directions[0]  # ties resolved toward +1
            for link in self._links[node]:
                if link.dim == dim and link.direction == direction:
                    return link
            raise RuntimeError(
                f"no port for dim {dim} direction {direction} at {node}"
            )
        raise ValueError(f"dor_link called with node == dst ({node})")

    def average_min_distance(self) -> float:
        """Closed form over the product structure (the base class is
        O(n^2), which dominates ``SimConfig.build`` at radix 16).

        Distances are per-dimension sums and dimensions are
        independent, so the all-pairs total is ``dims`` times the
        one-dimension pair total times the number of coordinate
        combinations in the other dimensions — all integer arithmetic,
        so the result is bit-identical to the brute-force mean.
        """
        k = self.radix
        per_dim_total = sum(
            self._dim_distance(a, b) for a in range(k) for b in range(k)
        )
        n = self._num_nodes
        total = self.dims * per_dim_total * k ** (2 * (self.dims - 1))
        return total / (n * (n - 1))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _dim_distance(self, a: int, b: int) -> int:
        delta = abs(a - b)
        if self.wrap:
            return min(delta, self.radix - delta)
        return delta

    def _minimal_directions(self, cur: int, goal: int) -> List[int]:
        """Directions (+1/-1) that reduce distance in one dimension.

        In a torus with even radix and the two nodes exactly half-way
        apart, both directions are minimal (adaptive routing may use
        either; dimension-order deterministically takes +1).
        """
        if cur == goal:
            return []
        if not self.wrap:
            return [1] if goal > cur else [-1]
        forward = (goal - cur) % self.radix
        backward = (cur - goal) % self.radix
        if forward < backward:
            return [1]
        if backward < forward:
            return [-1]
        return [1, -1]

    def _build_links(self, node: int) -> List[LinkSpec]:
        coords = self.coords(node)
        links: List[LinkSpec] = []
        for dim in range(self.dims):
            c = coords[dim]
            for direction in (1, -1):
                nc = c + direction
                is_wrap = False
                if nc < 0 or nc >= self.radix:
                    if not self.wrap:
                        continue
                    nc %= self.radix
                    is_wrap = True
                neighbour = list(coords)
                neighbour[dim] = nc
                links.append(
                    LinkSpec(
                        port=len(links),
                        dst=self.node_at(tuple(neighbour)),
                        dim=dim,
                        direction=direction,
                        is_wrap=is_wrap,
                    )
                )
        return links


def torus(radix: int, dims: int = 2) -> KAryNCube:
    """A k-ary n-cube with wraparound links."""
    return KAryNCube(radix, dims, wrap=True)


def mesh(radix: int, dims: int = 2) -> KAryNCube:
    """A k-ary n-cube without wraparound links."""
    return KAryNCube(radix, dims, wrap=False)
