"""Topology abstraction.

A topology names the nodes, enumerates each node's outgoing links, and
answers the routing-relevant questions: minimal distance, the set of
*productive* links (those on some minimal path), and the deterministic
dimension-order choice.  Compressionless Routing itself is
topology-agnostic -- the paper lists "applicability to a wide variety of
network topologies" among its advantages -- so everything above this
interface works for tori, meshes, hypercubes, and arbitrary graphs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class LinkSpec:
    """One outgoing link of a node.

    Attributes
    ----------
    port:
        Index of this link among the node's link ports (dense from 0).
    dst:
        Neighbour node id.
    dim:
        Dimension the link travels in (-1 when not meaningful).
    direction:
        +1 / -1 within the dimension (0 when not meaningful).
    is_wrap:
        True for toroidal wraparound links (the dateline rule for
        deadlock-free dimension-order routing keys off this).
    """

    port: int
    dst: int
    dim: int = -1
    direction: int = 0
    is_wrap: bool = False


class Topology(abc.ABC):
    """Interface every network shape implements."""

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Number of nodes."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Human-readable description, e.g. ``8-ary 2-torus``."""

    @abc.abstractmethod
    def links(self, node: int) -> Sequence[LinkSpec]:
        """All outgoing links of ``node`` (port index == list position)."""

    @abc.abstractmethod
    def min_distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""

    @abc.abstractmethod
    def productive_links(self, node: int, dst: int) -> List[LinkSpec]:
        """Links of ``node`` that lie on some minimal path to ``dst``."""

    @abc.abstractmethod
    def dor_link(self, node: int, dst: int) -> LinkSpec:
        """The deterministic dimension-order (or fixed-order) choice."""

    def coords(self, node: int) -> Tuple[int, ...]:
        """Coordinates of ``node``; default is the bare id."""
        return (node,)

    def node_at(self, coords: Tuple[int, ...]) -> int:
        """Inverse of :meth:`coords`."""
        return coords[0]

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------

    def validate_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} out of range for {self.name} "
                f"({self.num_nodes} nodes)"
            )

    def average_min_distance(self) -> float:
        """Mean minimal distance over all ordered pairs (uniform traffic)."""
        n = self.num_nodes
        total = 0
        for a in range(n):
            for b in range(n):
                if a != b:
                    total += self.min_distance(a, b)
        return total / (n * (n - 1))

    def max_link_ports(self) -> int:
        """Largest number of link ports any node has."""
        return max(len(self.links(node)) for node in range(self.num_nodes))
