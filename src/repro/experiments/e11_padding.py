"""E11: padding overhead vs message length, distance, and buffer depth.

The padding rule charges every CR message up to ``Imin`` (path capacity
plus one) flits.  The paper's design discussion follows directly from
this table: "increasing buffer depth only increases padding overhead
without performance gain" (hence 2-flit CR buffers), padding "depends
only on the distance in flits" so it "is independent of the number of
virtual channels", and deep networks (long channel latency) pay more.

The analytic table is cross-checked against a measured simulation point:
the engine's observed pad fraction must match the prediction for the
run's traffic (the property tests do this exactly; here it is reported).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.padding import PaddingParams, cr_wire_length, padding_overhead
from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]

MESSAGE_LENGTHS = (4, 8, 16, 32, 64, 128)
BUFFER_DEPTHS = (1, 2, 4, 8)


def analytic_rows(hops: int) -> List[Row]:
    rows: List[Row] = []
    for depth in BUFFER_DEPTHS:
        params = PaddingParams(buffer_depth=depth)
        for length in MESSAGE_LENGTHS:
            wire = cr_wire_length(length, hops, params)
            rows.append(
                {
                    "buffer_depth": depth,
                    "payload": length,
                    "hops": hops,
                    "wire": wire,
                    "overhead": round(padding_overhead(length, wire), 3),
                }
            )
    return rows


def measured_row(scale: Scale) -> Row:
    config = scale.base_config(routing="cr", load=scale.loads[0])
    result = run_simulation(config)
    return {
        "payload": scale.message_length,
        "buffer_depth": config.buffer_depth,
        "measured_pad_overhead": round(
            float(result.report["pad_overhead"]), 3
        ),
        "delivered": result.report.get("messages_delivered", 0),
    }


def run(scale: Scale = QUICK) -> List[Row]:
    # Average hop count of uniform traffic on the scale's torus.
    hops = scale.dims * (scale.radix // 4)
    rows = analytic_rows(hops)
    measured = measured_row(scale)
    for row in rows:
        row["measured_pad_overhead"] = ""
    rows.append(
        {
            "buffer_depth": measured["buffer_depth"],
            "payload": measured["payload"],
            "hops": "sim",
            "wire": "",
            "overhead": "",
            "measured_pad_overhead": measured["measured_pad_overhead"],
        }
    )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "buffer_depth",
            "payload",
            "hops",
            "wire",
            "overhead",
            "measured_pad_overhead",
        ],
        title="E11: CR padding overhead (analytic + one measured point)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
