"""E02: sensitivity to the source timeout (paper Section 7).

A short timeout kills worms that are merely contended (needless
retransmissions); a long timeout leaves potential deadlocks holding
channels.  The paper settles on timeouts around the message service
time -- its Fig. 11 runs use 32 cycles, its Fig. 14 runs use
(message length) x (number of virtual channels).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.timeout import FixedTimeout
from ..sim.simulator import run_simulation
from .common import QUICK, Scale

Row = Dict[str, object]

TIMEOUTS = (8, 16, 32, 64, 128, 256)


def run(scale: Scale = QUICK) -> List[Row]:
    load = scale.loads[len(scale.loads) // 2]
    base = scale.base_config(routing="cr", load=load)
    rows: List[Row] = []
    for cycles in TIMEOUTS:
        result = run_simulation(base.with_(timeout=FixedTimeout(cycles)))
        report = result.report
        rows.append(
            {
                "timeout": cycles,
                "load": load,
                "latency_mean": report["latency_mean"],
                "latency_p95": report["latency_p95"],
                "throughput": report["throughput"],
                "kills": report.get("kills", 0),
                "kill_rate": report["kill_rate"],
                "undelivered": report["undelivered"],
            }
        )
    return rows


def table(rows: List[Row]) -> str:
    from ..stats.report import format_table

    return format_table(
        rows,
        [
            "timeout",
            "latency_mean",
            "latency_p95",
            "throughput",
            "kills",
            "kill_rate",
        ],
        title="E02 CR timeout sensitivity",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
