"""E18 (extension): FCR vs a software ack/retry layer.

The paper's closing argument: FCR "eliminat[es] the need for software
buffering and retry for reliability" and avoids acknowledgement schemes
that "consume substantial network bandwidth".  This experiment makes the
comparison concrete: the same unreliable network (transient flit
corruption) made reliable two ways --

* ``fcr``: integrated hardware recovery (padding + FKILL + source
  retransmit; no acks, no software state), and
* ``swr``: dimension-order routing with an end-to-end software layer
  (sender buffering, per-message ACK messages, timeout retransmission,
  receiver-side checksum + dedup).

Reported per fault rate: reliable-delivery latency, goodput, and the
bandwidth overhead ratio (network flits injected per payload flit
reliably delivered -- FCR pays in pad flits and killed attempts, the
software layer pays in ACK messages, duplicate deliveries, and
retransmitted worms).
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]

FAULT_RATES = (0.0, 1e-3, 5e-3)


def _fcr_row(scale: Scale, load: float, rate: float) -> Row:
    config = scale.base_config(
        routing="fcr", load=load, fault_rate=rate, drain=scale.drain * 2
    )
    result = run_simulation(config)
    report = result.report
    delivered_payload = (
        report.get("messages_delivered", 0) * scale.message_length
    )
    injected = report.get("flits_injected", 0)
    return {
        "scheme": "fcr",
        "fault_rate": rate,
        "latency": report["latency_mean"],
        "goodput_msgs": report.get("messages_delivered", 0),
        "flits_per_payload": (
            round(injected / delivered_payload, 3) if delivered_payload else 0
        ),
        "retries": report.get("retransmissions", 0),
        "acks": 0,
        "lost": report["undelivered"],
    }


def _swr_row(scale: Scale, load: float, rate: float) -> Row:
    config = scale.base_config(
        routing="dor",
        load=load,
        fault_rate=rate,
        software_retry=True,
        order_preserving=False,
        drain=scale.drain * 2,
    )
    result = run_simulation(config, keep_engine=True)
    layer = result.engine.reliability.report()
    injected = result.report.get("flits_injected", 0)
    goodput = layer["goodput_flits"]
    return {
        "scheme": "swr",
        "fault_rate": rate,
        "latency": layer["host_latency_mean"],
        "goodput_msgs": layer["host_deliveries"],
        "flits_per_payload": (
            round(injected / goodput, 3) if goodput else 0
        ),
        "retries": layer["retransmissions"],
        "acks": layer["acks_sent"],
        "lost": layer["failures"],
    }


def run(scale: Scale = QUICK) -> List[Row]:
    load = scale.loads[0]
    rows: List[Row] = []
    for rate in FAULT_RATES:
        rows.append(_fcr_row(scale, load, rate))
        rows.append(_swr_row(scale, load, rate))
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "fault_rate",
            "scheme",
            "latency",
            "goodput_msgs",
            "flits_per_payload",
            "retries",
            "acks",
            "lost",
        ],
        title="E18: reliable delivery -- FCR vs software ack/retry "
              "(flits_per_payload = bandwidth cost per delivered flit)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
