"""E06 (paper Fig. 14(e,f)): multiple source and sink channels.

"A single source and a single sink channel are used for (a)-(d), and
multiple source and sink channels are used for (e)-(f)" -- "network
interface bandwidth is an important factor affecting the achievable
peak-throughput of CR networks" (the observation that led iWarp to a
multi-channel interface).  CR is interface-hungry for two reasons: pad
flits consume injection bandwidth, and killed attempts re-consume it.
Widening the interface lets CR's adaptive routing turn the extra
injection bandwidth into delivered throughput, while deterministic DOR
saturates on its network paths instead.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.sweep import matrix_sweep
from ..stats.report import format_series
from .common import QUICK, Scale

Row = Dict[str, object]

INTERFACE_WIDTHS = (1, 2, 4)


def run(scale: Scale = QUICK) -> List[Row]:
    base = scale.base_config(num_vcs=2, buffer_depth=2)
    configs = {}
    for width in INTERFACE_WIDTHS:
        configs[f"cr_{width}ch"] = base.with_(
            routing="cr", num_inject=width, num_sink=width
        )
        configs[f"dor_{width}ch"] = base.with_(
            routing="dor", num_inject=width, num_sink=width
        )
    return matrix_sweep(configs, scale.loads, **scale.sweep_options())


def table(rows: List[Row]) -> str:
    throughput = format_series(
        rows,
        x="load",
        y="throughput",
        title="E06 / Fig. 14(e,f): throughput by interface width",
    )
    latency = format_series(
        rows,
        x="load",
        y="latency_mean",
        title="E06 / Fig. 14(e,f): mean latency by interface width",
    )
    return throughput + "\n\n" + latency


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
