"""E10: source-based vs path-wide timeout schemes (paper Sections 7-8).

"We have explored several of these and chose a source-based timeout
scheme which uses hardware at the source (injector) to identify
potential deadlock situations. ... the path-wide schemes produce
unnecessary message kills, providing inferior performance."

Why path-wide over-kills: a router sees only *local* progress.  It
cannot tell a potential deadlock from ordinary transients -- a worm
parked behind sink contention, or starved for a few cycles by virtual-
channel multiplexing -- and it cannot calibrate its threshold the way
the source can (the source knows the message length and scales its
timeout as length x VCs; a router knows neither).  Nor can a router
know that a worm's tail has already left the source, so path-wide kills
*committed* worms, forfeiting CR's implicit-acknowledgement guarantee
(this model charitably lets the source retransmit them anyway).

The experiment compares the source-based length-scaled scheme against
path-wide monitors at several thresholds: short thresholds multiply the
kill count several-fold (the paper's "unnecessary message kills"); long
thresholds recover deadlocks sluggishly.  Our substrate recovers from
kills cheaply, so the mean-latency penalty is milder than the paper
suggests -- the kill multiplication itself reproduces strongly.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]

PATH_WIDE_THRESHOLDS = (16, 64)


def run(scale: Scale = QUICK) -> List[Row]:
    schemes = [("source_scaled", {})]
    for cycles in PATH_WIDE_THRESHOLDS:
        schemes.append((f"path_wide_{cycles}", {"path_wide_cycles": cycles}))
    base = scale.base_config(routing="cr", num_vcs=2)
    rows: List[Row] = []
    for load in scale.loads:
        for label, overrides in schemes:
            report = run_simulation(
                base.with_(load=load, **overrides)
            ).report
            rows.append(
                {
                    "load": load,
                    "scheme": label,
                    "kills": report.get("kills", 0),
                    "kill_rate": report["kill_rate"],
                    "latency_mean": report["latency_mean"],
                    "latency_p99": report["latency_p99"],
                    "throughput": report["throughput"],
                    "undelivered": report["undelivered"],
                }
            )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "load",
            "scheme",
            "kills",
            "kill_rate",
            "latency_mean",
            "latency_p99",
            "throughput",
        ],
        title="E10: source-based vs path-wide timeout monitoring",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
