"""E08: FCR with permanent channel faults.

The abstract claims "permanent faults tolerance ... with no software
buffering and retry".  The mechanism is kill-and-retry over adaptive
path diversity: a worm aimed at a dead channel stalls, the source times
out and kills it, and the randomised adaptive retry diversifies around
the fault; routers also avoid locally-known dead channels whenever an
alternative productive channel exists.  When a fault cuts *all* minimal
paths of a pair, retries escalate to bounded misrouting (the Chien &
Kim planar-adaptive lineage the paper builds on), with padding sized
for the detour so the commit guarantee still holds.

The experiment kills random bidirectional links at cycle 0 and checks
that every message is still delivered (undelivered == 0 after drain),
with latency rising as the fault count grows.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]

FAULT_COUNTS = (0, 1, 2, 4)


def run(scale: Scale = QUICK) -> List[Row]:
    load = scale.loads[0]
    base = scale.base_config(
        routing="fcr", load=load, drain=scale.drain * 2, misrouting=True
    )
    rows: List[Row] = []
    for count in FAULT_COUNTS:
        result = run_simulation(base.with_(permanent_faults=count))
        report = result.report
        rows.append(
            {
                "dead_links": 2 * count,  # bidirectional pairs
                "load": load,
                "latency_mean": report["latency_mean"],
                "latency_p99": report["latency_p99"],
                "kills": report.get("kills", 0),
                "kill_rate": report["kill_rate"],
                "delivered": report.get("messages_delivered", 0),
                "undelivered": report["undelivered"],
                "drained": report["drained"],
            }
        )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "dead_links",
            "latency_mean",
            "latency_p99",
            "kills",
            "kill_rate",
            "delivered",
            "undelivered",
        ],
        title="E08: FCR with permanent link faults (undelivered must be 0)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
