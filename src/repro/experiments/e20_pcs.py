"""E20 (extension): CR vs pipelined circuit switching (PCS).

Paper Section 2.2 / Related Work: "Gaughan and Yalamanchili enhanced
pipelined circuit switching, a variant of wormhole routing, with
backtracking to provide fault-tolerance."  PCS and CR solve the same
two problems with opposite philosophies:

* PCS is *conservative*: search first (backtracking probe), move data
  only on a reserved circuit -- data never blocks, never dies; the cost
  is a setup round trip and channel time held during the search.
* CR is *optimistic*: move data immediately, kill and retry when the
  gamble fails; the cost is padding and occasional wasted transmission.

Part (a) compares them on a healthy torus across load; part (b) under
permanent link faults, comparing recovery effort (CR kills vs PCS
backtracks) and delivery completeness.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]


def _row(scale: Scale, scheme: str, load: float, faults: int) -> Row:
    config = scale.base_config(
        routing=scheme,
        num_vcs=1,
        load=load,
        permanent_faults=faults,
        misrouting=faults > 0,  # both schemes detour around faults
        drain=scale.drain * (2 if faults else 1),
    )
    result = run_simulation(config)
    report = result.report
    return {
        "part": "faults" if faults else "healthy",
        "load": load,
        "scheme": scheme,
        "dead_links": 2 * faults,
        "latency_mean": report["latency_mean"],
        "latency_p99": report["latency_p99"],
        "throughput": report["throughput"],
        "recovery_events": (
            report.get("kills", 0) + report.get("probe_backtracks", 0)
        ),
        "setup_failures": report.get("probe_failures", 0),
        "undelivered": report["undelivered"],
    }


def run(scale: Scale = QUICK) -> List[Row]:
    rows: List[Row] = []
    for load in scale.loads:
        for scheme in ("cr", "pcs"):
            rows.append(_row(scale, scheme, load, faults=0))
    fault_load = scale.loads[0]
    for scheme in ("cr", "pcs"):
        rows.append(_row(scale, scheme, fault_load, faults=2))
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "part",
            "load",
            "scheme",
            "dead_links",
            "latency_mean",
            "latency_p99",
            "throughput",
            "recovery_events",
            "setup_failures",
            "undelivered",
        ],
        title="E20: CR (optimistic kill/retry) vs PCS "
              "(conservative probe/reserve)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
