"""T02: router complexity/delay comparison (after Chien '93).

"A recent study of implementation complexity for a variety of adaptive
routers shows that virtual channels can reduce the achievable speed of
adaptive routers significantly."  The table reproduces the ordering that
motivates CR: a no-VC adaptive CR router sits between the dimension-
order router and the virtual-channel adaptive routers (Duato, PAR,
Linder-Harden) in critical-path delay -- adaptivity without the VC tax.
"""

from __future__ import annotations

from typing import Dict, List

from ..hardware.routermodel import router_table
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]


def run(scale: Scale = QUICK) -> List[Row]:
    return router_table(dims=scale.dims, torus=True)


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "router",
            "vcs",
            "freedom",
            "routing_ns",
            "vc_alloc_ns",
            "switch_ns",
            "flow_ns",
            "total_ns",
            "vs_dor",
        ],
        title="T02: router critical-path model (2D torus)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
