"""E05 (paper Fig. 14(c,d)): virtual channels under a fixed buffer budget.

"Figs. 14-(c) and (d) compare CR and DOR's performance for a range of
virtual channels.  A previous study [Dally 92] showed that virtual
channels provide more performance benefit than deep FIFO buffers.  In
the simulations, the DOR networks are given a fixed amount of total
buffer space, so more virtual channels mean a lower buffer depth."  CR
fixes each lane at two flits, and its timeout scales as
(message length) x (number of virtual channels) because a worm sharing a
physical channel with v-1 lanes advances every v-th cycle when healthy.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.timeout import LengthScaledTimeout
from ..sim.sweep import matrix_sweep
from ..stats.report import format_series
from .common import QUICK, Scale

Row = Dict[str, object]

#: total buffer flits per input port given to the DOR router
DOR_BUDGET = 16


def run(scale: Scale = QUICK) -> List[Row]:
    base = scale.base_config(timeout=LengthScaledTimeout())
    configs: Dict[str, object] = {}
    for vcs in (2, 4, 8):
        configs[f"dor_{vcs}vc_d{DOR_BUDGET // vcs}"] = base.with_(
            routing="dor", num_vcs=vcs, buffer_depth=DOR_BUDGET // vcs
        )
    for vcs in (1, 2, 4):
        configs[f"cr_{vcs}vc_d2"] = base.with_(
            routing="cr", num_vcs=vcs, buffer_depth=2
        )
    return matrix_sweep(configs, scale.loads, **scale.sweep_options())


def table(rows: List[Row]) -> str:
    latency = format_series(
        rows,
        x="load",
        y="latency_mean",
        title="E05 / Fig. 14(c,d): mean latency by VC organisation",
    )
    throughput = format_series(
        rows,
        x="load",
        y="throughput",
        title="E05 / Fig. 14(c,d): accepted throughput",
    )
    return latency + "\n\n" + throughput


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
