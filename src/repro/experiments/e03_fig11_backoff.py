"""E03 (paper Fig. 11): static retransmission gaps vs dynamic backoff.

"Fig. 11 compares average message latency for several different static
retransmission time gaps to the dynamic scheme.  The timeout for message
kills is fixed at 32 cycles.  The dashed lines are the static schemes
and the solid line is the dynamic scheme" -- which is "quite similar to
the binary exponential backoff used in Ethernet networks".

Expected shape: small static gaps win at low load and collapse near
saturation (synchronised retries re-create the conflict); large static
gaps waste latency at low load; the dynamic scheme tracks the best
static gap across the whole load range.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.backoff import ExponentialBackoff, StaticGap
from ..core.timeout import FixedTimeout
from ..sim.sweep import matrix_sweep
from ..stats.report import format_series
from .common import QUICK, Scale

Row = Dict[str, object]

STATIC_GAPS = (4, 16, 64, 256)


def run(scale: Scale = QUICK) -> List[Row]:
    base = scale.base_config(routing="cr", timeout=FixedTimeout(32))
    configs = {
        f"static_{gap}": base.with_(backoff=StaticGap(gap))
        for gap in STATIC_GAPS
    }
    configs["dynamic"] = base.with_(backoff=ExponentialBackoff(slot_cycles=16))
    return matrix_sweep(configs, scale.loads, **scale.sweep_options())


def table(rows: List[Row]) -> str:
    return format_series(
        rows,
        x="load",
        y="latency_mean",
        title="E03 / Fig. 11: mean latency by retransmission scheme",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
