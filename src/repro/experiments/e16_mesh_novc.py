"""E16 (extension): the two virtual-channel-free schemes, head to head.

The paper positions the turn model as the other way to route adaptively
without virtual channels: "Ni and Glass have developed a unique approach
to adaptive routing which prevents deadlock without virtual channels by
prohibiting turns.  However, this approach only works for meshes; in
tori ... additional virtual channels are required."

On a mesh -- the only ground where both compete -- this experiment runs
CR (fully adaptive, recovery-based) against negative-first (partially
adaptive, restriction-based) and dimension-order, all with ONE virtual
channel, on uniform and transpose traffic.  CR buys full adaptivity at
the price of padding and occasional kills; the turn model is free of
both but restricted in which paths it may use.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]

SCHEMES = ("cr", "turn", "dor")
PATTERNS = ("uniform", "transpose")


def run(scale: Scale = QUICK) -> List[Row]:
    load = scale.loads[len(scale.loads) // 2]
    rows: List[Row] = []
    for pattern in PATTERNS:
        for routing in SCHEMES:
            config = scale.base_config(
                topology="mesh",
                routing=routing,
                num_vcs=1,
                load=load,
                pattern=pattern,
            )
            result = run_simulation(config)
            report = result.report
            rows.append(
                {
                    "pattern": pattern,
                    "routing": routing,
                    "load": load,
                    "latency_mean": report["latency_mean"],
                    "latency_p95": report["latency_p95"],
                    "throughput": report["throughput"],
                    "kills": report.get("kills", 0),
                    "pad_overhead": report["pad_overhead"],
                }
            )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "pattern",
            "routing",
            "latency_mean",
            "latency_p95",
            "throughput",
            "kills",
            "pad_overhead",
        ],
        title="E16: VC-free schemes on a mesh (CR vs turn model vs DOR, "
              "1 VC each)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
