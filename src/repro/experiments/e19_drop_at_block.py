"""E19 (extension): CR vs drop-at-block, its Related-Work ancestor.

Paper Section 8: "The basic technique used in Compressionless Routing,
drop-at-block, is not new; machines as early as the BBN Butterfly and
network designs such as the MIT Transit use similar techniques. ...
The dropping strategy can improve network utilization by eliminating
secondary conflicts.  Our work on Compressionless Routing extends that
work, providing a practical framework ... support of arbitrary
topologies, order preserving transmission, end-to-end flow control, and
fault tolerance."

So the comparison is not raw speed -- dropping early can even *win* on
latency by clearing conflicts aggressively (and it does here, which the
table reports honestly).  What CR buys over drop-at-block is measured in
the other columns:

* kills: dropping fires on every conflict, CR only past a timeout;
* source buffering (``copy_held``): a drop-at-block sender must hold
  each message until it knows delivery happened (here charitably
  modelled as the delivery time); a CR sender releases at *commit*,
  when the tail leaves -- the flow-control handshake is the ack;
* ordering: drop-and-retry reorders same-pair messages freely; CR's
  commit gating keeps them FIFO.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]


def _copy_held_mean(result, release_attr: str) -> float:
    """Average cycles the source must buffer a message."""
    samples = []
    for msg in result.ledger.deliveries:
        if not msg.measured:
            continue
        release = getattr(msg, release_attr)
        if release is not None:
            samples.append(release - msg.created_at)
    return sum(samples) / len(samples) if samples else 0.0


def run(scale: Scale = QUICK) -> List[Row]:
    rows: List[Row] = []
    for load in scale.loads:
        for scheme in ("cr", "drop"):
            # CR runs with its order gate (part of the framework);
            # drop-at-block cannot provide ordering from commit gating
            # (no padding lemma), so it runs ungated.
            config = scale.base_config(
                routing=scheme,
                num_vcs=1,
                load=load,
                order_preserving=(scheme == "cr"),
            )
            result = run_simulation(config)
            report = result.report
            release_attr = (
                "committed_at" if scheme == "cr" else "delivered_at"
            )
            rows.append(
                {
                    "load": load,
                    "scheme": scheme,
                    "latency_mean": report["latency_mean"],
                    "throughput": report["throughput"],
                    "kills": report.get("kills", 0),
                    "kill_rate": report["kill_rate"],
                    "copy_held": round(
                        _copy_held_mean(result, release_attr), 1
                    ),
                    "fifo_violations": (
                        result.ledger.count_fifo_violations()
                    ),
                }
            )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "load",
            "scheme",
            "latency_mean",
            "throughput",
            "kills",
            "kill_rate",
            "copy_held",
            "fifo_violations",
        ],
        title="E19: CR vs drop-at-block (BBN Butterfly lineage) -- "
              "CR pays latency for ordering + early source release",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
