"""E17 (ablation): decomposing CR -- recovery vs adaptivity.

CR bundles two mechanisms: deadlock *recovery* (timeout/kill/retry,
which removes the virtual-channel requirement) and fully *adaptive*
routing (which recovery makes safe).  This ablation separates their
contributions on a torus, everything else equal (1 VC, 2-flit buffers,
uniform traffic):

* ``dor``        deterministic + dateline VCs (needs 2 VCs; the baseline),
* ``dor+cr``     deterministic relation + CR recovery, 1 VC: recovery
                 replaces the datelines but adds padding/kill overhead
                 and no path diversity,
* ``cr``         adaptive + CR recovery, 1 VC: the full framework.

Expected shape: ``dor+cr`` roughly tracks ``dor`` (recovery alone buys
the VC back but no performance), while ``cr`` pulls ahead -- the win
comes from adaptivity, which only recovery makes affordable.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.sweep import matrix_sweep
from ..stats.report import format_series
from .common import QUICK, Scale

Row = Dict[str, object]


def run(scale: Scale = QUICK) -> List[Row]:
    base = scale.base_config(buffer_depth=2)
    configs = {
        "dor_2vc": base.with_(routing="dor", num_vcs=2),
        "dor+cr_1vc": base.with_(routing="dor+cr", num_vcs=1),
        "cr_1vc": base.with_(routing="cr", num_vcs=1),
    }
    return matrix_sweep(configs, scale.loads, **scale.sweep_options())


def table(rows: List[Row]) -> str:
    latency = format_series(
        rows,
        x="load",
        y="latency_mean",
        title="E17 ablation: mean latency (recovery vs adaptivity)",
    )
    throughput = format_series(
        rows,
        x="load",
        y="throughput",
        title="E17 ablation: accepted throughput",
    )
    kills = format_series(
        rows,
        x="load",
        y="kill_rate",
        title="E17 ablation: kills per delivered message",
    )
    return "\n\n".join([latency, throughput, kills])


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
