"""E15 (extension): deep networks -- long channel latency.

The paper's "Network Depth" discussion: "Though shallow networks are
generally preferable, some machines will be built with deep networks
(large amounts of buffering).  There are a variety of reasons for this,
but the most important reason is physical channel delay."  Padding is
proportional to the path's flit capacity, so channel pipeline depth
feeds straight into CR's overhead -- this is CR's structural weakness
and the experiment measures it honestly.

Reported per channel latency L in {1, 2, 4}: CR's pad fraction and mean
latency versus DOR's (DOR pays the latency too, but not the padding).
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]

CHANNEL_LATENCIES = (1, 2, 4)


def run(scale: Scale = QUICK) -> List[Row]:
    load = scale.loads[0]
    rows: List[Row] = []
    for latency in CHANNEL_LATENCIES:
        for routing in ("cr", "dor"):
            config = scale.base_config(
                routing=routing,
                num_vcs=2,
                load=load,
                channel_latency=latency,
                drain=scale.drain * 2,
            )
            result = run_simulation(config)
            report = result.report
            rows.append(
                {
                    "channel_latency": latency,
                    "routing": routing,
                    "latency_mean": report["latency_mean"],
                    "throughput": report["throughput"],
                    "pad_overhead": report["pad_overhead"],
                    "kills": report.get("kills", 0),
                    "undelivered": report["undelivered"],
                }
            )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "channel_latency",
            "routing",
            "latency_mean",
            "throughput",
            "pad_overhead",
            "kills",
        ],
        title="E15: deep networks (channel pipeline depth) -- "
              "CR pays padding, DOR does not",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
