"""E21 (extension): the latency distribution behind the means.

The paper's Section 7 discussion ("Delivery Guarantee and Latency
Distribution") is about the *shape* of CR's latency: most messages are
fast, but "repeated kills can give some messages much larger
latencies".  This experiment prints the actual distribution -- fixed-
width histogram bins of total latency for CR and DOR at the same load --
plus the kill-count distribution that produces CR's tail.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.latency import histogram
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]

BIN_WIDTH = 64
MAX_BINS = 12


def run(scale: Scale = QUICK) -> List[Row]:
    load = scale.loads[len(scale.loads) // 2]
    samples: Dict[str, List[int]] = {}
    kill_histogram: Counter = Counter()
    for scheme in ("cr", "dor"):
        result = run_simulation(
            scale.base_config(routing=scheme, num_vcs=2, load=load)
        )
        samples[scheme] = list(result.stats.total_latencies)
        if scheme == "cr":
            for msg in result.ledger.deliveries:
                if msg.measured:
                    kill_histogram[msg.kills + msg.fkills] += 1
    bins: Dict[int, Dict[str, int]] = {}
    for scheme, values in samples.items():
        for start, count in histogram(values, BIN_WIDTH):
            bins.setdefault(start, {})[scheme] = count
    rows: List[Row] = []
    overflow = {"cr": 0, "dor": 0}
    for index, start in enumerate(sorted(bins)):
        entry = bins[start]
        if index < MAX_BINS:
            rows.append(
                {
                    "latency_bin": f"{start}-{start + BIN_WIDTH - 1}",
                    "cr": entry.get("cr", 0),
                    "dor": entry.get("dor", 0),
                    "load": load,
                }
            )
        else:
            overflow["cr"] += entry.get("cr", 0)
            overflow["dor"] += entry.get("dor", 0)
    rows.append(
        {
            "latency_bin": f">={MAX_BINS * BIN_WIDTH} (tail)",
            "cr": overflow["cr"],
            "dor": overflow["dor"],
            "load": load,
        }
    )
    for kills in sorted(kill_histogram):
        rows.append(
            {
                "latency_bin": f"cr killed {kills}x",
                "cr": kill_histogram[kills],
                "dor": "",
                "load": load,
            }
        )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        ["latency_bin", "cr", "dor"],
        title=f"E21: latency distribution (bin width {BIN_WIDTH} cycles) "
              "and CR kill counts",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
