"""E13 (extension): bimodal traffic loads.

The paper's variance discussion points at the authors' companion study,
"Network performance under bimodal traffic loads" [Kim & Chien, JPDC
95]: real machines mix short control messages with long data transfers,
and long worms can starve short ones.  Under CR the interaction is
richer -- long messages hold paths longer (more kill exposure for
everyone), while padding inflates *short* messages the most.

The experiment runs an 80/20 short/long mix and reports per-class
latency for CR and DOR, plus the short-message penalty ratio
(short-class latency over its fixed-length baseline).
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.latency import summarize
from ..stats.report import format_table
from ..traffic.lengths import BimodalLength
from .common import QUICK, Scale

Row = Dict[str, object]


def class_latencies(result, short: int) -> Dict[str, float]:
    """Mean latency of delivered messages split by payload class."""
    short_lat = [
        m.total_latency()
        for m in result.ledger.deliveries
        if m.measured and m.payload_length == short
    ]
    long_lat = [
        m.total_latency()
        for m in result.ledger.deliveries
        if m.measured and m.payload_length != short
    ]
    return {
        "short_mean": summarize(short_lat).mean if short_lat else 0.0,
        "short_p99": summarize(short_lat).p99 if short_lat else 0.0,
        "long_mean": summarize(long_lat).mean if long_lat else 0.0,
        "short_n": len(short_lat),
        "long_n": len(long_lat),
    }


def run(scale: Scale = QUICK) -> List[Row]:
    short = scale.message_length // 2
    long = scale.message_length * 4
    mix = BimodalLength(short=short, long=long, long_fraction=0.2)
    rows: List[Row] = []
    for load in scale.loads:
        for routing in ("cr", "dor"):
            config = scale.base_config(
                routing=routing, num_vcs=2, load=load, lengths=mix
            )
            result = run_simulation(config)
            classes = class_latencies(result, short)
            rows.append(
                {
                    "load": load,
                    "routing": routing,
                    "short_mean": classes["short_mean"],
                    "short_p99": classes["short_p99"],
                    "long_mean": classes["long_mean"],
                    "short_n": classes["short_n"],
                    "long_n": classes["long_n"],
                    "overall_mean": result.report["latency_mean"],
                    "kills": result.report.get("kills", 0),
                }
            )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "load",
            "routing",
            "short_mean",
            "short_p99",
            "long_mean",
            "overall_mean",
            "kills",
        ],
        title="E13: bimodal traffic (80% short / 20% long messages)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
