"""E01: baseline latency-vs-load, CR vs DOR with equal resources.

The paper's headline comparison: "CR and FCR networks can achieve
superior performance to alternatives such as dimension-order routing"
and "CR outperforms DOR with equal resources on uniform traffic".
Equal resources means the same virtual-channel count and per-VC buffer
depth: DOR spends its two VCs on dateline deadlock avoidance, CR spends
them as adaptive lanes and recovers from deadlock by kill/retry.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.sweep import matrix_sweep
from ..stats.report import format_series
from .common import QUICK, Scale

Row = Dict[str, object]


def run(scale: Scale = QUICK) -> List[Row]:
    base = scale.base_config(num_vcs=2, buffer_depth=2)
    configs = {
        "cr_2vc": base.with_(routing="cr"),
        "dor_2vc": base.with_(routing="dor"),
    }
    return matrix_sweep(configs, scale.loads, **scale.sweep_options())


def table(rows: List[Row]) -> str:
    latency = format_series(
        rows, x="load", y="latency_mean", title="E01 mean latency (cycles)"
    )
    throughput = format_series(
        rows,
        x="load",
        y="throughput",
        title="E01 accepted throughput (flits/node/cycle)",
    )
    return latency + "\n\n" + throughput


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
