"""T01 (paper Section 5 / Fig. 8): interface hardware inventory.

"The Imin calculation requires a few adders and a distance calculator
that is also required in any other network interface.  This hardware is
much simpler than that found in the Meiko CS-2 and perhaps comparable to
that found in the Intel Paragon and Thinking Machines CM-5."

The table reports gate/latch totals for the plain, CR, and FCR
injector+receiver pairs; the reproduced claim is that the CR delta over
a plain interface is a few hundred gates and FCR adds only a check-code
datapath on top.
"""

from __future__ import annotations

from typing import Dict, List

from ..hardware.costmodel import (
    InterfaceParams,
    injector_components,
    interface_table,
    receiver_components,
)
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]


def run(scale: Scale = QUICK) -> List[Row]:
    params = InterfaceParams(radix=scale.radix, dims=scale.dims)
    return interface_table(params)


def component_rows(scale: Scale = QUICK, mode: str = "fcr") -> List[Row]:
    """Per-component breakdown (the detailed version of the table)."""
    params = InterfaceParams(radix=scale.radix, dims=scale.dims)
    rows: List[Row] = []
    for side, parts in (
        ("injector", injector_components(params, mode)),
        ("receiver", receiver_components(params, mode)),
    ):
        for part in parts:
            rows.append(
                {
                    "side": side,
                    "component": part.name,
                    "gates": part.gates,
                    "latches": part.latches,
                    "purpose": part.purpose,
                }
            )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "interface",
            "injector_gates",
            "injector_latches",
            "receiver_gates",
            "receiver_latches",
            "total_gates",
            "total_latches",
        ],
        title="T01: network-interface hardware inventory",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
    print()
    print(
        format_table(
            component_rows(),
            ["side", "component", "gates", "latches", "purpose"],
            title="T01 detail: FCR interface components",
        )
    )
