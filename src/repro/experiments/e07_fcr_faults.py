"""E07 (paper Section 6.2): FCR under a range of transient fault rates.

"We explore the performance of Fault-tolerant Compressionless Routing
(FCR) with a range of fault rates.  FCR networks tolerate any transient
faults."  Two properties are checked: *integrity* (no corrupt payload is
ever delivered -- the ledger raises if one is) and *graceful
degradation* (latency grows with the fault rate through FKILL retries,
but every message still arrives).
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]

FAULT_RATES = (0.0, 1e-4, 1e-3, 5e-3)


def run(scale: Scale = QUICK) -> List[Row]:
    load = scale.loads[0]
    base = scale.base_config(
        routing="fcr", load=load, drain=scale.drain * 2
    )
    rows: List[Row] = []
    for rate in FAULT_RATES:
        result = run_simulation(base.with_(fault_rate=rate))
        report = result.report
        rows.append(
            {
                "fault_rate": rate,
                "load": load,
                "latency_mean": report["latency_mean"],
                "latency_p99": report["latency_p99"],
                "throughput": report["throughput"],
                "fkills": report.get("kills_fkill", 0),
                "header_kills": report.get("kills_header_fault", 0),
                "faults_injected": report.get("faults_injected", 0),
                "corrupt_deliveries": report.get("corrupt_deliveries", 0),
                "late_corruption": report.get("late_corruption", 0),
                "delivered": report.get("messages_delivered", 0),
                "undelivered": report["undelivered"],
            }
        )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "fault_rate",
            "latency_mean",
            "latency_p99",
            "throughput",
            "fkills",
            "header_kills",
            "faults_injected",
            "corrupt_deliveries",
            "undelivered",
        ],
        title="E07: FCR under transient faults (corrupt_deliveries must be 0)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
