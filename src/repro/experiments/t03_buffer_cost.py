"""T03 (extension table): cost-normalised buffer-organisation comparison.

E04/E05 compare schemes at very different storage budgets; this table
normalises: for each buffer organisation, the per-router storage (flit
slots and bits) next to the throughput it achieves at the scale's top
load, and the resulting throughput per buffer flit.  The paper's
economic argument -- CR reaches deep-FIFO DOR performance at a fraction
of the storage -- becomes one column.
"""

from __future__ import annotations

from typing import Dict, List

from ..hardware.buffercost import (
    BufferOrganisation,
    standard_organisations,
    throughput_per_flit,
)
from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]


def _config_for(org: BufferOrganisation, scale: Scale, load: float):
    scheme = "cr" if org.name.startswith("cr") else "dor"
    return scale.base_config(
        routing=scheme,
        num_vcs=org.num_vcs,
        buffer_depth=org.buffer_depth,
        load=load,
    )


def run(scale: Scale = QUICK) -> List[Row]:
    load = scale.loads[-1]
    rows: List[Row] = []
    for org in standard_organisations(scale.dims):
        result = run_simulation(_config_for(org, scale, load))
        throughput = float(result.report["throughput"])
        rows.append(
            {
                "organisation": org.name,
                "vcs": org.num_vcs,
                "depth": org.buffer_depth,
                "flits_per_router": org.flits_per_router,
                "throughput": throughput,
                "thr_per_buffer_flit": round(
                    throughput_per_flit(throughput, org), 4
                ),
                "latency_mean": result.report["latency_mean"],
            }
        )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "organisation",
            "vcs",
            "depth",
            "flits_per_router",
            "throughput",
            "thr_per_buffer_flit",
            "latency_mean",
        ],
        title="T03: buffer storage vs delivered throughput "
              "(top swept load)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
