"""Shared scaffolding for the experiment modules.

Every experiment module exposes ``run(scale) -> rows`` and
``table(rows) -> str``.  Two standard scales are provided:

* ``QUICK`` -- an 8-ary 2-torus with short runs; used by the benchmark
  suite so the whole harness finishes in minutes on a laptop.
* ``PAPER`` -- a 16-ary 2-torus with long runs, matching the paper's
  network scale (hours of pure-Python simulation; the repro-band notes
  "slow for large traffic sweeps").

The *shapes* reported in EXPERIMENTS.md are stable across the scales;
absolute latency numbers move with network diameter, as expected.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..sim.config import SimConfig


@dataclass(frozen=True)
class Scale:
    """Run-size knobs shared by all experiments."""

    name: str
    radix: int = 8
    dims: int = 2
    warmup: int = 300
    measure: int = 1500
    drain: int = 4000
    message_length: int = 16
    loads: Tuple[float, ...] = (0.1, 0.2, 0.3)
    seed: int = 42
    # Sweep execution: process-pool width (1 = serial, None = one per
    # CPU) and result-cache switch, passed through to repro.sim.sweep
    # by every experiment that sweeps.  ``cr-sim experiment --workers``
    # overrides the per-scale default.
    workers: Optional[int] = 1
    cache: bool = False
    # Arm the repro.verify invariant checker on every run (``cr-sim
    # experiment --verify``): correctness auditing at ~<10% overhead.
    verify: bool = False

    def sweep_options(self) -> Dict[str, Any]:
        """Keyword arguments experiments forward to the sweep helpers."""
        return {"workers": self.workers, "cache": self.cache}

    def base_config(self, **overrides) -> SimConfig:
        config = SimConfig(
            radix=self.radix,
            dims=self.dims,
            warmup=self.warmup,
            measure=self.measure,
            drain=self.drain,
            message_length=self.message_length,
            seed=self.seed,
            verify=self.verify or None,
        )
        return replace(config, **overrides) if overrides else config

    def scaled(self, **overrides) -> "Scale":
        return replace(self, **overrides)


QUICK = Scale(name="quick")

# Paper scale is hours of serial pure-Python simulation, so it defaults
# to one worker per CPU and the on-disk result cache; re-running a
# partially completed reproduction only simulates the missing points.
PAPER = Scale(
    name="paper",
    radix=16,
    warmup=1000,
    measure=5000,
    drain=10000,
    loads=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
    workers=None,
    cache=True,
)
