"""E12: order-preserving transmission under heavy kill pressure.

The abstract lists "order-preserving message transmission" among CR's
advantages.  The mechanism: a message commits only after its header has
been consumed at the destination (padding lemma), and the source
serialises same-destination messages on commit -- so per-(src, dst)
header arrivals, and hence deliveries, stay FIFO even though individual
attempts are killed and retried on different adaptive paths.

The experiment drives CR hard enough to cause thousands of kills and
then validates FIFO order over every communicating pair.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]


def run(scale: Scale = QUICK) -> List[Row]:
    rows: List[Row] = []
    for load in scale.loads:
        result = run_simulation(
            scale.base_config(routing="cr", load=load)
        )
        pairs = result.ledger.validate_fifo()  # raises on violation
        report = result.report
        rows.append(
            {
                "load": load,
                "pairs_checked": pairs,
                "deliveries": len(result.ledger.deliveries),
                "kills": report.get("kills", 0),
                "retransmissions": report.get("retransmissions", 0),
                "fifo_violations": 0,
            }
        )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "load",
            "pairs_checked",
            "deliveries",
            "kills",
            "retransmissions",
            "fifo_violations",
        ],
        title="E12: per-pair FIFO delivery under kill/retry",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
