"""E14 (extension): latency variance under kill/retry.

"While the retransmission mechanism in CR completely eliminates the
possibility of deadlock, no explicit mechanism was provided to guarantee
completion of each communication. ... repeated kills can give some
messages much larger latencies, increasing the variance of message
latency."  (Section 7; the paper defers mitigation to [Kim & Chien 95].)

The experiment quantifies the effect: CR's latency standard deviation
and tail (p99/p50 ratio) versus DOR's across load, next to the kill
distribution (max kills any one message suffered).
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]


def run(scale: Scale = QUICK) -> List[Row]:
    rows: List[Row] = []
    for load in scale.loads:
        for routing in ("cr", "dor"):
            config = scale.base_config(routing=routing, num_vcs=2, load=load)
            result = run_simulation(config)
            summary = result.stats.latency_summary()
            max_kills = max(
                (m.kills + m.fkills for m in result.ledger.deliveries),
                default=0,
            )
            tail_ratio = (
                summary.p99 / summary.p50 if summary.p50 else 0.0
            )
            rows.append(
                {
                    "load": load,
                    "routing": routing,
                    "mean": summary.mean,
                    "std": summary.std,
                    "p50": summary.p50,
                    "p99": summary.p99,
                    "tail_ratio": round(tail_ratio, 2),
                    "max_kills_one_msg": max_kills,
                }
            )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "load",
            "routing",
            "mean",
            "std",
            "p50",
            "p99",
            "tail_ratio",
            "max_kills_one_msg",
        ],
        title="E14: latency variance and tails (kill/retry cost)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
