"""E09: estimating potential deadlock situations via Duato's algorithm.

"Estimating the number of deadlocks that occur is difficult because a
deadlock would normally mean the end of any network simulation ... To
conservatively estimate the number of PDS, we simulated a deadlock-free
routing algorithm (Duato's routing algorithm) which uses two virtual
networks -- an adaptive one and a deadlock-free deterministic one.
During the simulation, we counted the number of times messages needed to
use the dimension-order routed virtual channels (to escape deadlock)."

Expected shape: escape usage is rare at low load and grows steeply as
the adaptive channels congest -- the same blockages CR resolves by
kill-and-retry.  The CR kill counts at matching loads are reported next
to the escape counts for comparison.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]


def run(scale: Scale = QUICK) -> List[Row]:
    duato = scale.base_config(routing="duato")
    cr = scale.base_config(routing="cr")
    rows: List[Row] = []
    for load in scale.loads:
        d = run_simulation(duato.with_(load=load)).report
        c = run_simulation(cr.with_(load=load)).report
        delivered = max(1, int(d.get("messages_delivered", 0)))
        rows.append(
            {
                "load": load,
                "escape_grants": d.get("escape_grants", 0),
                "messages_used_escape": d.get("messages_used_escape", 0),
                "escape_per_1k_msgs": round(
                    1000.0 * d.get("escape_grants", 0) / delivered, 2
                ),
                "duato_latency": d["latency_mean"],
                "cr_kills": c.get("kills", 0),
                "cr_latency": c["latency_mean"],
            }
        )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "load",
            "escape_grants",
            "messages_used_escape",
            "escape_per_1k_msgs",
            "duato_latency",
            "cr_kills",
            "cr_latency",
        ],
        title="E09: PDS estimate (Duato escape-channel usage) vs CR kills",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
