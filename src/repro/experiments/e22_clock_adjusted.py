"""E22 (synthesis): cycle counts x router clock = wall-clock latency.

The paper's two halves meet here.  The simulation experiments (E01...)
count *cycles*; the implementation study (T02, after Chien '93) says the
cycle itself is not equal across routers -- "virtual channels can reduce
the achievable speed of adaptive routers significantly", while CR's
no-VC adaptive router is simpler than a dateline DOR router.  A fair
end-to-end comparison multiplies each scheme's cycle counts by its
achievable cycle time:

    latency_ns = latency_cycles * router_delay_ns(scheme)

This experiment re-expresses the E01 sweep in nanoseconds using the T02
delay model: CR's clock advantage (~0.78x DOR's cycle time) compounds
its cycle-count advantage, and would partially rescue schemes that lose
on cycles alone.  Duato's 3-VC router is included to show the opposite
effect: its cycle-count win over DOR shrinks once its 1.4x cycle time
is charged.
"""

from __future__ import annotations

from typing import Dict, List

from ..hardware.routermodel import router_table
from ..sim.simulator import run_simulation
from ..stats.report import format_table
from .common import QUICK, Scale

Row = Dict[str, object]

#: simulated scheme -> (VCs simulated, router organisation in T02)
#: each scheme runs at its *minimum* VC provisioning -- the hardware
#: configuration whose clock the T02 model prices.
SCHEME_TO_ROUTER = {
    "cr": (1, "CR"),
    "dor": (2, "DOR"),
    "duato": (3, "Duato"),
}


def clock_ns(dims: int = 2) -> Dict[str, float]:
    """Cycle time per scheme from the T02 router-delay model."""
    delays = {row["router"]: float(row["total_ns"])
              for row in router_table(dims=dims)}
    return {
        scheme: delays[router]
        for scheme, (_, router) in SCHEME_TO_ROUTER.items()
    }


def run(scale: Scale = QUICK) -> List[Row]:
    clocks = clock_ns(scale.dims)
    rows: List[Row] = []
    for load in scale.loads:
        for scheme in ("cr", "dor", "duato"):
            num_vcs, _ = SCHEME_TO_ROUTER[scheme]
            config = scale.base_config(
                routing=scheme,
                num_vcs=num_vcs,
                load=load,
            )
            report = run_simulation(config).report
            cycles = float(report["latency_mean"])
            ns = cycles * clocks[scheme]
            rows.append(
                {
                    "load": load,
                    "scheme": scheme,
                    "clock_ns": clocks[scheme],
                    "latency_cycles": round(cycles, 1),
                    "latency_ns": round(ns, 1),
                    "throughput_flits_cycle": report["throughput"],
                    "throughput_flits_us": round(
                        1000.0 * float(report["throughput"])
                        / clocks[scheme],
                        1,
                    ),
                }
            )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "load",
            "scheme",
            "clock_ns",
            "latency_cycles",
            "latency_ns",
            "throughput_flits_cycle",
            "throughput_flits_us",
        ],
        title="E22: clock-adjusted comparison "
              "(cycles x achievable cycle time)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
