"""E04 (paper Fig. 14(a,b)): buffer depth -- CR shallow vs DOR deep.

"For a dimension-order routing network, buffer resources are organized
as deep FIFO buffers ... For CR networks ... the buffer depth of each
virtual channel [is fixed] at two flits.  This is the right way to
organize buffers for CR because increasing buffer depth only increases
padding overhead without performance gain."  The claim to reproduce:
"with equally given two virtual channels, a CR network with 2-flit deep
buffers matches the performance of a DOR network with 16-flit deep
buffers" -- i.e. CR at a fraction of the buffer budget tracks or beats
deep-buffered DOR.

Part (a) uses the scale's default message length, part (b) longer
messages (deep FIFOs help DOR most when worms are long).
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.sweep import matrix_sweep
from ..stats.report import format_series
from .common import QUICK, Scale

Row = Dict[str, object]

DOR_DEPTHS = (2, 4, 8, 16)


def run_part(scale: Scale, message_length: int, part: str) -> List[Row]:
    base = scale.base_config(num_vcs=2, message_length=message_length)
    configs = {
        f"dor_d{depth}": base.with_(routing="dor", buffer_depth=depth)
        for depth in DOR_DEPTHS
    }
    configs["cr_d2"] = base.with_(routing="cr", buffer_depth=2)
    # The "CR d2 matches DOR d16" claim lives at saturation: extend the
    # shared load axis with a deep-saturation point.
    loads = tuple(scale.loads) + (round(scale.loads[-1] + 0.2, 3),)
    rows = matrix_sweep(configs, loads, **scale.sweep_options())
    for row in rows:
        row["part"] = part
    return rows


def run(scale: Scale = QUICK) -> List[Row]:
    short = scale.message_length
    long = scale.message_length * 4
    return run_part(scale, short, "a") + run_part(scale, long, "b")


def table(rows: List[Row]) -> str:
    parts = []
    for part in ("a", "b"):
        sub = [r for r in rows if r["part"] == part]
        if not sub:
            continue
        parts.append(
            format_series(
                sub,
                x="load",
                y="latency_mean",
                title=f"E04 / Fig. 14({part}): mean latency, "
                "DOR deep FIFOs vs CR 2-flit buffers",
            )
        )
        parts.append(
            format_series(
                sub,
                x="load",
                y="throughput",
                title=f"E04 / Fig. 14({part}): accepted throughput",
            )
        )
    return "\n\n".join(parts)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
