"""Experiment registry: one module per paper table/figure.

See DESIGN.md for the per-experiment index mapping each id to its
evidence in the paper.  Each module exposes ``run(scale) -> rows`` and
``table(rows) -> str``; the benchmark suite and the CLI dispatch through
:data:`REGISTRY`.
"""

from __future__ import annotations

from types import ModuleType
from typing import Dict

from . import (
    e01_latency_load,
    e02_timeout_sweep,
    e03_fig11_backoff,
    e04_fig14ab_buffers,
    e05_fig14cd_vcs,
    e06_fig14ef_interface,
    e07_fcr_faults,
    e08_fcr_permanent,
    e09_pds_estimate,
    e10_pathwide,
    e11_padding,
    e12_ordering,
    e13_bimodal,
    e14_variance,
    e15_deep_networks,
    e16_mesh_novc,
    e17_ablation,
    e18_fcr_vs_software,
    e19_drop_at_block,
    e20_pcs,
    e21_latency_distribution,
    e22_clock_adjusted,
    e23_trace_identical,
    t01_hw_interface,
    t02_hw_router,
    t03_buffer_cost,
)
from .common import PAPER, QUICK, Scale

REGISTRY: Dict[str, ModuleType] = {
    "e01": e01_latency_load,
    "e02": e02_timeout_sweep,
    "e03": e03_fig11_backoff,
    "e04": e04_fig14ab_buffers,
    "e05": e05_fig14cd_vcs,
    "e06": e06_fig14ef_interface,
    "e07": e07_fcr_faults,
    "e08": e08_fcr_permanent,
    "e09": e09_pds_estimate,
    "e10": e10_pathwide,
    "e11": e11_padding,
    "e12": e12_ordering,
    "e13": e13_bimodal,
    "e14": e14_variance,
    "e15": e15_deep_networks,
    "e16": e16_mesh_novc,
    "e17": e17_ablation,
    "e18": e18_fcr_vs_software,
    "e19": e19_drop_at_block,
    "e20": e20_pcs,
    "e21": e21_latency_distribution,
    "e22": e22_clock_adjusted,
    "e23": e23_trace_identical,
    "t01": t01_hw_interface,
    "t02": t02_hw_router,
    "t03": t03_buffer_cost,
}

__all__ = ["REGISTRY", "Scale", "QUICK", "PAPER"]
