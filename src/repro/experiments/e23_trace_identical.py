"""E23 (methodology): the headline comparison on byte-identical traces.

E01 compares CR and DOR under open-loop generation with blocked-source
semantics, so near saturation the two schemes are *offered* slightly
different workloads (a backed-up scheme suppresses its own sources).
This experiment removes that coupling: the workload is recorded once
per load (`repro.traffic.trace.record_trace`) and replayed
byte-identically into both schemes; every message is eventually
admitted and delivered, so the delta is purely the routing scheme's.

Reported per load: completion time of the whole workload (makespan),
mean latency, and kills.  If E01's conclusion is methodology-robust,
CR must finish the saturating workloads sooner.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.simulator import run_simulation
from ..stats.report import format_table
from ..traffic.trace import record_trace
from .common import QUICK, Scale

Row = Dict[str, object]


def run(scale: Scale = QUICK) -> List[Row]:
    rows: List[Row] = []
    loads = tuple(scale.loads) + (round(scale.loads[-1] + 0.2, 3),)
    for load in loads:
        trace_config = scale.base_config(load=load)
        trace = record_trace(trace_config)
        for scheme in ("cr", "dor"):
            config = scale.base_config(
                routing=scheme,
                num_vcs=2,
                load=load,
                trace=trace,
                drain=scale.drain * 4,
            )
            result = run_simulation(config)
            report = result.report
            rows.append(
                {
                    "load": load,
                    "scheme": scheme,
                    "workload_msgs": len(trace),
                    "delivered": report.get("messages_delivered", 0),
                    "makespan": result.cycles_run,
                    "latency_mean": report["latency_mean"],
                    "kills": report.get("kills", 0),
                    "undelivered": report["undelivered"],
                }
            )
    return rows


def table(rows: List[Row]) -> str:
    return format_table(
        rows,
        [
            "load",
            "scheme",
            "workload_msgs",
            "delivered",
            "makespan",
            "latency_mean",
            "kills",
            "undelivered",
        ],
        title="E23: CR vs DOR on byte-identical recorded workloads "
              "(makespan = cycles to deliver everything)",
    )


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(table(run()))
