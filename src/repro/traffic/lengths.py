"""Message-length distributions.

The paper's sweeps use fixed message lengths (16 flits typically, longer
for the deep-buffer comparisons); its variance discussion cites the
authors' bimodal-traffic study [Kim & Chien, JPDC 95], so a bimodal
distribution (short control messages + long data messages) is included.
"""

from __future__ import annotations

import abc
import random


class LengthDistribution(abc.ABC):
    """Samples payload lengths in flits (header included)."""

    name = "abstract"

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> int:
        """One payload length (>= 1)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected payload length (used for load normalisation)."""


class FixedLength(LengthDistribution):
    """Every message has the same payload length."""

    name = "fixed"

    def __init__(self, flits: int) -> None:
        if flits < 1:
            raise ValueError("message length must be >= 1 flit")
        self.flits = flits

    def sample(self, rng: random.Random) -> int:
        return self.flits

    def mean(self) -> float:
        return float(self.flits)

    def __repr__(self) -> str:
        return f"FixedLength({self.flits})"


class BimodalLength(LengthDistribution):
    """Short messages with an occasional long message.

    ``long_fraction`` is the probability a message is long (by message
    count, not by flit volume).
    """

    name = "bimodal"

    def __init__(
        self, short: int = 8, long: int = 64, long_fraction: float = 0.1
    ) -> None:
        if short < 1 or long < 1:
            raise ValueError("lengths must be >= 1 flit")
        if not 0.0 <= long_fraction <= 1.0:
            raise ValueError("long_fraction must be a probability")
        self.short = short
        self.long = long
        self.long_fraction = long_fraction

    def sample(self, rng: random.Random) -> int:
        return self.long if rng.random() < self.long_fraction else self.short

    def mean(self) -> float:
        return (
            self.long * self.long_fraction
            + self.short * (1.0 - self.long_fraction)
        )

    def __repr__(self) -> str:
        return (
            f"BimodalLength(short={self.short}, long={self.long}, "
            f"p_long={self.long_fraction})"
        )
