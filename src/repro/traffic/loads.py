"""Offered-load normalisation.

Experiments sweep load as a fraction of the network's theoretical
uniform-traffic capacity.  For a network whose nodes each drive ``c``
unidirectional link channels (one flit per cycle each) and whose uniform
traffic travels ``h_avg`` hops on average, each delivered payload flit
consumes ``h_avg`` channel-cycles, so the per-node saturation injection
rate is ``c / h_avg`` flits per node per cycle (e.g. ``8/k`` for a k-ary
2-torus: 4 channels per node, average distance ``k/2``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..topology.base import Topology


def capacity_flits_per_node_cycle(topology: "Topology") -> float:
    """Theoretical uniform-traffic throughput limit per node."""
    total_channels = sum(
        len(topology.links(node)) for node in range(topology.num_nodes)
    )
    channels_per_node = total_channels / topology.num_nodes
    return channels_per_node / topology.average_min_distance()


def injection_rate(
    topology: "Topology", load_fraction: float, mean_message_length: float
) -> float:
    """Messages per node per cycle for a target normalised load."""
    if load_fraction < 0:
        raise ValueError("load_fraction must be >= 0")
    if mean_message_length < 1:
        raise ValueError("mean message length must be >= 1")
    flits = load_fraction * capacity_flits_per_node_cycle(topology)
    return flits / mean_message_length
