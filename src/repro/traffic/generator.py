"""Bernoulli traffic generation.

Each node independently generates a message per cycle with probability
``message_rate`` (an open-loop Bernoulli source).  When a node's queue is
full the source is *blocked* -- generation for that node is suppressed --
which is what lets over-saturation sweeps measure accepted throughput
instead of exhausting memory.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from ..network.message import Message
from .lengths import LengthDistribution
from .patterns import TrafficPattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.engine import Engine


class TrafficGenerator:
    """Open-loop message source attached to every node."""

    def __init__(
        self,
        pattern: TrafficPattern,
        lengths: LengthDistribution,
        message_rate: float,
        seed: int = 1,
        stop_at: Optional[int] = None,
    ) -> None:
        if message_rate < 0:
            raise ValueError("message_rate must be >= 0")
        if message_rate > 1:
            raise ValueError(
                "message_rate is per node per cycle and must be <= 1; "
                "raise num_inject instead of the rate for higher loads"
            )
        self.pattern = pattern
        self.lengths = lengths
        self.message_rate = message_rate
        self.rng = random.Random(seed)
        self.stop_at = stop_at
        self.generated = 0

    def tick(self, engine: "Engine", now: int) -> None:
        if self.stop_at is not None and now >= self.stop_at:
            return
        if self.message_rate == 0.0:
            return
        topology = engine.topology
        rng = self.rng
        for src in range(topology.num_nodes):
            if rng.random() >= self.message_rate:
                continue
            dst = self.pattern.destination(topology, src, rng)
            if dst is None or dst == src:
                continue
            message = Message(
                src,
                dst,
                self.lengths.sample(rng),
                created_at=now,
                seq=engine.next_seq(src, dst),
            )
            if engine.admit(message):
                self.generated += 1
