"""Destination patterns for synthetic traffic.

The paper's headline simulations use uniform random traffic; it argues
CR's advantage "would likely produce an even larger performance
difference for non-uniform traffic patterns", so the classic adversarial
permutations (transpose, complement, bit reversal) and hotspot traffic
are provided for the adaptive-vs-deterministic experiments and examples.
"""

from __future__ import annotations

import abc
import random
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..topology.base import Topology


class TrafficPattern(abc.ABC):
    """Maps a source node to a destination node."""

    name = "abstract"

    @abc.abstractmethod
    def destination(
        self, topology: "Topology", src: int, rng: random.Random
    ) -> Optional[int]:
        """Destination for one message, or None when ``src`` sends
        nothing under this pattern (e.g. a fixed point of a permutation).
        """


class Uniform(TrafficPattern):
    """Uniformly random destination, excluding the source."""

    name = "uniform"

    def destination(self, topology, src, rng):
        n = topology.num_nodes
        dst = rng.randrange(n - 1)
        return dst if dst < src else dst + 1


class Transpose(TrafficPattern):
    """Coordinate-reversal permutation: (c0, ..., cn) -> (cn, ..., c0).

    On a 2D array this is the matrix-transpose pattern that concentrates
    dimension-order traffic on the diagonal.
    """

    name = "transpose"

    def destination(self, topology, src, rng):
        coords = topology.coords(src)
        dst = topology.node_at(tuple(reversed(coords)))
        return None if dst == src else dst


class Complement(TrafficPattern):
    """Coordinate complement: c -> (k-1) - c in every dimension."""

    name = "complement"

    def destination(self, topology, src, rng):
        radix = getattr(topology, "radix", None)
        if radix is None:
            # Bit-wise complement for non-array topologies.
            dst = (topology.num_nodes - 1) ^ src
        else:
            coords = topology.coords(src)
            dst = topology.node_at(tuple(radix - 1 - c for c in coords))
        return None if dst == src else dst


class BitReversal(TrafficPattern):
    """Reverse the bits of the node id (requires power-of-two nodes)."""

    name = "bit_reversal"

    def destination(self, topology, src, rng):
        n = topology.num_nodes
        if n & (n - 1):
            raise ValueError("bit reversal needs a power-of-two node count")
        bits = n.bit_length() - 1
        dst = 0
        for i in range(bits):
            if src & (1 << i):
                dst |= 1 << (bits - 1 - i)
        return None if dst == src else dst


class Hotspot(TrafficPattern):
    """Uniform background with a fraction of traffic aimed at one node."""

    name = "hotspot"

    def __init__(self, hotspot: int, fraction: float = 0.1) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.hotspot = hotspot
        self.fraction = fraction
        self._uniform = Uniform()

    def destination(self, topology, src, rng):
        if src != self.hotspot and rng.random() < self.fraction:
            return self.hotspot
        return self._uniform.destination(topology, src, rng)


class NearestNeighbour(TrafficPattern):
    """Send to a uniformly random direct neighbour (locality extreme)."""

    name = "nearest_neighbour"

    def destination(self, topology, src, rng):
        links = topology.links(src)
        return rng.choice(links).dst


class Incast(TrafficPattern):
    """Many-to-few: every client targets one of a small set of sinks.

    The classic datacenter incast shape — N clients fan in to one (or a
    few) server nodes, concentrating load on the sinks' ejection
    channels.  Sink nodes themselves send nothing.
    """

    name = "incast"

    def __init__(self, sinks=(0,)) -> None:
        if isinstance(sinks, int):
            sinks = (sinks,)
        self.sinks = tuple(sorted(set(sinks)))
        if not self.sinks:
            raise ValueError("incast needs at least one sink node")
        self._sink_set = frozenset(self.sinks)

    def destination(self, topology, src, rng):
        if src in self._sink_set:
            return None
        if len(self.sinks) == 1:
            return self.sinks[0]
        return self.sinks[rng.randrange(len(self.sinks))]


class Tornado(TrafficPattern):
    """Half-way-around permutation: c -> (c + ceil(k/2) - 1) mod k.

    The adversarial pattern for tori: every hop of the route fights the
    same direction, defeating load balance in minimal routing.
    """

    name = "tornado"

    def destination(self, topology, src, rng):
        radix = getattr(topology, "radix", None)
        if radix is None:
            n = topology.num_nodes
            dst = (src + n // 2) % n
        else:
            shift = -(-radix // 2) - 1  # ceil(k/2) - 1
            coords = topology.coords(src)
            dst = topology.node_at(
                tuple((c + shift) % radix for c in coords)
            )
        return None if dst == src else dst


class Shuffle(TrafficPattern):
    """Perfect shuffle: rotate the node-id bits left by one.

    Requires a power-of-two node count; the FFT/sorting-network
    communication pattern.
    """

    name = "shuffle"

    def destination(self, topology, src, rng):
        n = topology.num_nodes
        if n & (n - 1):
            raise ValueError("shuffle needs a power-of-two node count")
        bits = n.bit_length() - 1
        dst = ((src << 1) | (src >> (bits - 1))) & (n - 1)
        return None if dst == src else dst


def make_pattern(name: str, **kwargs) -> TrafficPattern:
    """Factory by name (used by the config layer)."""
    patterns = {
        Uniform.name: Uniform,
        Transpose.name: Transpose,
        Complement.name: Complement,
        BitReversal.name: BitReversal,
        Hotspot.name: Hotspot,
        NearestNeighbour.name: NearestNeighbour,
        Incast.name: Incast,
        Tornado.name: Tornado,
        Shuffle.name: Shuffle,
    }
    try:
        cls = patterns[name]
    except KeyError:
        raise ValueError(
            f"unknown traffic pattern {name!r}; choose from {sorted(patterns)}"
        ) from None
    return cls(**kwargs)
