"""Synthetic workloads: patterns, lengths, load normalisation."""
