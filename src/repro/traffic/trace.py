"""Trace-driven traffic: record a workload once, replay it anywhere.

With open-loop Bernoulli generation the *offered* traffic becomes
scheme-dependent as soon as a node queue fills (blocked sources stop
offering), which muddies A/B comparisons near saturation.  The
trace-driven alternative fixes the workload first:

    trace = record_trace(SimConfig(...))          # or build by hand
    result_cr  = run_simulation(cfg_cr.with_(trace=trace))
    result_dor = run_simulation(cfg_dor.with_(trace=trace))

Both runs then see byte-identical message arrivals (same cycle, source,
destination, length), so every difference in the results is the
scheme's.  Arrivals that cannot be queued on their cycle (queue full)
are retried every cycle until admitted, preserving workload totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Tuple

from ..network.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.engine import Engine


@dataclass(frozen=True)
class TraceEntry:
    """One message arrival: (cycle, src, dst, payload flits)."""

    cycle: int
    src: int
    dst: int
    length: int


class Trace:
    """An ordered workload of message arrivals."""

    def __init__(self, entries: Iterable[TraceEntry]) -> None:
        self.entries: List[TraceEntry] = sorted(
            entries, key=lambda e: e.cycle
        )

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def total_payload_flits(self) -> int:
        return sum(entry.length for entry in self.entries)

    def as_tuples(self) -> List[Tuple[int, int, int, int]]:
        return [
            (e.cycle, e.src, e.dst, e.length) for e in self.entries
        ]

    @classmethod
    def from_tuples(
        cls, tuples: Iterable[Tuple[int, int, int, int]]
    ) -> "Trace":
        return cls(TraceEntry(*t) for t in tuples)


class TraceReplayGenerator:
    """Drop-in traffic generator that replays a :class:`Trace`.

    Entries whose cycle has passed but could not be admitted (full
    queue) stay pending and are re-offered every cycle -- the workload
    is preserved exactly, only its admission may slip.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._cursor = 0
        self._pending: List[TraceEntry] = []
        self.replayed = 0

    def tick(self, engine: "Engine", now: int) -> None:
        entries = self.trace.entries
        while self._cursor < len(entries) and \
                entries[self._cursor].cycle <= now:
            self._pending.append(entries[self._cursor])
            self._cursor += 1
        if not self._pending:
            return
        still_pending = []
        for entry in self._pending:
            message = Message(
                entry.src,
                entry.dst,
                entry.length,
                created_at=entry.cycle,
                seq=engine.next_seq(entry.src, entry.dst),
            )
            if engine.admit(message):
                self.replayed += 1
            else:
                still_pending.append(entry)
        self._pending = still_pending

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.trace.entries) and \
            not self._pending


def record_trace(config) -> Trace:
    """Generate the workload a config's generator *would* offer.

    Runs only the traffic generator (no network) for the config's
    generation window, capturing every arrival -- including those a live
    run might have dropped at a full queue, so the recorded trace is the
    pure offered load.
    """
    import random

    from .patterns import make_pattern

    topology = config.make_topology()
    lengths = config.make_lengths()
    pattern = make_pattern(config.pattern, **config.pattern_kwargs)
    from .loads import injection_rate

    rate = min(injection_rate(topology, config.load, lengths.mean()), 1.0)
    rng = random.Random(config.seed + 1)
    entries: List[TraceEntry] = []
    horizon = config.warmup + config.measure
    for cycle in range(horizon):
        for src in range(topology.num_nodes):
            if rng.random() >= rate:
                continue
            dst = pattern.destination(topology, src, rng)
            if dst is None or dst == src:
                continue
            entries.append(
                TraceEntry(cycle, src, dst, lengths.sample(rng))
            )
    return Trace(entries)
