"""Compressionless Routing (CR/FCR) -- reproduction library.

Reproduces Kim, Liu & Chien, "Compressionless Routing: A Framework for
Adaptive and Fault-tolerant Routing" (ISCA 1994 / IEEE TPDS): a
flit-level wormhole-network simulator, the CR and FCR network-interface
protocols, the paper's baselines (dimension-order, Duato, turn-model
routing), fault models, and the experiment harness that regenerates the
paper's evaluation.

Quick start::

    from repro import SimConfig, run_simulation

    result = run_simulation(SimConfig(routing="cr", radix=8, load=0.4))
    print(result.latency, result.throughput)
"""

from .core.backoff import ExponentialBackoff, RetransmitPolicy, StaticGap
from .core.guarantees import DeliveryLedger, GuaranteeViolation, OrderGate
from .core.padding import (
    PaddingParams,
    cr_min_injection_length,
    cr_wire_length,
    fcr_wire_length,
    padding_overhead,
    path_capacity,
)
from .core.protocol import (
    KillCause,
    MessagePhase,
    ProtocolConfig,
    ProtocolMode,
)
from .core.swretry import SoftwareReliability
from .core.timeout import (
    FixedTimeout,
    LengthScaledTimeout,
    PathWideTimeout,
    TimeoutPolicy,
)
from .faults.model import CompositeFaultModel, FaultModel, NoFaults
from .faults.permanent import (
    ChannelFault,
    PermanentFaultSchedule,
    kill_router,
    random_channel_faults,
)
from .faults.transient import TransientFaults
from .network.engine import Engine, NetworkDeadlockError
from .network.fastengine import FastEngine
from .network.message import Message
from .network.network import WormholeNetwork
from .routing.base import Candidate, RoutingFunction
from .routing.dor import DimensionOrder
from .routing.duato import Duato
from .routing.minimal_adaptive import MinimalAdaptive, NaiveAdaptive
from .routing.misrouting import MisroutingAdaptive
from .routing.selection import (
    FirstFree,
    LeastOccupied,
    RandomFree,
    SelectionPolicy,
    make_selection,
)
from .routing.turnmodel import NegativeFirst
from .sim.config import SCHEMES, SimConfig
from .sim.simulator import SimResult, run_simulation
from .sim.export import read_csv, rows_to_csv
from .sim.parallel import (
    PointFailure,
    PointStatus,
    SweepCache,
    config_cache_key,
    run_reports,
)
from .sim.replicate import (
    intervals_separated,
    replicate,
    significantly_better,
    summarize_samples,
)
from .campaign import (
    CampaignMonitor,
    CampaignPoint,
    CampaignRunStats,
    CampaignSpec,
    CampaignStore,
    compare_campaigns,
    get_campaign,
    read_status,
    render_markdown,
    render_status,
    run_campaign,
    run_fabric,
)
from .sim.sweep import (
    load_sweep,
    matrix_sweep,
    param_sweep,
    report_row,
    result_row,
    saturation_load,
)
from .stats.collector import StatsCollector
from .stats.latency import LatencySummary, histogram, percentile, summarize
from .stats.report import format_series, format_table
from .analysis.latency_model import (
    cr_latency,
    fcr_latency,
    mean_uniform_latency,
    pcs_latency,
    plain_latency,
)
from .obs import (
    AlertEngine,
    AlertEvent,
    AlertRule,
    DeadlockReport,
    EngineProfiler,
    EngineTelemetry,
    EventBus,
    IntervalSampler,
    JsonlSink,
    ListSink,
    MetricsRegistry,
    RingBufferSink,
    TelemetryServer,
    TracedRun,
    attach,
    builtin_rules,
    config_for_experiment,
    detach,
    engine_metrics,
    health_report,
    load_rules,
    parse_prometheus_text,
    read_jsonl,
    run_traced,
    write_chrome_trace,
)
from .stats.svg import render_network_svg, render_sparkline_rows
from .verify import (
    InvariantChecker,
    InvariantViolation,
    VerifyConfig,
    apply_mutation,
    mutation_names,
    verify_preset,
)
from .stats.trace import (
    buffer_occupancy,
    channel_heatmap,
    channel_load_stats,
    format_timeline,
    message_timeline,
    occupancy_snapshot,
)
from .topology.base import LinkSpec, Topology
from .topology.graph import GraphTopology
from .topology.hypercube import Hypercube
from .topology.torus import KAryNCube, mesh, torus
from .traffic.generator import TrafficGenerator
from .traffic.lengths import BimodalLength, FixedLength, LengthDistribution
from .traffic.loads import capacity_flits_per_node_cycle, injection_rate
from .traffic.trace import (
    Trace,
    TraceEntry,
    TraceReplayGenerator,
    record_trace,
)
from .traffic.patterns import (
    BitReversal,
    Complement,
    Hotspot,
    Incast,
    NearestNeighbour,
    Shuffle,
    Tornado,
    TrafficPattern,
    Transpose,
    Uniform,
    make_pattern,
)
from .faults.cascading import LoadDependentFaults, make_cascading
from .workload import (
    ArrivalProcess,
    BernoulliArrivals,
    GeometricArrivals,
    MMPPArrivals,
    OpenLoopSource,
    ParetoArrivals,
    RequestReply,
    ScheduledArrival,
    WorkloadGenerator,
    WorkloadSpec,
    build_workload,
    load_workload_trace,
    make_arrivals,
    save_workload_trace,
)

__version__ = "1.7.0"

__all__ = [
    # simulation entry points
    "SimConfig",
    "SimResult",
    "run_simulation",
    "load_sweep",
    "param_sweep",
    "matrix_sweep",
    "saturation_load",
    "report_row",
    "result_row",
    "run_reports",
    "SweepCache",
    "PointStatus",
    "PointFailure",
    "config_cache_key",
    "replicate",
    "significantly_better",
    "summarize_samples",
    "intervals_separated",
    # campaign orchestration
    "CampaignSpec",
    "CampaignPoint",
    "CampaignStore",
    "CampaignRunStats",
    "CampaignMonitor",
    "run_campaign",
    "run_fabric",
    "compare_campaigns",
    "render_markdown",
    "render_status",
    "read_status",
    "get_campaign",
    "rows_to_csv",
    "read_csv",
    "SCHEMES",
    # core protocol
    "ProtocolConfig",
    "ProtocolMode",
    "MessagePhase",
    "KillCause",
    "PaddingParams",
    "path_capacity",
    "cr_min_injection_length",
    "cr_wire_length",
    "fcr_wire_length",
    "padding_overhead",
    "TimeoutPolicy",
    "FixedTimeout",
    "LengthScaledTimeout",
    "PathWideTimeout",
    "RetransmitPolicy",
    "StaticGap",
    "ExponentialBackoff",
    "OrderGate",
    "DeliveryLedger",
    "GuaranteeViolation",
    "SoftwareReliability",
    # network substrate
    "Engine",
    "FastEngine",
    "NetworkDeadlockError",
    "WormholeNetwork",
    "Message",
    # routing
    "RoutingFunction",
    "Candidate",
    "DimensionOrder",
    "MinimalAdaptive",
    "NaiveAdaptive",
    "MisroutingAdaptive",
    "Duato",
    "NegativeFirst",
    "SelectionPolicy",
    "FirstFree",
    "RandomFree",
    "LeastOccupied",
    "make_selection",
    # topology
    "Topology",
    "LinkSpec",
    "KAryNCube",
    "torus",
    "mesh",
    "Hypercube",
    "GraphTopology",
    # faults
    "FaultModel",
    "NoFaults",
    "CompositeFaultModel",
    "TransientFaults",
    "ChannelFault",
    "PermanentFaultSchedule",
    "random_channel_faults",
    "kill_router",
    # traffic
    "TrafficGenerator",
    "TrafficPattern",
    "Uniform",
    "Transpose",
    "Complement",
    "BitReversal",
    "Hotspot",
    "NearestNeighbour",
    "Incast",
    "Tornado",
    "Shuffle",
    "make_pattern",
    "LengthDistribution",
    "FixedLength",
    "BimodalLength",
    "capacity_flits_per_node_cycle",
    "injection_rate",
    "Trace",
    "TraceEntry",
    "TraceReplayGenerator",
    "record_trace",
    # workloads (see repro.workload for the full surface)
    "ArrivalProcess",
    "BernoulliArrivals",
    "GeometricArrivals",
    "ParetoArrivals",
    "MMPPArrivals",
    "make_arrivals",
    "OpenLoopSource",
    "RequestReply",
    "ScheduledArrival",
    "WorkloadGenerator",
    "WorkloadSpec",
    "build_workload",
    "load_workload_trace",
    "save_workload_trace",
    "LoadDependentFaults",
    "make_cascading",
    # statistics
    "StatsCollector",
    "LatencySummary",
    "summarize",
    "percentile",
    "histogram",
    "format_table",
    "format_series",
    "message_timeline",
    "format_timeline",
    "buffer_occupancy",
    "occupancy_snapshot",
    "channel_heatmap",
    "channel_load_stats",
    "render_network_svg",
    "render_sparkline_rows",
    # observability (see repro.obs for the full surface)
    "EventBus",
    "RingBufferSink",
    "ListSink",
    "JsonlSink",
    "IntervalSampler",
    "DeadlockReport",
    "TracedRun",
    "attach",
    "detach",
    "run_traced",
    "config_for_experiment",
    "read_jsonl",
    "write_chrome_trace",
    "EngineProfiler",
    "MetricsRegistry",
    "engine_metrics",
    "parse_prometheus_text",
    # telemetry service + alerts (see repro.obs for the full surface)
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "EngineTelemetry",
    "TelemetryServer",
    "builtin_rules",
    "health_report",
    "load_rules",
    # verification (see repro.verify for the full surface)
    "InvariantChecker",
    "InvariantViolation",
    "VerifyConfig",
    "apply_mutation",
    "mutation_names",
    "verify_preset",
    # analytical models
    "plain_latency",
    "cr_latency",
    "fcr_latency",
    "pcs_latency",
    "mean_uniform_latency",
]
