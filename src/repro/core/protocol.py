"""Protocol-level enumerations shared by the CR/FCR core and the network.

These are deliberately dependency-free so both ``repro.network`` (the
substrate) and ``repro.core`` (the protocol) can import them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .backoff import RetransmitPolicy
    from .padding import PaddingParams
    from .timeout import PathWideTimeout, TimeoutPolicy


class MessagePhase(enum.Enum):
    """Lifecycle of a message under (F)CR.

    QUEUED      waiting at the source for an injection channel / backoff gap.
    INJECTING   worm partially injected; killable by timeout or FKILL.
    KILLED      kill wavefront tearing the worm down; will be requeued.
    COMMITTED   tail has left the source: delivery is guaranteed (CR
                padding lemma), the source has released the message.
    DELIVERED   tail consumed at the destination, payload handed to host.
    FAILED      permanently undeliverable (only with retry limits).
    """

    QUEUED = "queued"
    PROBING = "probing"  # pipelined circuit switching: path search
    INJECTING = "injecting"
    KILLED = "killed"
    COMMITTED = "committed"
    DELIVERED = "delivered"
    FAILED = "failed"


class KillCause(enum.Enum):
    """Why a worm was torn down."""

    SOURCE_TIMEOUT = "source_timeout"
    PATH_TIMEOUT = "path_timeout"
    FKILL = "fkill"
    HEADER_FAULT = "header_fault"
    DROP_AT_BLOCK = "drop_at_block"


class RoutingMode(enum.Enum):
    """Top-level router configuration."""

    DOR = "dor"
    CR = "cr"
    FCR = "fcr"
    DUATO = "duato"
    TURN = "turn"
    NAIVE_ADAPTIVE = "naive_adaptive"


class ProtocolMode(enum.Enum):
    """Network-interface protocol the sources and sinks run.

    PLAIN   classic blocking wormhole: stream the message, never kill.
            (Used with deadlock-free routing functions: DOR, Duato, turn
            model -- or with naive adaptive routing to demonstrate the
            deadlock CR exists to break.)
    CR      Compressionless Routing: pad to Imin, source timeout, kill,
            retransmit with backoff.
    FCR     Fault-tolerant CR: CR plus round-trip padding, per-flit
            integrity checks, and receiver-initiated FKILL.
    """

    PLAIN = "plain"
    CR = "cr"
    FCR = "fcr"
    #: pipelined circuit switching (Gaughan & Yalamanchili): a header
    #: probe reserves the path hop by hop, backtracking around blocked
    #: or dead channels; data streams only on the completed circuit.
    PCS = "pcs"


@dataclass
class ProtocolConfig:
    """Everything the network interfaces need to run (F)CR.

    ``timeout`` and ``backoff`` are ignored in PLAIN mode.  ``path_wide``
    replaces the source-based timeout with per-router monitoring (the
    paper's rejected alternative, kept for the E10 ablation).
    ``retry_limit`` bounds kills per message (None = unlimited, the
    paper's model); exceeding it marks the message FAILED.
    """

    mode: ProtocolMode = ProtocolMode.CR
    timeout: Optional["TimeoutPolicy"] = None
    backoff: Optional["RetransmitPolicy"] = None
    padding: Optional["PaddingParams"] = None
    order_preserving: bool = True
    retry_limit: Optional[int] = None
    path_wide: Optional["PathWideTimeout"] = None
    # Drop-at-block (BBN Butterfly / MIT Transit lineage, paper
    # Section 8): a router whose *header* has been blocked for this many
    # cycles rejects the whole message; the sender retransmits later.
    # CR's predecessor -- kept as a baseline for E19.
    drop_at_block: Optional[int] = None
    # PCS: cycles a probe waits on busy channels before backtracking.
    pcs_wait: int = 4
    injection_scan_window: int = 8

    def __post_init__(self) -> None:
        from .backoff import ExponentialBackoff
        from .padding import PaddingParams
        from .timeout import LengthScaledTimeout

        if self.timeout is None:
            self.timeout = LengthScaledTimeout()
        if self.backoff is None:
            self.backoff = ExponentialBackoff()
        if self.padding is None:
            self.padding = PaddingParams()
        if self.injection_scan_window < 1:
            raise ValueError("injection_scan_window must be >= 1")
