"""Minimum-injection-length (Imin) calculation -- CR's padding rule.

The central lemma of Compressionless Routing: if a message is at least
one flit longer than the total flit capacity of its path, then by the
time its tail leaves the source the destination must already have
consumed its header.  From that point the message cannot be involved in a
deadlock (its path drains into the destination), so the source may
release it -- the flow-control handshake has served as an implicit
acknowledgement.  Messages shorter than the path capacity are padded up
to ``Imin``; the pad flits are stripped by the receiving interface.

The paper notes the Imin calculation "requires a few adders and a
distance calculator" (Section 5); this module is that arithmetic.

Fault-tolerant CR needs more padding: the receiver must be able to
detect a corrupted flit and propagate an FKILL back to the source
*before* the source finishes injecting.  The worst case is a corrupted
final payload flit: after it is consumed at the destination the source
may inject up to ``path capacity`` further flits before backpressure
stops it, plus one flit per cycle of FKILL return latency.  Hence::

    wire(FCR) = payload + capacity(path) + return_latency + slack

The properties encoded by these formulas are verified end-to-end by the
property-based tests in ``tests/properties``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaddingParams:
    """Network constants the Imin arithmetic depends on.

    buffer_depth:
        Flit capacity of each input VC buffer along the path.
    channel_latency:
        Cycles a flit spends in flight on each channel (also the credit
        return latency).
    eject_slots:
        Staging capacity of the ejection channel at the destination.
    slack:
        Safety margin covering interface pipeline stages; the defaults
        match the simulator's two-phase timing.
    """

    buffer_depth: int = 2
    channel_latency: int = 1
    eject_slots: int = 2
    slack: int = 4

    def __post_init__(self) -> None:
        if self.buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        if self.channel_latency < 1:
            raise ValueError("channel_latency must be >= 1")
        if self.eject_slots < 1:
            raise ValueError("eject_slots must be >= 1")
        if self.slack < 1:
            # slack = 0 closes the FKILL window exactly: the source
            # could commit on the same cycle the FKILL arrives.
            raise ValueError("slack must be >= 1")


def path_capacity(hops: int, params: PaddingParams) -> int:
    """Total flits the path from injector to receiver can hold.

    ``hops`` is the number of router-to-router links on the (minimal)
    path.  The path consists of the injection channel plus its buffer,
    ``hops`` link channels each with a buffer, and the ejection staging:

        (hops + 1) * (buffer_depth + channel_latency) + eject_slots
    """
    if hops < 0:
        raise ValueError("hops must be >= 0")
    per_hop = params.buffer_depth + params.channel_latency
    return (hops + 1) * per_hop + params.eject_slots


def cr_min_injection_length(hops: int, params: PaddingParams) -> int:
    """CR's Imin: one more flit than the path can swallow.

    Injecting ``Imin`` flits without the source observing a stall forces
    at least one flit -- necessarily the header -- to have been consumed
    at the destination.
    """
    return path_capacity(hops, params) + 1


def cr_wire_length(payload: int, hops: int, params: PaddingParams) -> int:
    """Padded length of a CR transmission attempt."""
    if payload < 1:
        raise ValueError("payload must be >= 1")
    return max(payload, cr_min_injection_length(hops, params))


def fcr_wire_length(payload: int, hops: int, params: PaddingParams) -> int:
    """Padded length of an FCR transmission attempt.

    Pads are appended *after* the payload so that a corruption detected
    on the very last payload flit still FKILLs the source in time (see
    module docstring).  Always at least the CR length.
    """
    if payload < 1:
        raise ValueError("payload must be >= 1")
    return_latency = hops * params.channel_latency
    fcr = payload + path_capacity(hops, params) + return_latency + params.slack
    return max(fcr, cr_wire_length(payload, hops, params))


def padding_overhead(payload: int, wire: int) -> float:
    """Fraction of transmitted flits that are padding."""
    if wire < payload:
        raise ValueError("wire length shorter than payload")
    return (wire - payload) / wire
