"""The CR injector: the source network-interface state machine.

This is the paper's Section-5 "network injector" hardware: a distance
calculator and adders for Imin (padding), a stall counter compared
against the timeout, pad-flit generation, and the kill trigger.  One
injector drives one injection channel; a node may have several (the
multi-source-channel interface of Fig. 14(e,f)).

Per cycle the injector either launches the next flit of its current
message (when the injection channel has a credit) or counts a stall;
when the stall count crosses the timeout threshold under CR/FCR it kills
the message.  Injecting the final flit *commits* the message: by the
padding lemma its header has been consumed at the destination, so the
source releases it -- the flow-control handshake was the acknowledgement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..network.flit import Flit, FlitKind
from .padding import cr_wire_length, fcr_wire_length
from .protocol import KillCause, MessagePhase, ProtocolMode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.channel import Channel
    from ..network.message import Message
    from .node import Node


class Injector:
    """State machine feeding one injection channel."""

    def __init__(self, node: "Node", channel: "Channel", engine) -> None:
        self.node = node
        self.channel = channel
        self.engine = engine
        self.current: Optional["Message"] = None
        self.vc = 0
        self.next_index = 0
        self.stall = 0

    # ------------------------------------------------------------------
    # Per-cycle behaviour
    # ------------------------------------------------------------------

    def step(self, now: int) -> None:
        if self.current is None:
            self._try_start(now)
        if self.current is not None:
            self._try_send(now)

    def abort(self, message: "Message") -> None:
        """Drop the current transmission (its worm is being killed)."""
        if self.current is message:
            self.current = None
            self.stall = 0

    @property
    def busy(self) -> bool:
        return self.current is not None

    # ------------------------------------------------------------------
    # Starting a transmission attempt
    # ------------------------------------------------------------------

    def _try_start(self, now: int) -> None:
        queue = self.node.queue
        if not queue:
            return
        protocol = self.engine.protocol
        gate = self.node.gate
        seen_dsts = set()
        window = protocol.injection_scan_window
        for index, message in enumerate(queue):
            if index >= window:
                return
            if gate.enabled:
                # Order preservation: never overtake an earlier queued
                # message to the same destination.
                if message.dst in seen_dsts:
                    continue
                seen_dsts.add(message.dst)
            if message.retransmit_at is not None and message.retransmit_at > now:
                continue
            if not gate.may_start(message):
                continue
            vc = self._pick_injection_vc(message)
            if vc is None:
                # All injection-buffer lanes busy; nothing can start.
                return
            del queue[index]
            self._start(message, vc, now)
            return

    def _pick_injection_vc(self, message: "Message") -> Optional[int]:
        free = [
            vc
            for vc in range(self.channel.num_vcs)
            if self.channel.sinks[vc] is not None
            and self.channel.sinks[vc].owner is None
        ]
        if not free:
            return None
        return self.engine.routing.injection_vc(
            message, self.channel.num_vcs, free, self.engine.rng
        )

    def _start(self, message: "Message", vc: int, now: int) -> None:
        protocol = self.engine.protocol
        hops = self.engine.topology.min_distance(message.src, message.dst)
        # Misrouted attempts may take a longer path; size the padding
        # for the worst case so the Imin lemma holds on detours too.
        budget = self.engine.routing.misroute_budget(message)
        message.misroute_budget = budget
        hops_bound = hops + 2 * budget
        if protocol.mode is ProtocolMode.CR:
            wire = cr_wire_length(
                message.payload_length, hops_bound, protocol.padding
            )
        elif protocol.mode is ProtocolMode.FCR:
            wire = fcr_wire_length(
                message.payload_length, hops_bound, protocol.padding
            )
        else:
            # PLAIN and PCS send the bare payload (no Imin padding).
            wire = message.payload_length
        first_attempt = message.attempts == 0
        message.begin_attempt(wire, now)
        if first_attempt:
            self.engine.routing.assign_lane(message, self.engine.rng)
        self.node.gate.on_start(message)
        self.engine.stats.on_attempt(message)
        if self.engine.bus is not None:
            from ..obs.events import InjectionStarted

            self.engine.bus.emit(InjectionStarted(
                now, message.uid, message.src, message.dst,
                message.attempts, wire,
            ))
        self.engine.injecting.add(message)
        self.engine.in_flight.add(message)
        self.current = message
        self.vc = vc
        self.next_index = 0
        self.stall = 0
        if protocol.mode is ProtocolMode.PCS:
            # Reserve the injection buffer and send a probe instead of
            # data; streaming begins once the circuit acknowledges.
            sink = self.channel.sinks[vc]
            sink.acquire(message, now)
            message.segments.append(sink)
            self.engine.pcs.launch(message)

    # ------------------------------------------------------------------
    # Streaming flits
    # ------------------------------------------------------------------

    def _make_flit(self, message: "Message", index: int) -> Flit:
        if index == 0:
            kind = FlitKind.HEAD
        elif index < message.payload_length:
            kind = FlitKind.BODY
        else:
            kind = FlitKind.PAD
        return Flit(
            message, kind, index, is_tail=(index == message.wire_length - 1)
        )

    def _try_send(self, now: int) -> None:
        message = self.current
        assert message is not None
        pcs = self.engine.protocol.mode is ProtocolMode.PCS
        if pcs:
            if message.phase is MessagePhase.PROBING:
                return  # circuit still being reserved
            if (
                message.stream_start_at is not None
                and now < message.stream_start_at
            ):
                return  # acknowledgement still in flight
        if not self.channel.can_send(self.vc):
            self.stall += 1
            self.engine.stats.on_injection_stall()
            if self.stall == 1 and self.engine.bus is not None:
                # Once per stall streak, not once per stalled cycle.
                from ..obs.events import InjectionStalled

                self.engine.bus.emit(
                    InjectionStalled(now, message.uid, message.src)
                )
            self._check_timeout(message, now)
            return
        flit = self._make_flit(message, self.next_index)
        self.channel.send(self.vc, flit, now)
        sink = self.channel.sinks[self.vc]
        self.engine.note_arrival(sink)
        if flit.is_head and not pcs:
            # (Under PCS the probe acquired the path already.)
            sink.acquire(message, now)
            message.segments.append(sink)
        if flit.kind is FlitKind.PAD:
            message.pad_flits_sent += 1
        message.flits_injected += 1
        self.engine.stats.on_flit_injected(flit.kind is FlitKind.PAD)
        self.engine.mark_progress(now)
        self.stall = 0
        self.next_index += 1
        if flit.is_tail:
            self._commit(message, now)

    def _check_timeout(self, message: "Message", now: int) -> None:
        protocol = self.engine.protocol
        if protocol.mode in (ProtocolMode.PLAIN, ProtocolMode.PCS):
            # Classic wormhole blocks indefinitely; a PCS circuit cannot
            # block at all, so neither mode kills on stall.
            return
        if protocol.path_wide is not None:
            return  # E10 ablation: monitoring moved into the routers
        if protocol.timeout.fires(self.stall, message, self.engine.num_vcs):
            self.current = None
            self.stall = 0
            self.engine.kills.initiate(
                message, KillCause.SOURCE_TIMEOUT, backward=False, now=now
            )

    def _commit(self, message: "Message", now: int) -> None:
        message.phase = MessagePhase.COMMITTED
        message.committed_at = now
        if self.engine.bus is not None:
            from ..obs.events import MessageCommitted

            self.engine.bus.emit(
                MessageCommitted(now, message.uid, message.src, message.dst)
            )
        self.node.gate.on_commit(message)
        self.engine.injecting.discard(message)
        if self.engine.checker is not None:
            self.engine.checker.on_commit(message, now)
        self.current = None
