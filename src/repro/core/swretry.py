"""Software retry: the reliability layer FCR makes unnecessary.

The paper's fault-tolerance argument is comparative: on conventional
machines "data errors cannot be corrected, so the software must layer a
retransmission protocol above the hardware to ensure reliable delivery",
and acknowledgement schemes "consume substantial network bandwidth".
FCR's selling points -- no software buffering, no acknowledgement
messages, no retry state machine -- only mean something next to the
thing they replace, so this module implements that thing:

* the sender keeps a copy of every message until acknowledged
  (``outstanding``), retransmitting after ``retry_timeout`` cycles;
* the receiver software-checksums each delivered message, discards
  corrupt ones, deduplicates logical retransmissions, and returns a
  short ACK message through the same network;
* ACKs themselves can be corrupted, causing duplicate data deliveries
  (deduplicated) and wasted bandwidth.

It layers over a PLAIN (classic wormhole) network.  Experiment E18
compares it head-to-head with FCR at equal fault rates on goodput,
latency, and network flits spent per payload flit delivered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from ..network.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.engine import Engine

#: application-layer tags
DATA = "data"
ACK = "ack"

LogicalId = Tuple[int, int, int]  # (src, dst, per-pair serial)


class SoftwareReliability:
    """End-to-end ack/retry protocol layered over the network.

    Attach with :meth:`attach`; the engine then calls ``on_admitted``
    for every new message, ``on_network_delivery`` when the network
    hands a message up, and ``tick`` once per cycle for the retry
    timers.
    """

    def __init__(
        self,
        retry_timeout: int = 512,
        ack_length: int = 2,
        retry_limit: Optional[int] = 16,
    ) -> None:
        if retry_timeout < 1:
            raise ValueError("retry_timeout must be >= 1 cycle")
        if ack_length < 1:
            raise ValueError("an ACK needs at least one flit")
        self.retry_timeout = retry_timeout
        self.ack_length = ack_length
        self.retry_limit = retry_limit
        self.engine: Optional["Engine"] = None
        # logical id -> (template message, deadline, attempts)
        self.outstanding: Dict[LogicalId, Tuple[Message, int, int]] = {}
        self.delivered_logical: Set[LogicalId] = set()
        self._serials: Dict[Tuple[int, int], int] = {}
        # layer statistics
        self.goodput_flits = 0
        self.host_deliveries = 0
        self.duplicates = 0
        self.corrupt_discards = 0
        self.retransmissions = 0
        self.acks_sent = 0
        self.failures = 0
        self.latencies: Dict[LogicalId, int] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(self, engine: "Engine") -> "SoftwareReliability":
        from .protocol import ProtocolMode

        if engine.protocol.mode is not ProtocolMode.PLAIN:
            raise ValueError(
                "software retry layers over PLAIN wormhole; CR/FCR have "
                "their own delivery guarantee"
            )
        self.engine = engine
        engine.reliability = self
        return self

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------

    def on_admitted(self, message: Message, now: int) -> None:
        """Register a freshly generated data message for tracking."""
        if message.app is not None:
            return  # an ACK or a retransmission we created ourselves
        pair = (message.src, message.dst)
        serial = self._serials.get(pair, 0)
        self._serials[pair] = serial + 1
        logical: LogicalId = (message.src, message.dst, serial)
        message.app = (DATA, logical)
        self.outstanding[logical] = (message, now + self.retry_timeout, 1)

    def on_network_delivery(
        self, message: Message, corrupt: bool, now: int
    ) -> None:
        kind, logical = message.app if message.app else (DATA, None)
        if corrupt:
            # Software checksum fails: silently drop; the sender's timer
            # will retransmit (data) or redeliver duplicates (ack).
            self.corrupt_discards += 1
            return
        if kind == ACK:
            self.outstanding.pop(logical, None)
            return
        if logical in self.delivered_logical:
            self.duplicates += 1
        else:
            self.delivered_logical.add(logical)
            self.host_deliveries += 1
            self.goodput_flits += message.payload_length
            original = self.outstanding.get(logical)
            created = (
                original[0].created_at if original else message.created_at
            )
            self.latencies[logical] = now - created
        self._send_ack(message, logical, now)

    def tick(self, now: int) -> None:
        if not self.outstanding:
            return
        for logical, (template, deadline, attempts) in list(
            self.outstanding.items()
        ):
            if deadline > now:
                continue
            if (
                self.retry_limit is not None
                and attempts >= self.retry_limit
            ):
                self.failures += 1
                del self.outstanding[logical]
                continue
            clone = self._retransmit(template, logical, now)
            self.outstanding[logical] = (
                template,
                now + self.retry_timeout,
                attempts + 1,
            )
            if clone is None:
                # Queue full: keep the deadline pushed out and retry the
                # retransmission on a later tick.
                continue

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _send_ack(
        self, data: Message, logical: LogicalId, now: int
    ) -> None:
        engine = self.engine
        ack = Message(
            data.dst,
            data.src,
            self.ack_length,
            created_at=now,
            seq=engine.next_seq(data.dst, data.src),
        )
        ack.app = (ACK, logical)
        if engine.admit(ack):
            ack.measured = False  # control traffic: not a latency sample
            self.acks_sent += 1

    def _retransmit(
        self, template: Message, logical: LogicalId, now: int
    ) -> Optional[Message]:
        engine = self.engine
        clone = Message(
            template.src,
            template.dst,
            template.payload_length,
            created_at=template.created_at,
            seq=engine.next_seq(template.src, template.dst),
        )
        clone.app = (DATA, logical)
        if not engine.admit(clone):
            return None
        clone.measured = False
        self.retransmissions += 1
        return clone

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> Dict[str, object]:
        latencies = sorted(self.latencies.values())
        mean = sum(latencies) / len(latencies) if latencies else 0.0
        return {
            "host_deliveries": self.host_deliveries,
            "goodput_flits": self.goodput_flits,
            "duplicates": self.duplicates,
            "corrupt_discards": self.corrupt_discards,
            "retransmissions": self.retransmissions,
            "acks_sent": self.acks_sent,
            "failures": self.failures,
            "pending": len(self.outstanding),
            "host_latency_mean": mean,
        }
