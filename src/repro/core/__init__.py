"""CR/FCR protocol core: padding, timeouts, kills, interfaces."""
